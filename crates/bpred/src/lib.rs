//! Branch-prediction substrate: gshare direction predictor, branch target
//! buffer and return-address stack.
//!
//! Matches the paper's Table 1 front end: a 2K-entry, 2-bit-counter PHT
//! indexed gshare-style with global history, plus a 256-entry BTB. A
//! 16-entry return-address stack predicts `ret` targets.
//!
//! The simulator is execution-driven over the correct path, so the
//! predictor is consulted blind at fetch and trained with the actual
//! outcome immediately afterwards (equivalent to perfect history repair on
//! mispredicts, the standard trace-driven idealization).
//!
//! # Examples
//!
//! ```
//! use rvp_bpred::{BpredConfig, BranchKind, BranchPredictor};
//!
//! let mut bp = BranchPredictor::new(BpredConfig::table1());
//! let kind = BranchKind::CondDirect { target: 10 };
//! // Train a strongly-taken branch at pc 4 (long enough for the global
//! // history to saturate)...
//! for _ in 0..16 {
//!     let _ = bp.predict(4, kind);
//!     bp.update(4, kind, true, 10);
//! }
//! let p = bp.predict(4, kind);
//! assert!(p.taken);
//! assert_eq!(p.target, Some(10));
//! ```

/// Configuration of the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Pattern-history-table entries (2-bit counters); power of two.
    pub pht_entries: usize,
    /// Global-history bits folded into the PHT index.
    pub history_bits: u32,
    /// Branch-target-buffer entries (direct mapped); power of two.
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl BpredConfig {
    /// The paper's Table 1 predictor: 2K x 2-bit gshare PHT, 256-entry
    /// BTB. (RAS depth is not specified; 16 is era-typical.)
    pub fn table1() -> BpredConfig {
        BpredConfig { pht_entries: 2048, history_bits: 11, btb_entries: 256, ras_entries: 16 }
    }
}

impl Default for BpredConfig {
    fn default() -> BpredConfig {
        BpredConfig::table1()
    }
}

/// The kind of control-transfer instruction being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional direct branch with a known (decoded) target.
    CondDirect {
        /// Taken target.
        target: usize,
    },
    /// Unconditional direct branch.
    UncondDirect {
        /// Target.
        target: usize,
    },
    /// Subroutine call (pushes `pc + 1` on the RAS).
    Call {
        /// Callee entry.
        target: usize,
    },
    /// Subroutine return (predicted via the RAS).
    Return,
    /// Indirect jump (predicted via the BTB).
    Indirect,
}

/// A fetch-time prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target, if the front end has one (a predicted-taken
    /// branch with no BTB/RAS target cannot redirect fetch and is treated
    /// as a target mispredict by the pipeline).
    pub target: Option<usize>,
}

/// Counters describing predictor behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BpredStats {
    /// Conditional branches predicted.
    pub cond_branches: u64,
    /// Conditional direction mispredicts.
    pub cond_mispredicts: u64,
    /// Taken transfers whose predicted target was wrong or missing.
    pub target_mispredicts: u64,
    /// Returns predicted.
    pub returns: u64,
    /// Return-target mispredicts.
    pub return_mispredicts: u64,
}

impl BpredStats {
    /// Direction accuracy over conditional branches, in `[0, 1]`.
    pub fn direction_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

impl rvp_json::ToJson for BpredStats {
    fn to_json(&self) -> rvp_json::Json {
        rvp_json::Json::obj([
            ("cond_branches", self.cond_branches.into()),
            ("cond_mispredicts", self.cond_mispredicts.into()),
            ("target_mispredicts", self.target_mispredicts.into()),
            ("returns", self.returns.into()),
            ("return_mispredicts", self.return_mispredicts.into()),
            ("direction_accuracy", self.direction_accuracy().into()),
        ])
    }
}

/// gshare + BTB + RAS branch predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BpredConfig,
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    history: u64,
    /// Direct-mapped BTB: (tag, target).
    btb: Vec<Option<(usize, usize)>>,
    ras: Vec<usize>,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters and empty
    /// BTB/RAS.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: BpredConfig) -> BranchPredictor {
        assert!(config.pht_entries.is_power_of_two(), "PHT size must be a power of two");
        assert!(config.btb_entries.is_power_of_two(), "BTB size must be a power of two");
        BranchPredictor {
            pht: vec![1; config.pht_entries],
            history: 0,
            btb: vec![None; config.btb_entries],
            ras: Vec::with_capacity(config.ras_entries),
            stats: BpredStats::default(),
            config,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BpredStats {
        &self.stats
    }

    fn pht_index(&self, pc: usize) -> usize {
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        ((pc as u64) ^ (self.history & hist_mask)) as usize & (self.config.pht_entries - 1)
    }

    fn btb_lookup(&self, pc: usize) -> Option<usize> {
        let idx = pc & (self.config.btb_entries - 1);
        match self.btb[idx] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Consults the predictor at fetch time. Calls also push the return
    /// address (`pc + 1`) onto the RAS; returns pop it.
    pub fn predict(&mut self, pc: usize, kind: BranchKind) -> Prediction {
        match kind {
            BranchKind::CondDirect { target } => {
                let taken = self.pht[self.pht_index(pc)] >= 2;
                // The decoder supplies direct targets, so a predicted-taken
                // conditional can always redirect.
                Prediction { taken, target: taken.then_some(target) }
            }
            BranchKind::UncondDirect { target } => Prediction { taken: true, target: Some(target) },
            BranchKind::Call { target } => {
                if self.ras.len() == self.config.ras_entries {
                    self.ras.remove(0);
                }
                self.ras.push(pc + 1);
                Prediction { taken: true, target: Some(target) }
            }
            BranchKind::Return => Prediction { taken: true, target: self.ras.pop() },
            BranchKind::Indirect => Prediction { taken: true, target: self.btb_lookup(pc) },
        }
    }

    /// Trains the predictor with the actual outcome and records
    /// mispredict statistics. `predicted` must be the value returned by
    /// the matching [`BranchPredictor::predict`] call.
    ///
    /// Returns whether the prediction was fully correct (direction and
    /// target).
    pub fn resolve(
        &mut self,
        pc: usize,
        kind: BranchKind,
        predicted: Prediction,
        taken: bool,
        target: usize,
    ) -> bool {
        let mut correct = true;
        match kind {
            BranchKind::CondDirect { .. } => {
                self.stats.cond_branches += 1;
                let idx = self.pht_index(pc);
                let c = &mut self.pht[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
                self.history = (self.history << 1) | u64::from(taken);
                if predicted.taken != taken {
                    self.stats.cond_mispredicts += 1;
                    correct = false;
                } else if taken && predicted.target != Some(target) {
                    self.stats.target_mispredicts += 1;
                    correct = false;
                }
            }
            BranchKind::UncondDirect { .. } | BranchKind::Call { .. } => {
                if predicted.target != Some(target) {
                    self.stats.target_mispredicts += 1;
                    correct = false;
                }
            }
            BranchKind::Return => {
                self.stats.returns += 1;
                if predicted.target != Some(target) {
                    self.stats.return_mispredicts += 1;
                    correct = false;
                }
            }
            BranchKind::Indirect => {
                let idx = pc & (self.config.btb_entries - 1);
                self.btb[idx] = Some((pc, target));
                if predicted.target != Some(target) {
                    self.stats.target_mispredicts += 1;
                    correct = false;
                }
            }
        }
        correct
    }

    /// Convenience wrapper over predict-then-resolve for tests and the
    /// profiler: returns whether the branch would have been predicted
    /// correctly.
    pub fn update(&mut self, pc: usize, kind: BranchKind, taken: bool, target: usize) -> bool {
        let p = self.predict(pc, kind);
        self.resolve(pc, kind, p, taken, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_steady_branch() {
        let mut bp = BranchPredictor::new(BpredConfig::table1());
        let k = BranchKind::CondDirect { target: 42 };
        // The first ~history_bits iterations keep shifting new history in,
        // touching fresh counters; after that the pattern locks in.
        let mut last = false;
        for _ in 0..32 {
            last = bp.update(100, k, true, 42);
        }
        assert!(last);
        assert!(bp.stats().cond_mispredicts >= 1); // cold start
        assert!(bp.stats().direction_accuracy() > 0.5);
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        let mut bp = BranchPredictor::new(BpredConfig::table1());
        let k = BranchKind::CondDirect { target: 7 };
        let mut correct = 0;
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            if bp.update(64, k, taken, 7) {
                correct += 1;
            }
        }
        // History-based prediction locks onto the alternation.
        assert!(correct > 150, "only {correct}/200 correct");
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut bp = BranchPredictor::new(BpredConfig::table1());
        // call at 10 -> f, call at 20 (inside f) -> g, return from g, then f.
        bp.predict(10, BranchKind::Call { target: 100 });
        bp.predict(20, BranchKind::Call { target: 200 });
        let p = bp.predict(205, BranchKind::Return);
        assert_eq!(p.target, Some(21));
        let p = bp.predict(105, BranchKind::Return);
        assert_eq!(p.target, Some(11));
        let p = bp.predict(50, BranchKind::Return);
        assert_eq!(p.target, None); // empty RAS
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut bp = BranchPredictor::new(BpredConfig { ras_entries: 2, ..BpredConfig::table1() });
        bp.predict(1, BranchKind::Call { target: 100 });
        bp.predict(2, BranchKind::Call { target: 200 });
        bp.predict(3, BranchKind::Call { target: 300 });
        assert_eq!(bp.predict(0, BranchKind::Return).target, Some(4));
        assert_eq!(bp.predict(0, BranchKind::Return).target, Some(3));
        assert_eq!(bp.predict(0, BranchKind::Return).target, None);
    }

    #[test]
    fn btb_learns_indirect_targets() {
        let mut bp = BranchPredictor::new(BpredConfig::table1());
        let k = BranchKind::Indirect;
        assert!(!bp.update(30, k, true, 77)); // cold: no target
        assert!(bp.update(30, k, true, 77)); // learned
        assert!(!bp.update(30, k, true, 88)); // target changed
    }

    #[test]
    fn btb_aliasing_is_tag_checked() {
        let cfg = BpredConfig { btb_entries: 16, ..BpredConfig::table1() };
        let mut bp = BranchPredictor::new(cfg);
        bp.update(5, BranchKind::Indirect, true, 50);
        // pc 21 maps to the same slot (21 & 15 == 5) but has a different tag.
        let p = bp.predict(21, BranchKind::Indirect);
        assert_eq!(p.target, None);
    }

    #[test]
    fn unconditional_direct_is_always_right() {
        let mut bp = BranchPredictor::new(BpredConfig::table1());
        assert!(bp.update(9, BranchKind::UncondDirect { target: 99 }, true, 99));
        assert_eq!(bp.stats().target_mispredicts, 0);
    }
}
