//! Branch-prediction substrate: pluggable direction predictors behind
//! the [`BranchPredictor`] trait (gshare, bimodal — extensible via the
//! string-keyed registry), plus a branch target buffer and
//! return-address stack composed by [`BranchUnit`].
//!
//! The default matches the paper's Table 1 front end: a 2K-entry,
//! 2-bit-counter PHT indexed gshare-style with global history, plus a
//! 256-entry BTB. A 16-entry return-address stack predicts `ret`
//! targets. [`new_branch_predictor`] builds alternatives from config
//! strings like `gshare:pht=8192,hist=13` or `bimodal:pht=2048`, using
//! the same `name:key=value,...` grammar as the value-predictor
//! registry.
//!
//! The simulator is execution-driven over the correct path, so the
//! predictor is consulted blind at fetch and trained with the actual
//! outcome immediately afterwards (equivalent to perfect history repair on
//! mispredicts, the standard trace-driven idealization).
//!
//! # Examples
//!
//! ```
//! use rvp_bpred::{BpredConfig, BranchKind, BranchUnit};
//!
//! let mut bp = BranchUnit::new(BpredConfig::table1());
//! let kind = BranchKind::CondDirect { target: 10 };
//! // Train a strongly-taken branch at pc 4 (long enough for the global
//! // history to saturate)...
//! for _ in 0..16 {
//!     let _ = bp.predict(4, kind);
//!     bp.update(4, kind, true, 10);
//! }
//! let p = bp.predict(4, kind);
//! assert!(p.taken);
//! assert_eq!(p.target, Some(10));
//! ```

use rvp_vpred::Params;

/// Configuration of the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Pattern-history-table entries (2-bit counters); power of two.
    pub pht_entries: usize,
    /// Global-history bits folded into the PHT index.
    pub history_bits: u32,
    /// Branch-target-buffer entries (direct mapped); power of two.
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl BpredConfig {
    /// The paper's Table 1 predictor: 2K x 2-bit gshare PHT, 256-entry
    /// BTB. (RAS depth is not specified; 16 is era-typical.)
    pub fn table1() -> BpredConfig {
        BpredConfig { pht_entries: 2048, history_bits: 11, btb_entries: 256, ras_entries: 16 }
    }
}

impl Default for BpredConfig {
    fn default() -> BpredConfig {
        BpredConfig::table1()
    }
}

/// The kind of control-transfer instruction being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional direct branch with a known (decoded) target.
    CondDirect {
        /// Taken target.
        target: usize,
    },
    /// Unconditional direct branch.
    UncondDirect {
        /// Target.
        target: usize,
    },
    /// Subroutine call (pushes `pc + 1` on the RAS).
    Call {
        /// Callee entry.
        target: usize,
    },
    /// Subroutine return (predicted via the RAS).
    Return,
    /// Indirect jump (predicted via the BTB).
    Indirect,
}

/// A fetch-time prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target, if the front end has one (a predicted-taken
    /// branch with no BTB/RAS target cannot redirect fetch and is treated
    /// as a target mispredict by the pipeline).
    pub target: Option<usize>,
}

/// Counters describing predictor behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BpredStats {
    /// Conditional branches predicted.
    pub cond_branches: u64,
    /// Conditional direction mispredicts.
    pub cond_mispredicts: u64,
    /// Taken transfers whose predicted target was wrong or missing.
    pub target_mispredicts: u64,
    /// Returns predicted.
    pub returns: u64,
    /// Return-target mispredicts.
    pub return_mispredicts: u64,
}

impl BpredStats {
    /// Direction accuracy over conditional branches, in `[0, 1]`.
    pub fn direction_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

impl rvp_json::ToJson for BpredStats {
    fn to_json(&self) -> rvp_json::Json {
        rvp_json::Json::obj([
            ("cond_branches", self.cond_branches.into()),
            ("cond_mispredicts", self.cond_mispredicts.into()),
            ("target_mispredicts", self.target_mispredicts.into()),
            ("returns", self.returns.into()),
            ("return_mispredicts", self.return_mispredicts.into()),
            ("direction_accuracy", self.direction_accuracy().into()),
        ])
    }
}

/// A conditional-branch *direction* predictor the fetch stage consults
/// through [`BranchUnit`]. Target prediction (BTB/RAS) stays in the
/// unit; implementations only answer taken/not-taken.
///
/// Built by name via [`new_branch_predictor`]; every implementation
/// must be deterministic, `reset` must restore the just-constructed
/// state, and [`BranchPredictor::spec`] must parse back identical.
pub trait BranchPredictor: Send {
    /// Registry name this predictor was built under.
    fn name(&self) -> &'static str;

    /// Canonical config string: parsing it back through the registry
    /// yields an identically-configured predictor.
    fn spec(&self) -> String;

    /// Predicted direction for the conditional branch at `pc`.
    fn predict(&self, pc: usize) -> bool;

    /// Trains with the resolved direction. Called once per conditional
    /// branch, after the matching [`BranchPredictor::predict`].
    fn train(&mut self, pc: usize, taken: bool);

    /// Returns the predictor to its just-constructed state.
    fn reset(&mut self);

    /// Clones the predictor, state included, behind the trait.
    fn clone_box(&self) -> Box<dyn BranchPredictor>;
}

impl Clone for Box<dyn BranchPredictor> {
    fn clone(&self) -> Box<dyn BranchPredictor> {
        self.clone_box()
    }
}

impl std::fmt::Debug for dyn BranchPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BranchPredictor({})", self.spec())
    }
}

/// The gshare direction predictor (PHT indexed by PC xor global
/// history). This is the paper's Table 1 predictor and the
/// [`BranchUnit`] default.
#[derive(Debug, Clone)]
pub struct Gshare {
    pht_entries: usize,
    history_bits: u32,
    /// 2-bit saturating counters, initialised weakly-not-taken.
    pht: Vec<u8>,
    history: u64,
}

impl Gshare {
    /// Creates a gshare predictor with weakly-not-taken counters.
    ///
    /// # Panics
    ///
    /// Panics if `pht_entries` is not a power of two.
    pub fn new(pht_entries: usize, history_bits: u32) -> Gshare {
        assert!(pht_entries.is_power_of_two(), "PHT size must be a power of two");
        Gshare { pht: vec![1; pht_entries], history: 0, pht_entries, history_bits }
    }

    fn pht_index(&self, pc: usize) -> usize {
        let hist_mask = (1u64 << self.history_bits) - 1;
        ((pc as u64) ^ (self.history & hist_mask)) as usize & (self.pht_entries - 1)
    }
}

impl BranchPredictor for Gshare {
    fn name(&self) -> &'static str {
        "gshare"
    }

    fn spec(&self) -> String {
        format!("gshare:pht={},hist={}", self.pht_entries, self.history_bits)
    }

    fn predict(&self, pc: usize) -> bool {
        self.pht[self.pht_index(pc)] >= 2
    }

    fn train(&mut self, pc: usize, taken: bool) {
        // Counter update indexes under the pre-shift history — the same
        // entry the matching predict() read.
        let idx = self.pht_index(pc);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
    }

    fn reset(&mut self) {
        self.pht.fill(1);
        self.history = 0;
    }

    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

/// A history-less bimodal direction predictor: one 2-bit counter per
/// PHT slot, indexed by PC alone. The classic baseline gshare is
/// measured against.
#[derive(Debug, Clone)]
pub struct Bimodal {
    pht_entries: usize,
    pht: Vec<u8>,
}

impl Bimodal {
    /// Creates a bimodal predictor with weakly-not-taken counters.
    ///
    /// # Panics
    ///
    /// Panics if `pht_entries` is not a power of two.
    pub fn new(pht_entries: usize) -> Bimodal {
        assert!(pht_entries.is_power_of_two(), "PHT size must be a power of two");
        Bimodal { pht: vec![1; pht_entries], pht_entries }
    }
}

impl BranchPredictor for Bimodal {
    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn spec(&self) -> String {
        format!("bimodal:pht={}", self.pht_entries)
    }

    fn predict(&self, pc: usize) -> bool {
        self.pht[pc & (self.pht_entries - 1)] >= 2
    }

    fn train(&mut self, pc: usize, taken: bool) {
        let c = &mut self.pht[pc & (self.pht_entries - 1)];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn reset(&mut self) {
        self.pht.fill(1);
    }

    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

/// A registered direction predictor, as listed by
/// [`list_branch_predictors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorInfo {
    /// Registry name (the part of the config string before `:`).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The canonical spec of the default configuration.
    pub default_spec: &'static str,
}

struct RegistryEntry {
    info: BranchPredictorInfo,
    build: fn(&mut Params) -> Result<Box<dyn BranchPredictor>, String>,
}

fn pow2(n: usize, what: &str) -> Result<usize, String> {
    if n.is_power_of_two() {
        Ok(n)
    } else {
        Err(format!("{what} must be a power of two, got {n}"))
    }
}

fn build_gshare(p: &mut Params) -> Result<Box<dyn BranchPredictor>, String> {
    let d = BpredConfig::table1();
    let pht = pow2(p.usize_or(&["pht", "entries"], d.pht_entries)?, "pht")?;
    let hist = p.usize_or(&["hist", "history"], d.history_bits as usize)? as u32;
    if !(1..=63).contains(&hist) {
        return Err(format!("hist must be 1..=63 bits, got {hist}"));
    }
    Ok(Box::new(Gshare::new(pht, hist)))
}

fn build_bimodal(p: &mut Params) -> Result<Box<dyn BranchPredictor>, String> {
    let pht = pow2(p.usize_or(&["pht", "entries"], 2048)?, "pht")?;
    Ok(Box::new(Bimodal::new(pht)))
}

static REGISTRY: &[RegistryEntry] = &[
    RegistryEntry {
        info: BranchPredictorInfo {
            name: "gshare",
            summary: "global-history xor PC indexed 2-bit PHT (the paper's Table 1)",
            default_spec: "gshare:pht=2048,hist=11",
        },
        build: build_gshare,
    },
    RegistryEntry {
        info: BranchPredictorInfo {
            name: "bimodal",
            summary: "PC-indexed 2-bit PHT, no history",
            default_spec: "bimodal:pht=2048",
        },
        build: build_bimodal,
    },
];

/// Every registered direction predictor, in registration order.
pub fn list_branch_predictors() -> Vec<&'static BranchPredictorInfo> {
    REGISTRY.iter().map(|e| &e.info).collect()
}

/// The registered direction-predictor names, in registration order.
pub fn branch_predictor_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.info.name).collect()
}

/// Builds a direction predictor from a `name[:key=value,...]` config
/// string, e.g. `gshare:pht=8192,hist=13`.
pub fn new_branch_predictor(spec: &str) -> Result<Box<dyn BranchPredictor>, String> {
    let mut p = Params::parse(spec)?;
    let entry = REGISTRY.iter().find(|e| e.info.name == p.name()).ok_or_else(|| {
        format!(
            "unknown branch predictor '{}' (known: {})",
            p.name(),
            branch_predictor_names().join(", ")
        )
    })?;
    let built = (entry.build)(&mut p)?;
    p.finish()?;
    Ok(built)
}

/// The complete branch unit the fetch stage talks to: a pluggable
/// direction predictor plus the BTB and return-address stack.
#[derive(Debug, Clone)]
pub struct BranchUnit {
    config: BpredConfig,
    dir: Direction,
    /// Direct-mapped BTB: (tag, target).
    btb: Vec<Option<(usize, usize)>>,
    ras: Vec<usize>,
    stats: BpredStats,
}

/// The direction predictor slot. The default gshare is held as a
/// concrete type so the per-branch predict/train calls in the fetch
/// stage inline (they sit on the simulator's hot loop); registry-built
/// predictors take the dynamic arm.
#[derive(Debug, Clone)]
enum Direction {
    Gshare(Gshare),
    Dyn(Box<dyn BranchPredictor>),
}

impl Direction {
    #[inline]
    fn predict(&self, pc: usize) -> bool {
        match self {
            Direction::Gshare(g) => g.predict(pc),
            Direction::Dyn(d) => d.predict(pc),
        }
    }

    #[inline]
    fn train(&mut self, pc: usize, taken: bool) {
        match self {
            Direction::Gshare(g) => g.train(pc, taken),
            Direction::Dyn(d) => d.train(pc, taken),
        }
    }
}

impl BranchUnit {
    /// Creates the unit with the default gshare direction predictor
    /// (weakly-not-taken counters) and empty BTB/RAS.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: BpredConfig) -> BranchUnit {
        BranchUnit::build(
            config,
            Direction::Gshare(Gshare::new(config.pht_entries, config.history_bits)),
        )
    }

    /// Creates the unit around an explicit direction predictor (from
    /// [`new_branch_predictor`]). `config.pht_entries`/`history_bits`
    /// are ignored in favour of the predictor's own geometry.
    ///
    /// # Panics
    ///
    /// Panics if the BTB size is not a power of two.
    pub fn with_direction(config: BpredConfig, dir: Box<dyn BranchPredictor>) -> BranchUnit {
        BranchUnit::build(config, Direction::Dyn(dir))
    }

    fn build(config: BpredConfig, dir: Direction) -> BranchUnit {
        assert!(config.btb_entries.is_power_of_two(), "BTB size must be a power of two");
        BranchUnit {
            dir,
            btb: vec![None; config.btb_entries],
            ras: Vec::with_capacity(config.ras_entries),
            stats: BpredStats::default(),
            config,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BpredStats {
        &self.stats
    }

    /// The direction predictor in use.
    pub fn direction(&self) -> &dyn BranchPredictor {
        match &self.dir {
            Direction::Gshare(g) => g,
            Direction::Dyn(d) => d.as_ref(),
        }
    }

    fn btb_lookup(&self, pc: usize) -> Option<usize> {
        let idx = pc & (self.config.btb_entries - 1);
        match self.btb[idx] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Consults the predictor at fetch time. Calls also push the return
    /// address (`pc + 1`) onto the RAS; returns pop it.
    pub fn predict(&mut self, pc: usize, kind: BranchKind) -> Prediction {
        match kind {
            BranchKind::CondDirect { target } => {
                let taken = self.dir.predict(pc);
                // The decoder supplies direct targets, so a predicted-taken
                // conditional can always redirect.
                Prediction { taken, target: taken.then_some(target) }
            }
            BranchKind::UncondDirect { target } => Prediction { taken: true, target: Some(target) },
            BranchKind::Call { target } => {
                if self.ras.len() == self.config.ras_entries {
                    self.ras.remove(0);
                }
                self.ras.push(pc + 1);
                Prediction { taken: true, target: Some(target) }
            }
            BranchKind::Return => Prediction { taken: true, target: self.ras.pop() },
            BranchKind::Indirect => Prediction { taken: true, target: self.btb_lookup(pc) },
        }
    }

    /// Trains the predictor with the actual outcome and records
    /// mispredict statistics. `predicted` must be the value returned by
    /// the matching [`BranchUnit::predict`] call.
    ///
    /// Returns whether the prediction was fully correct (direction and
    /// target).
    pub fn resolve(
        &mut self,
        pc: usize,
        kind: BranchKind,
        predicted: Prediction,
        taken: bool,
        target: usize,
    ) -> bool {
        let mut correct = true;
        match kind {
            BranchKind::CondDirect { .. } => {
                self.stats.cond_branches += 1;
                self.dir.train(pc, taken);
                if predicted.taken != taken {
                    self.stats.cond_mispredicts += 1;
                    correct = false;
                } else if taken && predicted.target != Some(target) {
                    self.stats.target_mispredicts += 1;
                    correct = false;
                }
            }
            BranchKind::UncondDirect { .. } | BranchKind::Call { .. } => {
                if predicted.target != Some(target) {
                    self.stats.target_mispredicts += 1;
                    correct = false;
                }
            }
            BranchKind::Return => {
                self.stats.returns += 1;
                if predicted.target != Some(target) {
                    self.stats.return_mispredicts += 1;
                    correct = false;
                }
            }
            BranchKind::Indirect => {
                let idx = pc & (self.config.btb_entries - 1);
                self.btb[idx] = Some((pc, target));
                if predicted.target != Some(target) {
                    self.stats.target_mispredicts += 1;
                    correct = false;
                }
            }
        }
        correct
    }

    /// Convenience wrapper over predict-then-resolve for tests and the
    /// profiler: returns whether the branch would have been predicted
    /// correctly.
    pub fn update(&mut self, pc: usize, kind: BranchKind, taken: bool, target: usize) -> bool {
        let p = self.predict(pc, kind);
        self.resolve(pc, kind, p, taken, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_steady_branch() {
        let mut bp = BranchUnit::new(BpredConfig::table1());
        let k = BranchKind::CondDirect { target: 42 };
        // The first ~history_bits iterations keep shifting new history in,
        // touching fresh counters; after that the pattern locks in.
        let mut last = false;
        for _ in 0..32 {
            last = bp.update(100, k, true, 42);
        }
        assert!(last);
        assert!(bp.stats().cond_mispredicts >= 1); // cold start
        assert!(bp.stats().direction_accuracy() > 0.5);
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        let mut bp = BranchUnit::new(BpredConfig::table1());
        let k = BranchKind::CondDirect { target: 7 };
        let mut correct = 0;
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            if bp.update(64, k, taken, 7) {
                correct += 1;
            }
        }
        // History-based prediction locks onto the alternation.
        assert!(correct > 150, "only {correct}/200 correct");
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut bp = BranchUnit::new(BpredConfig::table1());
        // call at 10 -> f, call at 20 (inside f) -> g, return from g, then f.
        bp.predict(10, BranchKind::Call { target: 100 });
        bp.predict(20, BranchKind::Call { target: 200 });
        let p = bp.predict(205, BranchKind::Return);
        assert_eq!(p.target, Some(21));
        let p = bp.predict(105, BranchKind::Return);
        assert_eq!(p.target, Some(11));
        let p = bp.predict(50, BranchKind::Return);
        assert_eq!(p.target, None); // empty RAS
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut bp = BranchUnit::new(BpredConfig { ras_entries: 2, ..BpredConfig::table1() });
        bp.predict(1, BranchKind::Call { target: 100 });
        bp.predict(2, BranchKind::Call { target: 200 });
        bp.predict(3, BranchKind::Call { target: 300 });
        assert_eq!(bp.predict(0, BranchKind::Return).target, Some(4));
        assert_eq!(bp.predict(0, BranchKind::Return).target, Some(3));
        assert_eq!(bp.predict(0, BranchKind::Return).target, None);
    }

    #[test]
    fn btb_learns_indirect_targets() {
        let mut bp = BranchUnit::new(BpredConfig::table1());
        let k = BranchKind::Indirect;
        assert!(!bp.update(30, k, true, 77)); // cold: no target
        assert!(bp.update(30, k, true, 77)); // learned
        assert!(!bp.update(30, k, true, 88)); // target changed
    }

    #[test]
    fn btb_aliasing_is_tag_checked() {
        let cfg = BpredConfig { btb_entries: 16, ..BpredConfig::table1() };
        let mut bp = BranchUnit::new(cfg);
        bp.update(5, BranchKind::Indirect, true, 50);
        // pc 21 maps to the same slot (21 & 15 == 5) but has a different tag.
        let p = bp.predict(21, BranchKind::Indirect);
        assert_eq!(p.target, None);
    }

    #[test]
    fn unconditional_direct_is_always_right() {
        let mut bp = BranchUnit::new(BpredConfig::table1());
        assert!(bp.update(9, BranchKind::UncondDirect { target: 99 }, true, 99));
        assert_eq!(bp.stats().target_mispredicts, 0);
    }
}
