//! Registry conformance suite for [`BranchPredictor`] — the direction
//! predictors behind [`new_branch_predictor`] carry the same
//! obligations as the value-predictor zoo: determinism, `reset()`
//! equals fresh, canonical spec round-trip, and state-carrying clones.

use rvp_bpred::{list_branch_predictors, new_branch_predictor, BranchPredictor};

/// A deterministic conditional-branch stream: loop back-edges (almost
/// always taken), an alternating branch, and a data-dependent one.
fn stream() -> Vec<(usize, bool)> {
    let mut out = Vec::new();
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..4000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let pc = (x % 11) as usize * 4;
        let taken = match pc / 4 {
            0..=3 => i % 64 != 63,     // loop back-edge
            4..=6 => i % 2 == 0,       // alternating
            _ => !x.is_multiple_of(3), // noisy
        };
        out.push((pc, taken));
    }
    out
}

/// Predict-then-train over the stream, returning the predictions.
fn drive(p: &mut dyn BranchPredictor, events: &[(usize, bool)]) -> Vec<bool> {
    events
        .iter()
        .map(|&(pc, taken)| {
            let predicted = p.predict(pc);
            p.train(pc, taken);
            predicted
        })
        .collect()
}

#[test]
fn every_registered_predictor_is_deterministic() {
    let events = stream();
    for info in list_branch_predictors() {
        let mut a = new_branch_predictor(info.name).unwrap();
        let mut b = new_branch_predictor(info.name).unwrap();
        assert_eq!(
            drive(a.as_mut(), &events),
            drive(b.as_mut(), &events),
            "{}: two fresh instances diverged",
            info.name
        );
    }
}

#[test]
fn reset_restores_the_just_constructed_state() {
    let events = stream();
    for info in list_branch_predictors() {
        let mut fresh = new_branch_predictor(info.name).unwrap();
        let want = drive(fresh.as_mut(), &events);

        let mut reused = new_branch_predictor(info.name).unwrap();
        let _ = drive(reused.as_mut(), &events);
        reused.reset();
        assert_eq!(
            drive(reused.as_mut(), &events),
            want,
            "{}: reset() left training state behind",
            info.name
        );
    }
}

#[test]
fn spec_round_trips_through_the_registry() {
    let events = stream();
    for info in list_branch_predictors() {
        let built = new_branch_predictor(info.name).unwrap();
        assert_eq!(built.name(), info.name);
        assert_eq!(built.spec(), info.default_spec, "{}: default_spec drifted", info.name);

        let mut rebuilt = new_branch_predictor(&built.spec())
            .unwrap_or_else(|e| panic!("{}: {:?} does not parse: {e}", info.name, built.spec()));
        assert_eq!(rebuilt.spec(), built.spec(), "{}: spec not canonical", info.name);
        let mut original = new_branch_predictor(info.name).unwrap();
        assert_eq!(
            drive(original.as_mut(), &events),
            drive(rebuilt.as_mut(), &events),
            "{}: rebuilt-from-spec predictor diverged",
            info.name
        );
    }
}

#[test]
fn clone_box_carries_training_state() {
    let events = stream();
    let (warmup, tail) = events.split_at(events.len() / 2);
    for info in list_branch_predictors() {
        let mut original = new_branch_predictor(info.name).unwrap();
        let _ = drive(original.as_mut(), warmup);
        let mut clone = original.clone_box();
        assert_eq!(
            drive(original.as_mut(), tail),
            drive(clone.as_mut(), tail),
            "{}: clone diverged from its original",
            info.name
        );
    }
}
