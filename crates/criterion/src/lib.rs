//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, `Throughput` and `black_box`.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched. This shim keeps the benches compiling and producing
//! useful wall-clock numbers (median of timed samples) without the
//! statistical machinery; absolute comparisons against historical
//! Criterion output are not meaningful.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median sample time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration, then timed samples.
        black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(routine());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, last: None };
        f(&mut b);
        let median = b.last.unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id:<32} median {median:>12.3?}{rate}", self.name);
        self
    }

    /// Finishes the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Declares a function running the given benchmark functions, mirroring
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
