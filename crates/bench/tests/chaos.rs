//! Chaos tests: `rvp-grid` under a seeded deterministic failpoint
//! schedule (`RVP_FAIL`).
//!
//! The invariants under fault injection:
//!
//! * transient faults are retried and the sweep still succeeds, with
//!   every surviving cell **bit-identical** to the fault-free run;
//! * trace-layer corruption degrades to a lower committed-stream
//!   source, again bit-identically;
//! * a cell that fails every rung of the degradation ladder is reported
//!   as poisoned in the summary's `failures` section and turns the exit
//!   code into 20 — it never aborts the rest of the sweep.

mod common;

use common::{cell_files, failures_u64, run_grid, summary, summary_u64, CELLS};
use rvp_core::Json;

#[test]
fn transient_injected_faults_are_retried_bit_identically() {
    let baseline = common::TempDir::new("chaos-baseline");
    let out = run_grid(baseline.path(), &[], &[]);
    assert!(out.status.success(), "baseline failed: {}", String::from_utf8_lossy(&out.stderr));
    let want = cell_files(baseline.path());
    assert_eq!(want.len() as u64, CELLS);

    // The second cell attempt of the sweep hits an injected transient
    // I/O fault; the containment layer retries it on the same ladder
    // rung and the sweep completes cleanly.
    let chaotic = common::TempDir::new("chaos-transient");
    let out = run_grid(chaotic.path(), &[], &[("RVP_FAIL", "seed=42;grid.cell.run=io@2")]);
    assert!(out.status.success(), "chaotic run failed: {}", String::from_utf8_lossy(&out.stderr));

    let got = cell_files(chaotic.path());
    assert_eq!(got, want, "surviving cells must be bit-identical to the fault-free run");

    let s = summary(chaotic.path());
    assert_eq!(summary_u64(&s, "cells"), CELLS);
    assert_eq!(failures_u64(&s, "count"), 0);
    assert!(failures_u64(&s, "retries") >= 1, "the injected fault must show up as a retry");
    let injected = s.get("failures").and_then(|f| f.get("injected")).expect("injected section");
    assert!(
        injected.get("grid.cell.run").and_then(Json::as_u64) == Some(1),
        "summary must attribute the injected fault to its site: {injected}"
    );
}

#[test]
fn trace_corruption_degrades_bit_identically() {
    let baseline = common::TempDir::new("degrade-baseline");
    let out = run_grid(baseline.path(), &[], &[]);
    assert!(out.status.success(), "baseline failed: {}", String::from_utf8_lossy(&out.stderr));
    let want = cell_files(baseline.path());

    // With the on-disk trace cache enabled, flip a bit in the first
    // frame read back from it: the checksum rejects the frame and the
    // source layer degrades to live emulation — same committed stream,
    // same stats, byte for byte.
    let chaotic = common::TempDir::new("degrade-chaos");
    let traces = chaotic.path().join("traces");
    std::fs::create_dir_all(&traces).expect("trace dir");
    let out = run_grid(
        chaotic.path(),
        &[],
        &[
            ("RVP_FAIL", "seed=5;trace.reader.frame=flip@1"),
            ("RVP_TRACE_DIR", traces.to_str().expect("utf8 path")),
        ],
    );
    assert!(out.status.success(), "degraded run failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        cell_files(chaotic.path()),
        want,
        "cells served through the degradation path must be bit-identical"
    );
    let s = summary(chaotic.path());
    assert_eq!(failures_u64(&s, "count"), 0);
}

#[test]
fn unrecoverable_cell_is_poisoned_and_reported() {
    let dir = common::TempDir::new("chaos-poison");
    // Every attempt of the single cell panics, at every ladder rung.
    let out = run_grid(
        dir.path(),
        &["--workloads", "li", "--schemes", "no_predict"],
        &[("RVP_FAIL", "seed=1;grid.cell.run=panic@1+")],
    );
    assert_eq!(out.status.code(), Some(20), "poisoned sweep must exit 20");

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"fatal\":true") && stderr.contains("\"exit_code\":20"),
        "fatal diagnostic must be a structured one-liner: {stderr}"
    );

    let s = summary(dir.path());
    assert_eq!(summary_u64(&s, "cells"), 0);
    assert_eq!(failures_u64(&s, "count"), 1);
    let poisoned = s
        .get("failures")
        .and_then(|f| f.get("poisoned"))
        .and_then(Json::as_arr)
        .expect("poisoned list");
    assert_eq!(poisoned.len(), 1);
    let p = &poisoned[0];
    assert_eq!(p.get("cell").and_then(Json::as_str), Some("li/no_predict"));
    assert!(
        p.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("panic")),
        "poisoned record must carry the error: {p}"
    );
    // Both ladder rungs (shared, then live — no trace store) were tried.
    assert!(p.get("attempts").and_then(Json::as_u64) >= Some(2));
}
