//! Chaos tests: `rvp-grid` under a seeded deterministic failpoint
//! schedule (`RVP_FAIL`).
//!
//! The invariants under fault injection:
//!
//! * transient faults are retried and the sweep still succeeds, with
//!   every surviving cell **bit-identical** to the fault-free run;
//! * trace-layer corruption degrades to a lower committed-stream
//!   source, again bit-identically;
//! * a cell that fails every rung of the degradation ladder is reported
//!   as poisoned in the summary's `failures` section and turns the exit
//!   code into 20 — it never aborts the rest of the sweep.

mod common;

use common::{cell_files, failures_u64, run_grid, summary, summary_u64, CELLS};
use rvp_core::Json;

/// Threads alive in this process right now (`/proc/self/task`); 0 when
/// the proc filesystem is unavailable (non-Linux).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}

/// `--cell-timeout` used to abandon the watchdogged thread: every fired
/// timeout leaked a thread still grinding its simulation. The watchdog
/// is now a cooperative cancel token the cell polls, so a timed-out
/// attempt squashes and joins. Run a cell that cannot finish inside its
/// timeout and assert the process thread count returns to baseline.
#[test]
fn fired_cell_timeout_leaves_no_thread_behind() {
    use rvp_bench::grid::{run_one_cell, CellOptions, GridCell};
    use rvp_core::{by_name_or_err, Runner, SampleSpec};

    let baseline = live_threads();
    if baseline == 0 {
        return; // no /proc: nothing to measure on this platform
    }

    let dir = common::TempDir::new("timeout-leak");
    let mut runner = Runner { traces: None, ..Runner::default() };
    // Minutes of debug-build work against a 1-second timeout; the
    // sampling planner polls the token every few thousand records.
    runner.measure_insts = 50_000_000;
    runner.profile_insts = 4_000;
    runner.workload_scale = 512;
    runner.sampling = Some(SampleSpec::parse("interval=30000").expect("sample spec"));
    let cell = GridCell {
        workload: by_name_or_err("li").expect("workload"),
        scheme: rvp_core::SchemeSpec::parse("no_predict").expect("scheme"),
    };

    let started = std::time::Instant::now();
    let opts = CellOptions { retries: 1, timeout_secs: 1 };
    let poisoned = match run_one_cell(&runner, &cell, opts, dir.path()) {
        Ok(_) => panic!("a 1s timeout must poison this cell"),
        Err(poisoned) => poisoned,
    };
    assert!(
        poisoned.error.contains("timeout") || poisoned.error.contains("cancel"),
        "poison reason names the timeout: {}",
        poisoned.error
    );
    // Cooperative squash, not the 10s abandon-grace path: every ladder
    // rung (2 at most here) times out at ~1s and joins within a poll.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(15),
        "squash took {:?}; cell ignored its token",
        started.elapsed()
    );

    // The leak assertion: every spawned cell/watchdog thread is joined.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if live_threads() <= baseline {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread leak: {} threads at baseline, {} after timed-out cell",
            baseline,
            live_threads()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

#[test]
fn transient_injected_faults_are_retried_bit_identically() {
    let baseline = common::TempDir::new("chaos-baseline");
    let out = run_grid(baseline.path(), &[], &[]);
    assert!(out.status.success(), "baseline failed: {}", String::from_utf8_lossy(&out.stderr));
    let want = cell_files(baseline.path());
    assert_eq!(want.len() as u64, CELLS);

    // The second cell attempt of the sweep hits an injected transient
    // I/O fault; the containment layer retries it on the same ladder
    // rung and the sweep completes cleanly.
    let chaotic = common::TempDir::new("chaos-transient");
    let out = run_grid(chaotic.path(), &[], &[("RVP_FAIL", "seed=42;grid.cell.run=io@2")]);
    assert!(out.status.success(), "chaotic run failed: {}", String::from_utf8_lossy(&out.stderr));

    let got = cell_files(chaotic.path());
    assert_eq!(got, want, "surviving cells must be bit-identical to the fault-free run");

    let s = summary(chaotic.path());
    assert_eq!(summary_u64(&s, "cells"), CELLS);
    assert_eq!(failures_u64(&s, "count"), 0);
    assert!(failures_u64(&s, "retries") >= 1, "the injected fault must show up as a retry");
    let injected = s.get("failures").and_then(|f| f.get("injected")).expect("injected section");
    assert!(
        injected.get("grid.cell.run").and_then(Json::as_u64) == Some(1),
        "summary must attribute the injected fault to its site: {injected}"
    );
}

#[test]
fn trace_corruption_degrades_bit_identically() {
    let baseline = common::TempDir::new("degrade-baseline");
    let out = run_grid(baseline.path(), &[], &[]);
    assert!(out.status.success(), "baseline failed: {}", String::from_utf8_lossy(&out.stderr));
    let want = cell_files(baseline.path());

    // With the on-disk trace cache enabled, flip a bit in the first
    // frame read back from it: the checksum rejects the frame and the
    // source layer degrades to live emulation — same committed stream,
    // same stats, byte for byte.
    let chaotic = common::TempDir::new("degrade-chaos");
    let traces = chaotic.path().join("traces");
    std::fs::create_dir_all(&traces).expect("trace dir");
    let out = run_grid(
        chaotic.path(),
        &[],
        &[
            ("RVP_FAIL", "seed=5;trace.reader.frame=flip@1"),
            ("RVP_TRACE_DIR", traces.to_str().expect("utf8 path")),
        ],
    );
    assert!(out.status.success(), "degraded run failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        cell_files(chaotic.path()),
        want,
        "cells served through the degradation path must be bit-identical"
    );
    let s = summary(chaotic.path());
    assert_eq!(failures_u64(&s, "count"), 0);
}

#[test]
fn unrecoverable_cell_is_poisoned_and_reported() {
    let dir = common::TempDir::new("chaos-poison");
    // Every attempt of the single cell panics, at every ladder rung.
    let out = run_grid(
        dir.path(),
        &["--workloads", "li", "--schemes", "no_predict"],
        &[("RVP_FAIL", "seed=1;grid.cell.run=panic@1+")],
    );
    assert_eq!(out.status.code(), Some(20), "poisoned sweep must exit 20");

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"fatal\":true") && stderr.contains("\"exit_code\":20"),
        "fatal diagnostic must be a structured one-liner: {stderr}"
    );

    let s = summary(dir.path());
    assert_eq!(summary_u64(&s, "cells"), 0);
    assert_eq!(failures_u64(&s, "count"), 1);
    let poisoned = s
        .get("failures")
        .and_then(|f| f.get("poisoned"))
        .and_then(Json::as_arr)
        .expect("poisoned list");
    assert_eq!(poisoned.len(), 1);
    let p = &poisoned[0];
    assert_eq!(p.get("cell").and_then(Json::as_str), Some("li/no_predict"));
    assert!(
        p.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("panic")),
        "poisoned record must carry the error: {p}"
    );
    // Both ladder rungs (shared, then live — no trace store) were tried.
    assert!(p.get("attempts").and_then(Json::as_u64) >= Some(2));
}
