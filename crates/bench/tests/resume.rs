//! Kill-and-resume test: SIGKILL `rvp-grid` mid-sweep, re-run with
//! `--resume`, and require the merged output — every cell file and the
//! load-bearing summary fields — to be identical to an uninterrupted
//! run.

mod common;

use std::time::{Duration, Instant};

use common::{cell_files, failures_u64, grid_command, run_grid, summary, summary_u64, CELLS};

#[test]
fn killed_sweep_resumes_to_identical_results() {
    let baseline = common::TempDir::new("resume-baseline");
    let out = run_grid(baseline.path(), &[], &[]);
    assert!(out.status.success(), "baseline failed: {}", String::from_utf8_lossy(&out.stderr));
    let want = cell_files(baseline.path());
    let want_summary = summary(baseline.path());

    // Start the same sweep with an injected 400ms delay per cell (the
    // delay changes timing only, never results), wait until at least
    // two cells are durably journaled, then SIGKILL the process.
    let victim = common::TempDir::new("resume-victim");
    let mut child =
        grid_command(victim.path(), &[], &[("RVP_FAIL", "seed=9;grid.cell.run=delay400")])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn rvp-grid");
    let manifest = victim.path().join("grid_manifest.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let journaled = std::fs::read_to_string(&manifest)
            .map(|t| t.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if journaled >= 2 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("grid finished before it could be killed (status {status}); delay too short");
        }
        assert!(Instant::now() < deadline, "no cells journaled within the deadline");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill");
    let _ = child.wait();

    // The interrupted run left a partial manifest and some cell files,
    // but no summary.
    let partial = cell_files(victim.path());
    assert!(!partial.is_empty() && (partial.len() as u64) < CELLS, "kill landed mid-sweep");
    assert!(!victim.path().join("grid_summary.json").exists());

    // Resume: verified cells are skipped, the rest re-run, and the
    // merged output is identical to the uninterrupted sweep.
    let out = run_grid(victim.path(), &["--resume"], &[]);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));

    assert_eq!(cell_files(victim.path()), want, "merged cells must match the clean run");
    let s = summary(victim.path());
    assert_eq!(summary_u64(&s, "cells"), summary_u64(&want_summary, "cells"));
    assert_eq!(
        summary_u64(&s, "simulated_insts"),
        summary_u64(&want_summary, "simulated_insts"),
        "resumed cells must contribute their journaled instruction counts"
    );
    assert_eq!(
        s.get("source_mode").and_then(rvp_core::Json::as_str),
        want_summary.get("source_mode").and_then(rvp_core::Json::as_str)
    );
    assert_eq!(failures_u64(&s, "count"), 0);
    assert!(summary_u64(&s, "resumed_cells") >= 2, "the journaled cells must be restored");

    // A tampered cell file is re-verified and re-run on the next
    // resume, not trusted.
    let victim_file = victim.path().join("li-no_predict.json");
    std::fs::write(&victim_file, b"{}\n").expect("tamper");
    let out = run_grid(victim.path(), &["--resume"], &[]);
    assert!(out.status.success(), "re-resume failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(cell_files(victim.path()), want, "tampered cell must be recomputed");
    let s = summary(victim.path());
    assert_eq!(summary_u64(&s, "resumed_cells"), CELLS - 1);
}
