//! Shared scaffolding for the `rvp-grid` resilience integration tests:
//! a scratch directory, a grid invocation wrapper with hermetic
//! environment, and cell/summary readers.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use rvp_core::Json;

/// A scratch directory unique to one test, removed on drop.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(test: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("rvp-grid-test-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The small grid every test here runs: 2 workloads x 3 schemes.
pub const WORKLOADS: &str = "li,go";
pub const SCHEMES: &str = "no_predict,lvp,drvp_all";
pub const CELLS: u64 = 6;

/// A `rvp-grid` command on the test grid with tiny budgets, one worker
/// (deterministic failpoint hit order) and a hermetic environment.
pub fn grid_command(out_dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rvp-grid"));
    cmd.arg(out_dir)
        .args(["--workloads", WORKLOADS, "--schemes", SCHEMES])
        .args(extra_args)
        .env_remove("RVP_FAIL")
        .env_remove("RVP_TRACE_DIR")
        .env_remove("RVP_SOURCE")
        .env_remove("RVP_JSON_DIR")
        .env_remove("RVP_LOG")
        .env_remove("RVP_LOG_FILE")
        .env("RVP_MEASURE_INSTS", "20000")
        .env("RVP_PROFILE_INSTS", "40000")
        .env("RVP_THREADS", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd
}

/// Runs the grid to completion, returning the captured output.
pub fn run_grid(out_dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> Output {
    grid_command(out_dir, extra_args, envs).output().expect("spawn rvp-grid")
}

/// All cell JSON files in `dir` (name -> bytes), excluding the summary
/// and manifest.
pub fn cell_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("read out dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name().is_some_and(|n| n != "grid_summary.json")
        })
        .map(|p| {
            let name = p.file_name().expect("file name").to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("read cell file"))
        })
        .collect()
}

/// The parsed grid summary of `dir`.
pub fn summary(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("grid_summary.json")).expect("summary exists");
    Json::parse(&text).expect("summary parses")
}

pub fn summary_u64(summary: &Json, key: &str) -> u64 {
    summary.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("summary key {key}"))
}

pub fn failures_u64(summary: &Json, key: &str) -> u64 {
    summary
        .get("failures")
        .and_then(|f| f.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("failures key {key}"))
}
