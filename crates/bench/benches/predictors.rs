//! Microbenchmarks of the predictor and substrate structures: the
//! per-access cost of everything the timing model touches every cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvp_core::{
    BpredConfig, BranchUnit, ConfidenceTable, DrvpConfig, DrvpPredictor, GabbayPredictor,
    LastValuePredictor, LvpConfig, MemConfig, Reg, TableConfig,
};
use rvp_mem::Hierarchy;

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");

    g.bench_function("lvp_train_predict", |b| {
        let mut lvp = LastValuePredictor::new(LvpConfig::paper());
        let mut pc = 0usize;
        b.iter(|| {
            pc = (pc + 97) & 0xffff;
            lvp.train(pc, (pc as u64) & 7);
            black_box(lvp.predict(pc))
        });
    });

    g.bench_function("drvp_train_confident", |b| {
        let mut rvp = DrvpPredictor::new(DrvpConfig::paper());
        let mut pc = 0usize;
        b.iter(|| {
            pc = (pc + 97) & 0xffff;
            rvp.train(pc, pc & 3 != 0);
            black_box(rvp.confident(pc))
        });
    });

    g.bench_function("gabbay_train_confident", |b| {
        let mut gab = GabbayPredictor::paper();
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 1) % 31;
            gab.train(Reg::int(i), i & 3 != 0);
            black_box(gab.confident(Reg::int(i)))
        });
    });

    g.bench_function("confidence_table_tagged", |b| {
        let mut t = ConfidenceTable::new(TableConfig { tagged: true, ..TableConfig::default() });
        let mut pc = 0usize;
        b.iter(|| {
            pc = (pc + 33) & 0x7ff;
            t.train(pc, true);
            black_box(t.confident(pc))
        });
    });

    g.bench_function("gshare_update", |b| {
        let mut bp = BranchUnit::new(BpredConfig::table1());
        let mut pc = 0usize;
        b.iter(|| {
            pc = (pc + 13) & 0xfff;
            black_box(bp.update(
                pc,
                rvp_bpred::BranchKind::CondDirect { target: pc + 4 },
                pc & 3 != 0,
                pc + 4,
            ))
        });
    });

    g.bench_function("cache_hierarchy_access", |b| {
        let mut h = Hierarchy::new(MemConfig::table1());
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 64) & 0xf_ffff;
            black_box(h.access_data(a, false))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
