//! Overhead gate for the observability layer.
//!
//! Two claims are checked by timing the same simulation cell three
//! ways (min-of-N wall clock, which is robust to scheduler noise in a
//! way medians of two samples are not):
//!
//! 1. with `ObsConfig::off()` the per-cycle cost beyond the seed
//!    simulator is a single O(1) branchy classification — the off and
//!    on configurations must stay within a loose ratio of each other,
//!    so a regression that makes instrumentation expensive (or worse,
//!    makes *disabled* instrumentation expensive) fails `cargo bench`;
//! 2. the always-on CPI ladder itself is cheap enough that the off
//!    configuration's absolute throughput stays in the range the
//!    `sim_throughput` bench tracks.
//!
//! A third scenario arms the span tracer (`rvp_core::span::arm`) for
//! the same cell and holds it to the same gate: the disarmed path is
//! one relaxed atomic load per run (the alloc-count test proves it
//! allocation-free), and the armed path samples once per run plus a
//! handful of phase spans, so both must stay inside the ratio.
//!
//! The gate ratio defaults to 1.25 and can be loosened for noisy
//! machines with `RVP_OBS_BENCH_RATIO`.

use std::time::{Duration, Instant};

use criterion::black_box;
use rvp_core::{by_name, ObsConfig, Runner, SchemeSpec};

const RUNS: usize = 7;

fn min_time(mut f: impl FnMut()) -> Duration {
    f(); // warmup
    (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("RUNS > 0")
}

fn runner(obs: ObsConfig) -> Runner {
    Runner { profile_insts: 40_000, measure_insts: 60_000, traces: None, obs, ..Runner::default() }
}

fn main() {
    let wl = by_name("li").expect("workload");
    let scheme = SchemeSpec::parse("drvp_all").unwrap();

    let off = runner(ObsConfig::off());
    let sampled = runner(ObsConfig { track_pc: false, ..ObsConfig::standard() });
    let full = runner(ObsConfig::standard());

    // Warm the shared profile caches out of the timed region.
    off.run(&wl, &scheme).expect("baseline run");
    sampled.run(&wl, &scheme).expect("sampled run");
    full.run(&wl, &scheme).expect("instrumented run");

    let t_off = min_time(|| {
        black_box(off.run(&wl, &scheme).expect("baseline run"));
    });
    let t_sampled = min_time(|| {
        black_box(sampled.run(&wl, &scheme).expect("sampled run"));
    });
    let t_full = min_time(|| {
        black_box(full.run(&wl, &scheme).expect("instrumented run"));
    });

    // Armed span tracer over the otherwise-off configuration: per run
    // it costs the sim.run/warmup/steady/finalize spans plus the
    // bounded recovery-burst records, drained between iterations so the
    // ring never saturates and every iteration pays the same price.
    rvp_core::span::arm(rvp_core::span::DEFAULT_RING_CAPACITY);
    let t_traced = min_time(|| {
        black_box(off.run(&wl, &scheme).expect("traced run"));
        black_box(rvp_core::span::drain());
    });
    rvp_core::span::disarm();

    let ratio = |t: Duration| t.as_secs_f64() / t_off.as_secs_f64().max(1e-9);
    println!("obs_overhead/off              min {t_off:>12.3?}");
    println!(
        "obs_overhead/sampling_only    min {t_sampled:>12.3?}  ({:.3}x off)",
        ratio(t_sampled)
    );
    println!("obs_overhead/full             min {t_full:>12.3?}  ({:.3}x off)", ratio(t_full));
    println!("obs_overhead/spans_armed      min {t_traced:>12.3?}  ({:.3}x off)", ratio(t_traced));

    let max_ratio: f64 =
        std::env::var("RVP_OBS_BENCH_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(1.25);
    let worst = ratio(t_full).max(ratio(t_sampled)).max(ratio(t_traced));
    assert!(
        worst <= max_ratio,
        "instrumentation overhead {worst:.3}x exceeds the {max_ratio:.2}x gate \
         (override with RVP_OBS_BENCH_RATIO)"
    );
    println!("obs_overhead: gate passed ({worst:.3}x <= {max_ratio:.2}x)");
}
