//! End-to-end throughput of the emulator, profiler and timing simulator,
//! in simulated instructions per wall-clock second — the quantity that
//! bounds how large an experiment budget is practical.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rvp_core::{
    Emulator, Input, PredictionPlan, Profile, ProfileConfig, Recovery, Scheme, Simulator,
    UarchConfig,
};

const INSTS: u64 = 50_000;

fn bench_throughput(c: &mut Criterion) {
    let wl = rvp_core::by_name("li").expect("workload");
    let program = wl.program(Input::Ref);

    let mut g = c.benchmark_group("throughput");
    g.throughput(Throughput::Elements(INSTS));
    g.sample_size(20);

    g.bench_function("emulator", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&program);
            black_box(emu.run(INSTS).unwrap())
        });
    });

    g.bench_function("profiler", |b| {
        b.iter(|| {
            black_box(
                Profile::collect(&program, &ProfileConfig { max_insts: INSTS, min_execs: 32 })
                    .unwrap(),
            )
        });
    });

    g.bench_function("sim_no_predict", |b| {
        b.iter(|| {
            black_box(
                Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
                    .run(&program, INSTS)
                    .unwrap(),
            )
        });
    });

    g.bench_function("sim_drvp_all", |b| {
        b.iter(|| {
            black_box(
                Simulator::new(
                    UarchConfig::table1(),
                    Scheme::drvp(rvp_core::Scope::AllInsts, PredictionPlan::new()),
                    Recovery::Selective,
                )
                .run(&program, INSTS)
                .unwrap(),
            )
        });
    });

    g.bench_function("sim_wide16", |b| {
        b.iter(|| {
            black_box(
                Simulator::new(UarchConfig::wide16(), Scheme::no_predict(), Recovery::Selective)
                    .run(&program, INSTS)
                    .unwrap(),
            )
        });
    });

    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
