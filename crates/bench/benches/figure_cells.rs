//! One Criterion benchmark per paper table/figure: times a reduced-budget
//! cell of each experiment so regressions in any part of the
//! reproduction pipeline (profile, plan, transform, simulate) show up as
//! timing changes here. The full-budget regeneration lives in the
//! `fig*`/`table2` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rvp_core::{Runner, SchemeSpec, UarchConfig};

fn tiny_runner() -> Runner {
    Runner { profile_insts: 40_000, measure_insts: 25_000, ..Runner::default() }
}

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_cells");
    g.sample_size(10);
    let wl = rvp_core::by_name("li").expect("workload");

    g.bench_function("fig1_reuse_measurement", |b| {
        let r = tiny_runner();
        b.iter(|| black_box(r.fig1(&wl).unwrap()));
    });
    g.bench_function("fig3_static_rvp_cell", |b| {
        let r = tiny_runner();
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("srvp_dead").unwrap()).unwrap()));
    });
    g.bench_function("fig4_refetch_cell", |b| {
        let r = Runner { recovery: rvp_core::Recovery::Refetch, ..tiny_runner() };
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("srvp_dead").unwrap()).unwrap()));
    });
    g.bench_function("fig5_drvp_loads_cell", |b| {
        let r = tiny_runner();
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("drvp_dead_lv").unwrap()).unwrap()));
    });
    g.bench_function("fig6_drvp_all_cell", |b| {
        let r = tiny_runner();
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("drvp_all_dead_lv").unwrap()).unwrap()));
    });
    g.bench_function("table2_gabbay_cell", |b| {
        let r = tiny_runner();
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("Grp_all").unwrap()).unwrap()));
    });
    g.bench_function("fig7_realloc_cell", |b| {
        let r = tiny_runner();
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("drvp_all_realloc").unwrap()).unwrap()));
    });
    g.bench_function("fig8_wide16_cell", |b| {
        let r = Runner { config: UarchConfig::wide16(), ..tiny_runner() };
        b.iter(|| black_box(r.run(&wl, &SchemeSpec::parse("drvp_all_dead_lv").unwrap()).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
