//! Shared driver code for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Every binary prints the same rows/series as the corresponding figure
//! or table in the paper. Absolute numbers differ (the substrate is a
//! synthetic-workload simulator, not the authors' Alpha testbed); the
//! *shapes* — which scheme wins, by roughly what factor, and where — are
//! the reproduction target recorded in `EXPERIMENTS.md`.
//!
//! Instruction budgets can be overridden with the environment variables
//! `RVP_MEASURE_INSTS` and `RVP_PROFILE_INSTS`; `RVP_SCALE` multiplies
//! every workload's outer pass counts toward paper-scale instruction
//! counts, and `RVP_SAMPLE` (`auto` or `interval=N,warmup=N,...`)
//! switches measurement to sampled simulation.

pub mod grid;

use std::path::PathBuf;

use rvp_core::{
    RunResult, Runner, SampleSpec, SchemeSpec, SimError, SourceMode, UarchConfig, Workload,
};

/// Budgets and the committed-stream source read from the environment
/// with sensible defaults (`RVP_SOURCE` accepts `live`, `replay` or
/// `shared`; unknown values are ignored). `RVP_SCALE` sets
/// [`Runner::workload_scale`] and `RVP_SAMPLE` (a [`SampleSpec::parse`]
/// string) enables sampled measurement — a malformed spec is reported
/// on stderr and ignored rather than silently simulating something
/// other than what was asked.
pub fn runner_from_env() -> Runner {
    let mut r = Runner::default();
    if let Some(v) = env_u64("RVP_MEASURE_INSTS") {
        r.measure_insts = v;
    }
    if let Some(v) = env_u64("RVP_PROFILE_INSTS") {
        r.profile_insts = v;
    }
    if let Some(mode) = std::env::var("RVP_SOURCE").ok().and_then(|v| SourceMode::parse(&v)) {
        r.source_mode = mode;
    }
    if let Some(v) = env_u64("RVP_SCALE") {
        r.workload_scale = v.max(1);
    }
    if let Ok(text) = std::env::var("RVP_SAMPLE") {
        match SampleSpec::parse(&text) {
            Ok(spec) => r.sampling = Some(spec),
            Err(e) => eprintln!("warning: ignoring RVP_SAMPLE: {e}"),
        }
    }
    r
}

/// The 16-wide variant with the same environment overrides.
pub fn wide_runner_from_env() -> Runner {
    Runner { config: UarchConfig::wide16(), ..runner_from_env() }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Directory for machine-readable JSON results (`RVP_JSON_DIR`), created
/// on first use; `None` when the variable is unset or empty.
pub fn json_dir() -> Option<PathBuf> {
    let dir = std::env::var("RVP_JSON_DIR").ok()?;
    if dir.is_empty() {
        return None;
    }
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create RVP_JSON_DIR {}: {e}", dir.display());
        return None;
    }
    Some(dir)
}

/// Writes one simulation result as `<workload>-<scheme>.json` under
/// `dir`, atomically. Used by `rvp-grid` and (via [`ipc_row`]) the fig
/// binaries.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn emit_cell(dir: &std::path::Path, result: &RunResult) -> std::io::Result<()> {
    grid::emit_cell_atomic(dir, result).map(|_| ())
}

/// Prints the standard experiment header (machine + budgets).
pub fn print_header(title: &str, runner: &Runner) {
    println!("== {title} ==");
    println!(
        "machine: {}-wide fetch, {} int / {} fp IQ, {} int ({} ld/st) + {} fp units, \
         {}-cycle mispredict penalty",
        runner.config.fetch_width,
        runner.config.iq_int,
        runner.config.iq_fp,
        runner.config.int_units,
        runner.config.ldst_ports,
        runner.config.fp_units,
        runner.config.frontend_depth + 1,
    );
    println!(
        "budgets: {} measured insts, {} profiled insts, threshold {:.2}, recovery {:?}",
        runner.measure_insts, runner.profile_insts, runner.threshold, runner.recovery
    );
    println!();
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs one scheme across all workloads, returning per-workload IPC.
///
/// # Errors
///
/// Propagates the first simulator error.
pub fn ipc_row(
    runner: &Runner,
    workloads: &[Workload],
    scheme: &SchemeSpec,
) -> Result<Vec<f64>, SimError> {
    let json = json_dir();
    workloads
        .iter()
        .map(|wl| {
            let result = runner.run(wl, scheme)?;
            if let Some(dir) = &json {
                if let Err(e) = emit_cell(dir, &result) {
                    eprintln!("warning: cannot write JSON cell: {e}");
                }
            }
            Ok(result.stats.ipc())
        })
        .collect()
}

/// Formats a row of a figure table: label + one value per workload +
/// average.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:>22}");
    for v in values {
        print!(" {v:7.3}");
    }
    println!(" {:7.3}", mean(values));
}

/// Prints the workload-name header row for figure tables.
pub fn print_workload_header(workloads: &[Workload]) {
    print!("{:>22}", "");
    for wl in workloads {
        print!(" {:>7}", wl.name());
    }
    println!(" {:>7}", "average");
}
