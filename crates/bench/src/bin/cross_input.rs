//! Cross-input profile stability (paper Section 2/5: "static value
//! locality is highly predictable across different inputs, which we also
//! found" — citing Calder et al. and Gabbay & Mendelson).
//!
//! Profiles every workload on both its train and ref inputs and reports
//! how well the train profile's classification transfers: the agreement
//! of the ≥80 % same-register / last-value classifications, and the
//! measured ref accuracy of the train-derived dead/lv plan.

use rvp_bench::{print_header, runner_from_env};
use rvp_core::{Input, Profile, ProfileConfig, SchemeSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Cross-input stability of register-value reuse profiles", &runner);

    println!(
        "{:>10} | {:>10} {:>10} {:>12} {:>14}",
        "program", "same agr.", "lv agr.", "plan sz T/R", "ref accuracy"
    );
    for wl in rvp_core::all_workloads() {
        let cfg = ProfileConfig { max_insts: runner.profile_insts, min_execs: 32 };
        let train_prog = wl.program(Input::Train);
        let ref_prog = wl.program(Input::Ref);
        let ptrain = Profile::collect(&train_prog, &cfg)?;
        let pref = Profile::collect(&ref_prog, &cfg)?;

        // Classification agreement over instructions hot in both runs.
        let mut same_agree = 0usize;
        let mut lv_agree = 0usize;
        let mut hot = 0usize;
        for pc in 0..train_prog.len() {
            if ptrain.stats()[pc].execs < 32 || pref.stats()[pc].execs < 32 {
                continue;
            }
            hot += 1;
            if (ptrain.same_rate(pc) >= 0.8) == (pref.same_rate(pc) >= 0.8) {
                same_agree += 1;
            }
            if (ptrain.lv_rate(pc) >= 0.8) == (pref.lv_rate(pc) >= 0.8) {
                lv_agree += 1;
            }
        }

        let plan_t = ptrain.assist_plan(
            &train_prog,
            runner.threshold,
            rvp_core::PlanScope::AllInsts,
            rvp_core::Assist::DeadLv,
        );
        let plan_r = pref.assist_plan(
            &ref_prog,
            runner.threshold,
            rvp_core::PlanScope::AllInsts,
            rvp_core::Assist::DeadLv,
        );
        let res = runner.run(&wl, &SchemeSpec::parse("drvp_all_dead_lv")?)?;

        println!(
            "{:>10} | {:>9.1}% {:>9.1}% {:>5}/{:<6} {:>13.1}%",
            wl.name(),
            100.0 * same_agree as f64 / hot.max(1) as f64,
            100.0 * lv_agree as f64 / hot.max(1) as f64,
            plan_t.len(),
            plan_r.len(),
            100.0 * res.stats.accuracy(),
        );
    }
    println!();
    println!(
        "expected: classification agreement well above 90% and train-derived plans\n\
         that stay accurate on ref — profiles transfer across inputs, so the\n\
         compiler can act on them (the paper's methodological premise)."
    );
    Ok(())
}
