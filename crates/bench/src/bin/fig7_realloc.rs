//! Figure 7: realistic register reallocation vs no reallocation vs ideal
//! reallocation, for the four programs where the difference matters in
//! the paper (hydro2d, li, mgrid, su2cor).
//!
//! Series: lvp (all insts), drvp_all with no reallocation, drvp_all over
//! the *actually transformed* program (the realistic compiler model), and
//! drvp_all_dead_lv (the ideal-reallocation oracle).

use rvp_bench::{print_header, runner_from_env};
use rvp_core::SchemeSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Figure 7: compiler register reallocation (speedup over no_predict)", &runner);

    let names = ["hydro2d", "li", "mgrid", "su2cor"];
    println!(
        "{:>10} | {:>8} {:>14} {:>14} {:>14}",
        "program", "lvp", "no_realloc", "realloc", "ideal"
    );
    for name in names {
        let wl = rvp_core::by_name(name).expect("workload exists");
        let base = runner.run(&wl, &SchemeSpec::parse("no_predict")?)?.stats;
        let mut cells = Vec::new();
        for label in ["lvp_all", "drvp_all", "drvp_all_realloc", "drvp_all_dead_lv"] {
            let res = runner.run(&wl, &SchemeSpec::parse(label)?)?;
            cells.push(res.stats.ipc() / base.ipc());
        }
        println!(
            "{:>10} | {:>8.4} {:>14.4} {:>14.4} {:>14.4}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!();
    println!(
        "paper shape: compiler-based reallocation recovers most of the ideal \
         potential; wherever LVP beat unassisted dRVP, reallocation is enough \
         to exceed LVP."
    );
    Ok(())
}
