//! Timed comparison of a fully per-cell grid vs the shared-trace grid.
//!
//! Runs a small scheme × workload subset twice and gates on the
//! wall-clock ratio:
//!
//! * **per-cell (live)**: every cell gets a fresh `Runner` with an
//!   empty profile cache, no trace store and `SourceMode::Live` — each
//!   cell pays its own train-profile emulation and re-emulates the ref
//!   input inside the timing run, the behaviour before derived
//!   artifacts (profiles, committed traces) were shared across cells;
//! * **shared**: one `Runner` in the default `SourceMode::Shared`,
//!   traces prewarmed up front — each workload's committed stream is
//!   captured once and fanned out in memory, and the train profile is
//!   collected once per workload.
//!
//! Both legs run the same cells single-threaded, must produce
//! bit-identical stats, and the shared leg must be at least 1.5x
//! faster (override with `RVP_SHARED_BENCH_RATIO`). Timings are
//! written as a JSON artifact for CI upload.
//!
//! ```text
//! grid_shared_trace [--out FILE] [WORKLOAD...]
//! ```
//!
//! Budgets honor `RVP_MEASURE_INSTS` / `RVP_PROFILE_INSTS`; the gate
//! is meaningful with a profile-heavy budget (CI uses 600k profiled /
//! 60k measured), matching the paper methodology where the profile
//! input is much longer than the measured window.

use std::time::{Duration, Instant};

use rvp_core::{by_name, paper_schemes, Json, RunResult, Runner, SchemeSpec, SourceMode, Workload};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn base_runner(mode: SourceMode, profile_insts: u64, measure_insts: u64) -> Runner {
    Runner { source_mode: mode, traces: None, profile_insts, measure_insts, ..Runner::default() }
}

fn main() {
    let mut out: Option<std::path::PathBuf> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().expect("--out needs a path").into()),
            _ => names.push(a),
        }
    }
    if names.is_empty() {
        names = vec!["li".into(), "m88ksim".into()];
    }
    let workloads: Vec<Workload> = names
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown workload {n}")))
        .collect();

    let profile_insts = env_u64("RVP_PROFILE_INSTS", 600_000);
    let measure_insts = env_u64("RVP_MEASURE_INSTS", 60_000);
    let gate: f64 =
        std::env::var("RVP_SHARED_BENCH_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(1.5);
    let schemes = paper_schemes();
    let cells: Vec<(&Workload, &SchemeSpec)> =
        workloads.iter().flat_map(|wl| schemes.iter().map(move |s| (wl, s))).collect();

    println!(
        "grid_shared_trace: {} cells ({} workloads x {} schemes), \
         {profile_insts} profiled / {measure_insts} measured insts, gate {gate:.2}x",
        cells.len(),
        workloads.len(),
        schemes.len(),
    );

    // Shared leg first: any OS warm-up (page cache, allocator) then
    // benefits the per-cell leg, making the gate conservative.
    let shared_runner = base_runner(SourceMode::Shared, profile_insts, measure_insts);
    let t0 = Instant::now();
    for wl in &workloads {
        shared_runner.prewarm_trace(wl).expect("prewarm");
    }
    let prewarm = t0.elapsed();
    let (shared_results, shared_cells) = run_leg(&cells, |_| shared_runner.clone());
    let shared_total = prewarm + total(&shared_cells);

    let (live_results, live_cells) =
        run_leg(&cells, |_| base_runner(SourceMode::Live, profile_insts, measure_insts));
    let live_total = total(&live_cells);

    for (s, l) in shared_results.iter().zip(&live_results) {
        assert_eq!(
            s.stats, l.stats,
            "{}/{}: shared and per-cell stats differ",
            s.workload, s.scheme
        );
    }

    let tally = shared_runner.source_counters.total();
    let speedup = live_total.as_secs_f64() / shared_total.as_secs_f64();
    println!(
        "per-cell (live): {:8.2}s  ({:.1}ms/cell)",
        live_total.as_secs_f64(),
        1e3 * live_total.as_secs_f64() / cells.len() as f64,
    );
    println!(
        "shared traces:   {:8.2}s  ({:.1}ms/cell + {:.1}ms prewarm; \
         {} captures, {} shared hits, {} live fallbacks)",
        shared_total.as_secs_f64(),
        1e3 * total(&shared_cells).as_secs_f64() / cells.len() as f64,
        1e3 * prewarm.as_secs_f64(),
        tally.captures,
        tally.shared_hits,
        tally.live_fallbacks,
    );
    println!("speedup: {speedup:.2}x (gate {gate:.2}x)");

    if let Some(path) = &out {
        let per_cell: Vec<Json> = cells
            .iter()
            .zip(shared_cells.iter().zip(&live_cells))
            .map(|((wl, scheme), (s, l))| {
                Json::obj([
                    ("workload", wl.name().into()),
                    ("scheme", scheme.label().into()),
                    ("shared_ms", (1e3 * s.as_secs_f64()).into()),
                    ("live_ms", (1e3 * l.as_secs_f64()).into()),
                ])
            })
            .collect();
        let summary = Json::obj([
            ("cells", (cells.len() as u64).into()),
            ("profile_insts", profile_insts.into()),
            ("measure_insts", measure_insts.into()),
            ("live_s", live_total.as_secs_f64().into()),
            ("shared_s", shared_total.as_secs_f64().into()),
            ("prewarm_s", prewarm.as_secs_f64().into()),
            ("speedup", speedup.into()),
            ("gate", gate.into()),
            ("timings", Json::Arr(per_cell)),
        ]);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, format!("{summary}\n")).expect("write timings artifact");
        println!("timings written: {}", path.display());
    }

    if speedup < gate {
        eprintln!("FAIL: shared-trace grid speedup {speedup:.2}x is below the {gate:.2}x gate");
        std::process::exit(1);
    }
    println!("PASS: shared traces are >={gate:.2}x faster than fully per-cell runs");
}

/// Runs every cell with the runner `mk` supplies for it, timing each.
fn run_leg(
    cells: &[(&Workload, &SchemeSpec)],
    mk: impl Fn(usize) -> Runner,
) -> (Vec<RunResult>, Vec<Duration>) {
    let mut results = Vec::with_capacity(cells.len());
    let mut times = Vec::with_capacity(cells.len());
    for (i, (wl, scheme)) in cells.iter().enumerate() {
        let runner = mk(i);
        let t = Instant::now();
        let result = runner.run(wl, scheme).expect("cell");
        times.push(t.elapsed());
        results.push(result);
    }
    (results, times)
}

fn total(times: &[Duration]) -> Duration {
    times.iter().sum()
}
