//! Figure 3: static register-based value prediction, IPC per program.
//!
//! Series: no_predict, lvp, srvp_same, srvp_dead, srvp_live,
//! srvp_live_lv — all with selective-reissue recovery and the 80% profile
//! threshold, as in the paper.

use rvp_bench::{ipc_row, print_header, print_row, print_workload_header, runner_from_env};
use rvp_core::SchemeSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Figure 3: static RVP (IPC)", &runner);
    let workloads = rvp_core::all_workloads();
    print_workload_header(&workloads);
    for label in ["no_predict", "lvp", "srvp_same", "srvp_dead", "srvp_live", "srvp_live_lv"] {
        let scheme = SchemeSpec::parse(label)?;
        let row = ipc_row(&runner, &workloads, &scheme)?;
        print_row(scheme.label(), &row);
    }
    println!();
    println!(
        "paper shape: several programs gain >=3% from unmodified code; li and mgrid \
         gain substantially more from the dead-register optimization; srvp_live_lv \
         is the (optimistic) upper bound, up to ~22% over no_predict."
    );
    Ok(())
}
