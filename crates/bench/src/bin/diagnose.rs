//! Diagnostic dump: per-(workload, scheme) pipeline statistics.
//!
//! Not a paper figure — a calibration and debugging aid that prints IPC,
//! coverage, accuracy, recovery activity, branch accuracy and cache miss
//! rates for any workload (all of them by default).
//!
//! Usage: `diagnose [workload ...]`

use rvp_bench::{print_header, runner_from_env};
use rvp_core::SchemeSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut runner = runner_from_env();
    // Calibration overrides, e.g. RVP_IQ=256 to test window sensitivity.
    if let Ok(v) = std::env::var("RVP_IQ") {
        let n: usize = v.parse().expect("RVP_IQ must be a number");
        runner.config.iq_int = n;
        runner.config.iq_fp = n;
    }
    if let Ok(v) = std::env::var("RVP_ROB") {
        let n: usize = v.parse().expect("RVP_ROB must be a number");
        runner.config.rob_size = n;
    }
    print_header("diagnostics", &runner);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<_> = if args.is_empty() {
        rvp_core::all_workloads()
    } else {
        args.iter()
            .map(|a| rvp_core::by_name(a).unwrap_or_else(|| panic!("unknown workload {a}")))
            .collect()
    };

    println!(
        "{:>10} {:>18} | {:>6} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "program",
        "scheme",
        "ipc",
        "cycles",
        "cov%",
        "acc%",
        "costly",
        "squash",
        "reissue",
        "br-acc",
        "l1d-mr",
        "l2-mr",
        "iq-occ",
        "fstall"
    );
    for wl in &workloads {
        for label in
            ["no_predict", "lvp_all", "drvp_all", "drvp_all_dead_lv", "drvp_all_realloc", "Grp_all"]
        {
            let scheme = SchemeSpec::parse(label)?;
            let s = runner.run(wl, &scheme)?.stats;
            println!(
                "{:>10} {:>18} | {:>6.3} {:>7} {:>6.1} {:>6.1} {:>8} {:>8} {:>8} {:>7.3} {:>7.3} {:>7.3} {:>7.2} {:>7.3}",
                wl.name(),
                scheme.label(),
                s.ipc(),
                s.cycles,
                100.0 * s.coverage(),
                100.0 * s.accuracy(),
                s.costly_mispredictions,
                s.squashed_insts,
                s.reissued_insts,
                s.branch.direction_accuracy(),
                s.mem.l1d.miss_rate(),
                s.mem.l2.miss_rate(),
                s.avg_iq_int_occupancy(),
                s.fetch_stall_fraction(),
            );
        }
        println!();
    }
    Ok(())
}
