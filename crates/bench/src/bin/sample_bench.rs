//! `sample_bench`: wall-clock and accuracy comparison of sampled vs
//! full detailed simulation, tracked in `BENCH_sample.json`.
//!
//! Runs every cell of a grid column (default: the paper schemes over
//! `m88ksim` and `ijpeg`) twice at the same committed-instruction
//! budget: once measuring every instruction in detail, and once under
//! the BBV/k-means sampling pipeline (`Runner::sampling`), where the
//! stream is phase-profiled and clustered once per workload and only
//! one functionally-warmed representative interval per phase is
//! simulated in detail. Reports per-cell wall time and IPC for both,
//! then gates on two numbers:
//!
//! * **speedup**: total full wall time over total sampled wall time
//!   must be at least `RVP_SAMPLE_BENCH_RATIO` (default 10; 0 records
//!   without gating). The plan and windows are built once per workload
//!   and shared by every scheme cell, so the speedup grows with the
//!   number of schemes in the column — bench the full paper column for
//!   the headline number.
//! * **accuracy**: every cell's sampled IPC must be within
//!   `RVP_SAMPLE_ERR` (default 0.02) relative error of its full-run
//!   IPC.
//!
//! ```text
//! sample_bench [--out FILE] [--schemes a,b,c] [WORKLOAD...]
//! ```
//!
//! Both paths stream the workload live (`SourceMode::Live`, no trace
//! store): at paper-scale budgets the committed trace of a full run
//! does not fit in memory, so live emulation is the honest baseline.
//! The budget is `RVP_SAMPLE_BENCH_INSTS` (default 8M); train profiles
//! for profile-guided schemes are prewarmed outside the timed region
//! since both paths share them unchanged.

use std::time::{Duration, Instant};

use rvp_core::{by_name_or_err, paper_schemes, Json, Runner, SampleSpec, SchemeSpec, SourceMode};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One cell measured both ways.
struct CellPair {
    workload: &'static str,
    scheme: String,
    full_ipc: f64,
    sampled_ipc: f64,
    full: Duration,
    sampled: Duration,
    k: u64,
    sampled_insts: u64,
}

impl CellPair {
    fn rel_err(&self) -> f64 {
        (self.sampled_ipc - self.full_ipc).abs() / self.full_ipc
    }
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_sample.json");
    let mut names: Vec<String> = Vec::new();
    let mut schemes: Vec<SchemeSpec> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a path").into(),
            "--schemes" => {
                let list = it.next().expect("--schemes needs a comma list");
                schemes = list
                    .split(',')
                    .map(|s| SchemeSpec::parse(s).unwrap_or_else(|e| panic!("{e}")))
                    .collect();
            }
            _ => names.push(a),
        }
    }
    if names.is_empty() {
        names = vec!["m88ksim".into(), "ijpeg".into()];
    }
    if schemes.is_empty() {
        schemes = paper_schemes();
    }
    let workloads: Vec<rvp_core::Workload> =
        names.iter().map(|n| by_name_or_err(n).unwrap_or_else(|e| panic!("{e}"))).collect();

    let budget = env_u64("RVP_SAMPLE_BENCH_INSTS", 8_000_000);
    // Seed-era programs halt under 1M committed insts; the generator
    // scale factor must stretch every stream past the budget or the
    // "full" run is not actually full.
    let scale = env_u64("RVP_SAMPLE_BENCH_SCALE", 16).max(1);
    let profile_insts = env_u64("RVP_PROFILE_INSTS", 1_500_000);
    let speedup_gate = env_f64("RVP_SAMPLE_BENCH_RATIO", 10.0);
    let err_gate = env_f64("RVP_SAMPLE_ERR", 0.02);
    // Same spec knob the rest of the toolchain honors.
    let spec = match std::env::var("RVP_SAMPLE") {
        Ok(v) => SampleSpec::parse(&v).unwrap_or_else(|e| panic!("bad RVP_SAMPLE: {e}")),
        Err(_) => SampleSpec::default(),
    };
    let (interval, warmup) = spec.resolve(budget);

    let full_runner = Runner {
        measure_insts: budget,
        profile_insts,
        workload_scale: scale,
        source_mode: SourceMode::Live,
        traces: None,
        ..Runner::default()
    };
    // Same machine, same budget, same (prewarmed, clone-shared) train
    // profiles — the only difference is the sampling pipeline.
    let sampled_runner = Runner { sampling: Some(spec), ..full_runner.clone() };

    for wl in &workloads {
        full_runner.train_profile(wl).expect("prewarm profile");
    }

    println!(
        "sample_bench: {} cells ({} workloads x {} schemes), {budget} insts/cell at scale x{scale}, \
         {interval}-inst intervals, {warmup}-inst warmup",
        workloads.len() * schemes.len(),
        workloads.len(),
        schemes.len(),
    );

    let mut cells: Vec<CellPair> = Vec::new();
    for wl in &workloads {
        for scheme in &schemes {
            let t = Instant::now();
            let full = full_runner.run(wl, scheme).expect("full cell");
            let full_wall = t.elapsed();

            let t = Instant::now();
            let sampled = sampled_runner.run(wl, scheme).expect("sampled cell");
            let sampled_wall = t.elapsed();
            let plan = sampled.sampling.as_ref().expect("sampled run carries its plan");

            let cell = CellPair {
                workload: wl.name(),
                scheme: scheme.label().to_owned(),
                full_ipc: full.stats.ipc(),
                sampled_ipc: sampled.stats.ipc(),
                full: full_wall,
                sampled: sampled_wall,
                k: plan.intervals.len() as u64,
                sampled_insts: plan.sampled_insts(),
            };
            println!(
                "  {:<28} full {:8.1}ms ipc {:.4} | sampled {:7.1}ms ipc {:.4} \
                 (k={}, {:.1}% detail, err {:.3}%)",
                format!("{}/{}", cell.workload, cell.scheme),
                1e3 * full_wall.as_secs_f64(),
                cell.full_ipc,
                1e3 * sampled_wall.as_secs_f64(),
                cell.sampled_ipc,
                cell.k,
                100.0 * cell.sampled_insts as f64 / budget as f64,
                100.0 * cell.rel_err(),
            );
            cells.push(cell);
        }
    }

    let full_s: f64 = cells.iter().map(|c| c.full.as_secs_f64()).sum();
    let sampled_s: f64 = cells.iter().map(|c| c.sampled.as_secs_f64()).sum();
    let speedup = full_s / sampled_s;
    let max_err = cells.iter().map(CellPair::rel_err).fold(0.0, f64::max);
    println!(
        "\nfull {full_s:.2}s, sampled {sampled_s:.2}s -> {speedup:.1}x speedup, \
         max IPC error {:.3}%",
        100.0 * max_err
    );

    let per_cell: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj([
                ("workload", c.workload.into()),
                ("scheme", c.scheme.as_str().into()),
                ("full_ipc", c.full_ipc.into()),
                ("sampled_ipc", c.sampled_ipc.into()),
                ("rel_err", c.rel_err().into()),
                ("full_ms", (1e3 * c.full.as_secs_f64()).into()),
                ("sampled_ms", (1e3 * c.sampled.as_secs_f64()).into()),
                ("k", c.k.into()),
                ("sampled_insts", c.sampled_insts.into()),
            ])
        })
        .collect();
    let summary = Json::obj([
        ("bench", "sample_bench".into()),
        ("budget_insts", budget.into()),
        ("workload_scale", scale.into()),
        ("interval_insts", interval.into()),
        ("warmup_insts", warmup.into()),
        ("full_s", full_s.into()),
        ("sampled_s", sampled_s.into()),
        ("speedup", speedup.into()),
        ("max_rel_err", max_err.into()),
        ("speedup_gate", speedup_gate.into()),
        ("err_gate", err_gate.into()),
        ("cells", Json::Arr(per_cell)),
    ]);
    std::fs::write(&out, format!("{summary}\n")).expect("write BENCH file");
    println!("trajectory written: {}", out.display());

    let mut failed = false;
    if max_err > err_gate {
        eprintln!(
            "FAIL: max sampled-vs-full IPC error {:.3}% exceeds the {:.1}% gate",
            100.0 * max_err,
            100.0 * err_gate
        );
        failed = true;
    }
    if speedup_gate > 0.0 && speedup < speedup_gate {
        eprintln!("FAIL: sampling speedup {speedup:.2}x is below the {speedup_gate:.1}x gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: sampled IPC within {:.1}% of full on every cell{}",
        100.0 * err_gate,
        if speedup_gate > 0.0 { ", >=10x-class speedup" } else { "" }
    );
}
