//! Figure 5: dynamic register-based value prediction for load
//! instructions — speedup over no prediction.
//!
//! Series: lvp, drvp, drvp_dead, drvp_dead_lv.

use rvp_bench::{ipc_row, print_header, print_row, print_workload_header, runner_from_env};
use rvp_core::SchemeSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Figure 5: dynamic RVP, loads only (speedup over no_predict)", &runner);
    let workloads = rvp_core::all_workloads();
    print_workload_header(&workloads);

    let base = ipc_row(&runner, &workloads, &SchemeSpec::parse("no_predict")?)?;
    for label in ["lvp", "drvp", "drvp_dead", "drvp_dead_lv"] {
        let scheme = SchemeSpec::parse(label)?;
        let ipc = ipc_row(&runner, &workloads, &scheme)?;
        let speedup: Vec<f64> = ipc.iter().zip(&base).map(|(a, b)| a / b).collect();
        print_row(scheme.label(), &speedup);
    }
    println!();
    println!(
        "paper shape: drvp_dead only slightly under-performs the much more expensive \
         LVP; drvp_dead_lv outperforms LVP, averaging ~8% over no prediction."
    );
    Ok(())
}
