//! Beyond the paper: the related-work baselines it cites but excludes
//! ("we do not compare it with schemes that add additional storage and
//! complexity to what is required for last-value prediction"), plus the
//! read-port sensitivity it argues away in Section 4.2.
//!
//! Part 1 — extended buffer predictors (stride, order-2 context, hybrid)
//! vs dynamic RVP, all instructions.
//!
//! Part 2 — limiting predicted non-loads to 1 or 2 extra register read
//! ports per cycle. The paper: dRVP averages 0.2–0.5 predictions per
//! cycle, "so a single extra read port would likely suffice".

use rvp_bench::{mean, print_header, print_row, print_workload_header, runner_from_env};
use rvp_core::{
    new_value_predictor, Input, PredictionPlan, Recovery, Scheme, SchemeSpec, Scope, Simulator,
    UarchConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Beyond the paper: richer buffers and read-port limits", &runner);
    let workloads = rvp_core::all_workloads();

    // ---- Part 1: buffer-predictor zoo (speedup over no prediction). ----
    println!("extended buffer predictors (all instructions, speedup over no_predict):");
    print_workload_header(&workloads);
    let mut base_ipc = Vec::new();
    for wl in &workloads {
        let program = wl.program(Input::Ref);
        let s = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
            .run(&program, runner.measure_insts)?;
        base_ipc.push(s.ipc());
    }
    let configs: [(&str, &str); 4] =
        [("lvp", "lvp"), ("stride", "stride"), ("context(2)", "fcm"), ("hybrid", "stride_lvp")];
    for (name, spec) in configs {
        let mut row = Vec::new();
        for (wl, base) in workloads.iter().zip(&base_ipc) {
            let program = wl.program(Input::Ref);
            let s = Simulator::new(
                UarchConfig::table1(),
                Scheme::new(name, Scope::AllInsts, new_value_predictor(spec)?),
                Recovery::Selective,
            )
            .run(&program, runner.measure_insts)?;
            row.push(s.ipc() / base);
        }
        print_row(name, &row);
    }
    // Hardware-learned register correlation (Jourdan et al. style): the
    // "combine with RVP, no compiler needed" direction the paper's
    // related-work section sketches.
    let mut row = Vec::new();
    for (wl, base) in workloads.iter().zip(&base_ipc) {
        let program = wl.program(Input::Ref);
        let s = Simulator::new(
            UarchConfig::table1(),
            Scheme::new("hw_correlation", Scope::AllInsts, new_value_predictor("hwcorr")?),
            Recovery::Selective,
        )
        .run(&program, runner.measure_insts)?;
        row.push(s.ipc() / base);
    }
    print_row("hw_correlation", &row);

    // The paper's scheme, for reference.
    let mut row = Vec::new();
    for (wl, base) in workloads.iter().zip(&base_ipc) {
        let res = runner.run(wl, &SchemeSpec::parse("drvp_all_dead_lv")?)?;
        row.push(res.stats.ipc() / base);
    }
    print_row("drvp_all_dead_lv", &row);

    // ---- Part 2: read-port limits on predicted non-loads. ----
    println!();
    println!("read-port sensitivity of drvp_all (speedup over no_predict):");
    println!("{:>14} | {:>9} {:>15}", "extra ports", "avg", "preds/cycle");
    for ports in [Some(1usize), Some(2), None] {
        let mut speedups = Vec::new();
        let mut ppc = Vec::new();
        for (wl, base) in workloads.iter().zip(&base_ipc) {
            let program = wl.program(Input::Ref);
            let config = UarchConfig { pred_ports: ports, ..UarchConfig::table1() };
            let s = Simulator::new(
                config,
                Scheme::drvp(Scope::AllInsts, PredictionPlan::new()),
                Recovery::Selective,
            )
            .run(&program, runner.measure_insts)?;
            speedups.push(s.ipc() / base);
            ppc.push(s.predictions as f64 / s.cycles as f64);
        }
        let label = ports.map_or("unlimited".to_owned(), |p| p.to_string());
        println!("{:>14} | {:>9.4} {:>15.3}", label, mean(&speedups), mean(&ppc));
    }
    println!();
    println!(
        "expected: context/hybrid buffers buy little over LVP on these codes at far\n\
         higher cost, and one extra read port captures nearly all of dRVP's benefit\n\
         (predictions per cycle stay well under 1) — the paper's Section 4.2 claim."
    );
    Ok(())
}
