//! Figure 8: value prediction on the aggressive 16-wide machine —
//! speedup over no prediction.
//!
//! Series: lvp_all, drvp_all, drvp_all_dead_lv, on a machine with doubled
//! queues, units, renaming registers and fetch bandwidth (3 basic blocks
//! per cycle).

use rvp_bench::{ipc_row, print_header, print_row, print_workload_header, wide_runner_from_env};
use rvp_core::SchemeSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = wide_runner_from_env();
    print_header("Figure 8: 16-wide machine (speedup over no_predict)", &runner);
    let workloads = rvp_core::all_workloads();
    print_workload_header(&workloads);

    let base = ipc_row(&runner, &workloads, &SchemeSpec::parse("no_predict")?)?;
    for label in ["lvp_all", "drvp_all", "drvp_all_dead_lv"] {
        let scheme = SchemeSpec::parse(label)?;
        let ipc = ipc_row(&runner, &workloads, &scheme)?;
        let speedup: Vec<f64> = ipc.iter().zip(&base).map(|(a, b)| a / b).collect();
        print_row(scheme.label(), &speedup);
    }
    println!();
    println!(
        "paper shape: removing ILP limits amplifies RVP — ~15% over no prediction \
         and ~5% over LVP; even unassisted drvp_all matches lvp_all here."
    );
    Ok(())
}
