//! `core_cycles`: throughput of the timing core's cycle loop, tracked
//! as a perf trajectory in `BENCH_core.json`.
//!
//! Runs the default grid subset (every paper scheme over `li` and
//! `m88ksim`) single-threaded with shared in-memory traces, with all
//! derived artifacts — train profiles and committed traces — prewarmed
//! up front so the timed region is (almost) purely the per-cell cycle
//! loop. Reports committed-instructions-simulated-per-second per cell
//! and overall.
//!
//! ```text
//! core_cycles [--out FILE] [WORKLOAD...]
//! ```
//!
//! `FILE` (default `BENCH_core.json`) is both the trajectory record and
//! the gate's baseline: the first run writes its own measurement as the
//! baseline; later runs keep the stored baseline, update the `current`
//! measurement, and **fail if current throughput is below
//! `RVP_CORE_BENCH_RATIO` (default 1.3) times the baseline** — the
//! floor the hot-loop overhaul must clear over the pre-overhaul core.
//! Set the ratio to `0` to record without gating (e.g. on a machine the
//! baseline was not measured on). Budgets honor `RVP_MEASURE_INSTS` /
//! `RVP_PROFILE_INSTS`.
//!
//! Each cell is timed as the best of `RVP_CORE_BENCH_REPS` (default 3)
//! identical runs: the minimum strips scheduler and frequency noise,
//! which otherwise swamps the gate at this cell size (~±10% run to
//! run). The stored baseline must be seeded with the same rep policy
//! for the ratio to be meaningful.

use std::time::{Duration, Instant};

use rvp_core::{by_name, paper_schemes, Json, Runner, SchemeSpec, SourceMode, Workload};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One timed cell.
struct CellTime {
    workload: &'static str,
    scheme: SchemeSpec,
    committed: u64,
    wall: Duration,
}

impl CellTime {
    fn minsts_per_s(&self) -> f64 {
        self.committed as f64 / self.wall.as_secs_f64() / 1e6
    }
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_core.json");
    let mut names: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a path").into(),
            _ => names.push(a),
        }
    }
    if names.is_empty() {
        names = vec!["li".into(), "m88ksim".into()];
    }
    let workloads: Vec<Workload> = names
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown workload {n}")))
        .collect();

    let profile_insts = env_u64("RVP_PROFILE_INSTS", 300_000);
    let measure_insts = env_u64("RVP_MEASURE_INSTS", 200_000);
    let gate: f64 =
        std::env::var("RVP_CORE_BENCH_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(1.3);

    let runner = Runner {
        source_mode: SourceMode::Shared,
        traces: None,
        profile_insts,
        measure_insts,
        ..Runner::default()
    };

    // Pay for every derived artifact before the clock starts: committed
    // traces and train profiles are shared across the column, so the
    // timed region is the per-cell timing simulation itself.
    let t0 = Instant::now();
    for wl in &workloads {
        runner.prewarm_trace(wl).expect("prewarm trace");
        runner.train_profile(wl).expect("prewarm profile");
    }
    let prewarm = t0.elapsed();

    let schemes = paper_schemes();
    let cells: Vec<(&Workload, &SchemeSpec)> =
        workloads.iter().flat_map(|wl| schemes.iter().map(move |s| (wl, s))).collect();
    println!(
        "core_cycles: {} cells ({} workloads x {} schemes), {measure_insts} measured insts, \
         prewarm {:.2}s",
        cells.len(),
        workloads.len(),
        schemes.len(),
        prewarm.as_secs_f64(),
    );

    let reps = env_u64("RVP_CORE_BENCH_REPS", 3).max(1);
    let mut times: Vec<CellTime> = Vec::with_capacity(cells.len());
    for (wl, scheme) in &cells {
        let mut best: Option<(u64, Duration)> = None;
        for _ in 0..reps {
            let t = Instant::now();
            let result = runner.run(wl, scheme).expect("cell");
            let wall = t.elapsed();
            if best.is_none_or(|(_, w)| wall < w) {
                best = Some((result.stats.committed, wall));
            }
        }
        let (committed, wall) = best.expect("at least one rep");
        let cell = CellTime { workload: wl.name(), scheme: (*scheme).clone(), committed, wall };
        println!(
            "  {:<28} {:8.2}ms  {:6.2} Minsts/s",
            format!("{}/{}", cell.workload, cell.scheme.label()),
            1e3 * wall.as_secs_f64(),
            cell.minsts_per_s(),
        );
        times.push(cell);
    }

    let committed: u64 = times.iter().map(|c| c.committed).sum();
    let elapsed: Duration = times.iter().map(|c| c.wall).sum();
    let current = committed as f64 / elapsed.as_secs_f64() / 1e6;
    println!(
        "\ncurrent: {current:.2} Minsts/s ({committed} committed insts in {:.2}s)",
        elapsed.as_secs_f64()
    );

    // The stored baseline survives re-measurement; only the first run
    // (no file, or no baseline in it) seeds it from itself.
    let baseline = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .and_then(|j| j.get("baseline")?.get("minsts_per_s")?.as_f64());

    let speedup = baseline.map(|b| current / b);
    let per_cell: Vec<Json> = times
        .iter()
        .map(|c| {
            Json::obj([
                ("workload", c.workload.into()),
                ("scheme", c.scheme.label().into()),
                ("committed", c.committed.into()),
                ("wall_ms", (1e3 * c.wall.as_secs_f64()).into()),
                ("minsts_per_s", c.minsts_per_s().into()),
            ])
        })
        .collect();
    let measurement = |minsts: f64| {
        Json::obj([
            ("minsts_per_s", minsts.into()),
            ("measure_insts", measure_insts.into()),
            ("profile_insts", profile_insts.into()),
        ])
    };
    let mut summary = vec![
        ("bench".into(), "core_cycles".into()),
        ("baseline".into(), measurement(baseline.unwrap_or(current))),
        (
            "current".into(),
            Json::obj([
                ("minsts_per_s", current.into()),
                ("committed", committed.into()),
                ("elapsed_s", elapsed.as_secs_f64().into()),
                ("prewarm_s", prewarm.as_secs_f64().into()),
                ("cells", Json::Arr(per_cell)),
            ]),
        ),
        ("gate".into(), gate.into()),
    ];
    if let Some(s) = speedup {
        summary.push(("speedup".into(), s.into()));
    }
    std::fs::write(&out, format!("{}\n", Json::Obj(summary))).expect("write BENCH file");
    println!("trajectory written: {}", out.display());

    match (baseline, speedup) {
        (None, _) => println!("no stored baseline; this run seeds it ({current:.2} Minsts/s)"),
        (Some(b), Some(s)) => {
            println!("baseline: {b:.2} Minsts/s  speedup: {s:.2}x  (gate {gate:.2}x)");
            if s < gate {
                eprintln!("FAIL: core throughput {s:.2}x is below the {gate:.2}x gate");
                std::process::exit(1);
            }
            println!("PASS: core cycle loop is >={gate:.2}x the stored baseline");
        }
        _ => unreachable!("speedup exists iff baseline does"),
    }
}
