//! Timed comparison of emulation-based vs trace-replay profiling.
//!
//! Measures the profiling cost of one grid column — the train profile
//! requests made by the paper schemes of a single workload — under the
//! two strategies this repository has used:
//!
//! * **emulation-based**: every profile-guided scheme re-collects the
//!   train profile through the live emulator (the pre-trace `Runner`
//!   behaviour);
//! * **trace-replay**: the committed trace is captured once into a
//!   `TraceStore`, the first request replays it through
//!   `Profile::collect_stream`, and the remaining requests hit the
//!   in-memory `ProfileCache`.
//!
//! Prints single-collection micro-times for transparency, then the
//! column-level speedup, and exits non-zero if the warm-cache speedup on
//! the first workload (default `m88ksim`) is below 5x.
//!
//! ```text
//! trace_bench [WORKLOAD...]
//! ```

use std::time::{Duration, Instant};

use rvp_core::{by_name, paper_schemes, Profile, ProfileConfig, Runner, TraceMeta, TraceStore};
use rvp_workloads::Input;

const REPS: u32 = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> =
        if args.is_empty() { vec!["m88ksim"] } else { args.iter().map(|s| s.as_str()).collect() };
    let budget = std::env::var("RVP_PROFILE_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500_000u64);
    let cfg = ProfileConfig { max_insts: budget, min_execs: 32 };

    // The profile-guided schemes of one grid column: each of these made
    // `Runner` collect the train profile from scratch before this PR.
    let guided = paper_schemes().iter().filter(|s| s.needs_profile()).count();

    let dir = std::env::temp_dir().join(format!("rvp-trace-bench-{}", std::process::id()));

    let mut gate = None;
    println!("budget {budget} insts, {guided} profile-guided schemes per column, best of {REPS}");
    for name in names {
        let wl = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        let train = wl.program(Input::Train);

        // Emulation-based column: one live collection per guided scheme.
        let emu_one = best_of(REPS, || {
            std::hint::black_box(Profile::collect(&train, &cfg).expect("emulated profile"));
        });
        let emu_column = emu_one * guided as u32;

        // Trace-replay column: capture once (cold cost), then one replay
        // plus cache hits. A fresh Runner per rep empties the profile
        // cache; the trace store stays warm on disk.
        let store = TraceStore::new(&dir).expect("create trace dir");
        let meta = TraceMeta::for_program(name, rvp_core::TraceInput::Train, budget, &train);
        let t0 = Instant::now();
        store.capture(&train, &meta).expect("capture");
        let capture_time = t0.elapsed();
        let bytes = std::fs::metadata(store.path_for(&meta)).expect("trace exists").len();

        let replay_one = best_of(REPS, || {
            let reader = store.open(&meta).expect("open trace");
            std::hint::black_box(
                Profile::collect_stream(&train, &cfg, reader).expect("replayed profile"),
            );
        });
        let replay_column = best_of(REPS, || {
            let runner = Runner {
                profile_insts: budget,
                traces: Some(store.clone()),
                profiles: Default::default(),
                ..Runner::default()
            };
            for _ in 0..guided {
                std::hint::black_box(runner.train_profile(&wl).expect("profile"));
            }
        });

        // The two paths must agree exactly.
        let emulated = Profile::collect(&train, &cfg).expect("emulated profile");
        let reader = store.open(&meta).expect("open trace");
        let replayed = Profile::collect_stream(&train, &cfg, reader).expect("replayed profile");
        assert!(emulated == replayed, "{name}: replayed profile differs from emulated");

        let speedup = emu_column.as_secs_f64() / replay_column.as_secs_f64();
        gate.get_or_insert(speedup);
        println!(
            "{name:>9}: one collect: emulate {:6.1}ms / replay {:6.1}ms  \
             ({:.2} B/record, capture {:.1}ms)",
            emu_one.as_secs_f64() * 1e3,
            replay_one.as_secs_f64() * 1e3,
            bytes as f64 / emulated.committed() as f64,
            capture_time.as_secs_f64() * 1e3,
        );
        println!(
            "{:>9}  column ({guided} profiles): emulation-based {:6.1}ms, \
             trace-replay {:6.1}ms -> {speedup:.1}x",
            "",
            emu_column.as_secs_f64() * 1e3,
            replay_column.as_secs_f64() * 1e3,
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    let gate = gate.expect("at least one workload");
    if gate < 5.0 {
        eprintln!("FAIL: column speedup {gate:.2}x is below the 5x target");
        std::process::exit(1);
    }
    println!("PASS: trace-replay profiling is >=5x faster than emulation-based profiling");
}

fn best_of(reps: u32, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one rep")
}
