//! Figure 6: dynamic register-based value prediction for all
//! instructions — speedup over no prediction.
//!
//! Series: lvp_all, Grp_all (Gabbay & Mendelson register predictor),
//! drvp_all, drvp_all_dead, drvp_all_dead_lv.

use rvp_bench::{ipc_row, print_header, print_row, print_workload_header, runner_from_env};
use rvp_core::SchemeSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Figure 6: dynamic RVP, all instructions (speedup over no_predict)", &runner);
    let workloads = rvp_core::all_workloads();
    print_workload_header(&workloads);

    let base = ipc_row(&runner, &workloads, &SchemeSpec::parse("no_predict")?)?;
    for label in ["lvp_all", "Grp_all", "drvp_all", "drvp_all_dead", "drvp_all_dead_lv"] {
        let scheme = SchemeSpec::parse(label)?;
        let ipc = ipc_row(&runner, &workloads, &scheme)?;
        let speedup: Vec<f64> = ipc.iter().zip(&base).map(|(a, b)| a / b).collect();
        print_row(scheme.label(), &speedup);
    }
    println!();
    println!(
        "paper shape: drvp_all_dead_lv averages ~12% over no prediction; even \
         drvp_all_dead alone beats buffer-based lvp_all; the Gabbay register \
         predictor trails badly due to per-register counter interference."
    );
    Ok(())
}
