//! Figure 1: the degree of register-value reuse for loads.
//!
//! Prints, per benchmark and averaged per language group (the paper shows
//! the "C SPEC" and "F SPEC" averages), the percentage of dynamic loads
//! whose value was already in the same register, a dead register, any
//! register, or any register ∪ the load's last value.

use rvp_bench::{print_header, runner_from_env};
use rvp_core::Lang;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Figure 1: register-value reuse of loads", &runner);

    println!(
        "{:>10} {:>6} | {:>9} {:>9} {:>9} {:>9}",
        "program", "lang", "same reg", "dead reg", "any reg", "reg|lvp"
    );
    type Columns = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut groups: [Columns; 2] = Default::default();
    for wl in rvp_core::all_workloads() {
        let row = runner.fig1(&wl)?;
        let [same, dead, any, lvp] = row.fractions();
        println!(
            "{:>10} {:>6} | {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            wl.name(),
            if wl.lang() == Lang::C { "C" } else { "F" },
            100.0 * same,
            100.0 * dead,
            100.0 * any,
            100.0 * lvp
        );
        let g = &mut groups[usize::from(wl.lang() == Lang::Fortran)];
        g.0.push(same);
        g.1.push(dead);
        g.2.push(any);
        g.3.push(lvp);
    }
    println!();
    for (name, g) in [("C SPEC", &groups[0]), ("F SPEC", &groups[1])] {
        println!(
            "{:>10} {:>6} | {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            name,
            "avg",
            100.0 * rvp_bench::mean(&g.0),
            100.0 * rvp_bench::mean(&g.1),
            100.0 * rvp_bench::mean(&g.2),
            100.0 * rvp_bench::mean(&g.3)
        );
    }
    println!();
    println!(
        "paper shape: cumulative bars; \"at least 75% of the time, the value loaded \
         from memory is either already in the register file, or was recently there\"."
    );
    Ok(())
}
