//! Table 2: percentage of instructions predicted and prediction accuracy
//! for dRVP (dead), dRVP (dead+lv), LVP and the Gabbay & Mendelson
//! register predictor — all-instruction scope, as in the paper.
//!
//! Also prints the paper's tagged-vs-untagged RVP-counter comparison
//! (Section 7.2: "untagged counters actually outperform tagged").

use rvp_bench::{print_header, runner_from_env};
use rvp_core::{
    new_value_predictor, Assist, Input, PlanMode, PlanScope, Profile, ProfileConfig, Recovery,
    Scheme, SchemeSpec, Scope, Simulator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Table 2: coverage / accuracy (% insts predicted / pred. rate)", &runner);

    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>12}",
        "program", "drvp dead", "dead lv", "lvp", "G&M RP"
    );
    for wl in rvp_core::all_workloads() {
        let mut cells = Vec::new();
        for label in ["drvp_all_dead", "drvp_all_dead_lv", "lvp_all", "Grp_all"] {
            let res = runner.run(&wl, &SchemeSpec::parse(label)?)?;
            cells.push(format!(
                "{:>4.1}/{:<5.1}",
                100.0 * res.stats.coverage(),
                100.0 * res.stats.accuracy()
            ));
        }
        println!(
            "{:>10} | {:>12} {:>12} {:>12} {:>12}",
            wl.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    // Ablation: tagged vs untagged dRVP confidence counters. The paper's
    // SPEC binaries overflow a 1K table; our stand-ins are far smaller,
    // so the table is scaled down (16 entries) to recreate the same
    // aliasing pressure. The paper's claim: positive interference makes
    // untagged RVP counters perform at least as well as tagged ones.
    println!();
    println!(
        "ablation: dRVP confidence counters under aliasing pressure (16-entry table), \
         untagged vs tagged (speedup over no_predict)"
    );
    println!("{:>10} | {:>9} {:>9}", "program", "untagged", "tagged");
    for wl in rvp_core::all_workloads() {
        let train = wl.program(Input::Train);
        let profile = Profile::collect(
            &train,
            &ProfileConfig { max_insts: runner.profile_insts, min_execs: 32 },
        )?;
        let plan =
            profile.assist_plan(&train, runner.threshold, PlanScope::AllInsts, Assist::DeadLv);
        let program = wl.program(Input::Ref);
        let base = Simulator::new(runner.config.clone(), Scheme::no_predict(), Recovery::Selective)
            .run(&program, runner.measure_insts)?;
        let mut cells = Vec::new();
        for spec in ["drvp:entries=16", "drvp:entries=16,tagged=true"] {
            let predictor = new_value_predictor(spec)?;
            let scheme = Scheme::new(spec, Scope::AllInsts, predictor)
                .with_plan(plan.clone(), PlanMode::Overlay);
            let stats = Simulator::new(runner.config.clone(), scheme, Recovery::Selective)
                .run(&program, runner.measure_insts)?;
            cells.push(stats.ipc() / base.ipc());
        }
        println!("{:>10} | {:>9.4} {:>9.4}", wl.name(), cells[0], cells[1]);
    }
    println!();
    println!(
        "paper shape: coverage correlates with performance more than accuracy; both \
         dRVP and LVP exceed ~95% accuracy at threshold 7; G&M coverage collapses; \
         untagged RVP counters perform at least as well as tagged."
    );
    Ok(())
}
