//! Table 2: percentage of instructions predicted and prediction accuracy
//! for dRVP (dead), dRVP (dead+lv), LVP and the Gabbay & Mendelson
//! register predictor — all-instruction scope, as in the paper.
//!
//! Also prints the paper's tagged-vs-untagged RVP-counter comparison
//! (Section 7.2: "untagged counters actually outperform tagged").

use rvp_bench::{print_header, runner_from_env};
use rvp_core::{
    Assist, DrvpConfig, Input, PaperScheme, PlanScope, Profile, ProfileConfig, Recovery, Scheme,
    Simulator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = runner_from_env();
    print_header("Table 2: coverage / accuracy (% insts predicted / pred. rate)", &runner);

    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>12}",
        "program", "drvp dead", "dead lv", "lvp", "G&M RP"
    );
    for wl in rvp_core::all_workloads() {
        let mut cells = Vec::new();
        for scheme in [
            PaperScheme::DrvpAllDead,
            PaperScheme::DrvpAllDeadLv,
            PaperScheme::LvpAll,
            PaperScheme::GrpAll,
        ] {
            let res = runner.run(&wl, scheme)?;
            cells.push(format!(
                "{:>4.1}/{:<5.1}",
                100.0 * res.stats.coverage(),
                100.0 * res.stats.accuracy()
            ));
        }
        println!(
            "{:>10} | {:>12} {:>12} {:>12} {:>12}",
            wl.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    // Ablation: tagged vs untagged dRVP confidence counters. The paper's
    // SPEC binaries overflow a 1K table; our stand-ins are far smaller,
    // so the table is scaled down (16 entries) to recreate the same
    // aliasing pressure. The paper's claim: positive interference makes
    // untagged RVP counters perform at least as well as tagged ones.
    println!();
    println!(
        "ablation: dRVP confidence counters under aliasing pressure (16-entry table), \
         untagged vs tagged (speedup over no_predict)"
    );
    println!("{:>10} | {:>9} {:>9}", "program", "untagged", "tagged");
    for wl in rvp_core::all_workloads() {
        let train = wl.program(Input::Train);
        let profile = Profile::collect(
            &train,
            &ProfileConfig { max_insts: runner.profile_insts, min_execs: 32 },
        )?;
        let plan =
            profile.assist_plan(&train, runner.threshold, PlanScope::AllInsts, Assist::DeadLv);
        let program = wl.program(Input::Ref);
        let base = Simulator::new(runner.config.clone(), Scheme::NoPredict, Recovery::Selective)
            .run(&program, runner.measure_insts)?;
        let mut cells = Vec::new();
        let small = |mut c: DrvpConfig| {
            c.table.entries = 16;
            c
        };
        for config in [small(DrvpConfig::paper()), small(DrvpConfig::paper_tagged())] {
            let stats = Simulator::new(
                runner.config.clone(),
                Scheme::DynamicRvp { scope: rvp_core::Scope::AllInsts, plan: plan.clone(), config },
                Recovery::Selective,
            )
            .run(&program, runner.measure_insts)?;
            cells.push(stats.ipc() / base.ipc());
        }
        println!("{:>10} | {:>9.4} {:>9.4}", wl.name(), cells[0], cells[1]);
    }
    println!();
    println!(
        "paper shape: coverage correlates with performance more than accuracy; both \
         dRVP and LVP exceed ~95% accuracy at threshold 7; G&M coverage collapses; \
         untagged RVP counters perform at least as well as tagged."
    );
    Ok(())
}
