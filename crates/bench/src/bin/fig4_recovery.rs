//! Figure 4: the effect of the value-misprediction recovery mechanism.
//!
//! Series: no_predict, then srvp_dead under refetch, reissue and
//! selective-reissue recovery. The paper raises the profile threshold to
//! 90% here because refetch and reissue need more conservative
//! prediction.

use rvp_bench::{ipc_row, print_header, print_row, print_workload_header, runner_from_env};
use rvp_core::{Recovery, SchemeSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut runner = runner_from_env();
    runner.threshold = 0.9;
    print_header("Figure 4: recovery mechanisms (IPC, srvp_dead @ 90%)", &runner);
    let workloads = rvp_core::all_workloads();
    print_workload_header(&workloads);

    let base = ipc_row(&runner, &workloads, &SchemeSpec::parse("no_predict")?)?;
    print_row("no_predict", &base);
    for (label, recovery) in [
        ("srvp_refetch", Recovery::Refetch),
        ("srvp_reissue", Recovery::Reissue),
        ("srvp_selective", Recovery::Selective),
    ] {
        runner.recovery = recovery;
        let row = ipc_row(&runner, &workloads, &SchemeSpec::parse("srvp_dead")?)?;
        print_row(label, &row);
    }
    println!();
    println!(
        "paper shape: refetch performs surprisingly well (often beating reissue, \
         which clogs the instruction queues); selective reissue is best overall."
    );
    Ok(())
}
