//! Calibration probe: dump per-instruction reuse rates and the assist
//! plan for one workload. Usage: `probe_plan <workload>`

use rvp_core::{reallocate, Assist, Input, PlanScope, Profile, ProfileConfig, ReallocOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hydro2d".into());
    let do_realloc = std::env::args().any(|a| a == "--realloc");
    let wl = rvp_core::by_name(&name).expect("workload");
    let mut train = wl.program(Input::Train);
    let profile = Profile::collect(&train, &ProfileConfig { max_insts: 400_000, min_execs: 32 })?;
    if do_realloc {
        let out = reallocate(&train, &profile, &ReallocOptions::default());
        println!(
            "realloc: dead {}/{}, lv {}/{}",
            out.dead_applied, out.dead_attempted, out.lv_applied, out.lv_attempted
        );
        train = out.program;
    }
    let profile = Profile::collect(&train, &ProfileConfig { max_insts: 400_000, min_execs: 32 })?;
    let plan = profile.assist_plan(&train, 0.8, PlanScope::AllInsts, Assist::DeadLv);

    println!("pc | execs same lv bestdead | plan | inst");
    for pc in 0..train.len() {
        let s = &profile.stats()[pc];
        if s.execs < 32 {
            continue;
        }
        let dead = profile
            .best_other_reg(&train, pc, true)
            .map(|(r, rate)| format!("{r}:{rate:.2}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:4} | {:7} {:5.2} {:5.2} {:>9} | {:?} | {}",
            pc,
            s.execs,
            profile.same_rate(pc),
            profile.lv_rate(pc),
            dead,
            plan.kind(pc),
            train.insts()[pc],
        );
    }
    Ok(())
}
