//! `rvp-grid`: the full (workload × scheme) grid, in parallel.
//!
//! Runs every paper scheme over every workload on a work-stealing pool
//! of OS threads, streaming one JSON file per cell to the output
//! directory as it completes, then prints a throughput summary.
//!
//! ```text
//! rvp-grid [OUT_DIR] [--workloads A,B,...] [--schemes A,B,...] \
//!          [--source MODE] [--metrics-out FILE]
//! ```
//!
//! `OUT_DIR` defaults to `RVP_JSON_DIR`, then `results/`.
//! `--workloads` restricts the grid to the named workloads and
//! `--schemes` to the named paper schemes (CI runs a small subset of
//! both this way). `--source` picks the committed-stream
//! source for measurement runs: `shared` (default — each workload's
//! trace is captured once up front and fanned out in memory to every
//! scheme cell), `replay` (stream each cell from the on-disk trace
//! cache) or `live` (re-emulate inside every cell, the pre-refactor
//! behaviour). `--metrics-out` enables the optional instrumentation
//! (time series + per-PC telemetry) on every cell — the artifacts land
//! inside the cell JSONs — and writes a grid-level summary (throughput,
//! trace-cache and per-workload source counters, failures) to FILE.
//!
//! ## Cost-model scheduling
//!
//! Every run records per-cell wall times into `OUT_DIR/grid_summary.json`
//! (under `"cell_seconds"`), and the next run schedules the grid
//! longest-job-first from those timings: on a work-stealing pool the
//! makespan is set by whatever is still running at the end, so the
//! expensive cells must start first. Cells with no recorded timing are
//! estimated from their instruction budget at the observed
//! seconds-per-instruction rate (or run first when no history exists at
//! all, which degrades to the stable grid order).
//!
//! The usual budget overrides (`RVP_MEASURE_INSTS`,
//! `RVP_PROFILE_INSTS`) apply, `RVP_TRACE_DIR` enables the
//! committed-trace cache, `RVP_SOURCE` is the env equivalent of
//! `--source`, and `RVP_THREADS` caps the worker count. Failures and
//! cache counters are also emitted as structured events through the
//! `RVP_LOG` facade.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rvp_bench::{emit_cell, runner_from_env};
use rvp_core::{
    all_workloads, log, Json, ObsConfig, PaperScheme, RunResult, Runner, SourceMode, ToJson,
    Workload,
};

struct Cell {
    workload: Workload,
    scheme: PaperScheme,
}

impl Cell {
    /// The cell's stable identity in summaries and logs.
    fn label(&self) -> String {
        format!("{}/{}", self.workload.name(), self.scheme.label())
    }
}

fn worker_count(cells: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cap = std::env::var("RVP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    cap.min(cells).max(1)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rvp-grid [OUT_DIR] [--workloads A,B,...] [--schemes A,B,...] \
         [--source live|replay|shared] [--metrics-out FILE]"
    );
    ExitCode::from(2)
}

/// The file (in the output directory) per-cell wall times persist in,
/// read back by the next run's longest-job-first schedule.
const SUMMARY_FILE: &str = "grid_summary.json";

/// Per-cell wall times from a previous run's summary, if any.
fn prior_timings(out_dir: &Path) -> HashMap<String, f64> {
    let Ok(text) = std::fs::read_to_string(out_dir.join(SUMMARY_FILE)) else {
        return HashMap::new();
    };
    let Ok(json) = Json::parse(&text) else {
        log::warn(
            "rvp-grid",
            "unreadable prior grid summary; scheduling from instruction budgets",
            &[("path", out_dir.join(SUMMARY_FILE).display().to_string().into())],
        );
        return HashMap::new();
    };
    json.get("cell_seconds")
        .and_then(Json::as_obj)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(label, v)| v.as_f64().map(|secs| (label.clone(), secs)))
                .collect()
        })
        .unwrap_or_default()
}

/// Orders `cells` longest-estimated-first. Known cells carry their
/// measured wall time; unknown ones are estimated from the instruction
/// budget at the mean observed seconds-per-instruction (when nothing is
/// known the estimates are uniform and the stable sort preserves the
/// nominal grid order).
fn schedule(cells: &mut Vec<Cell>, prior: &HashMap<String, f64>, budget: u64) {
    let known: Vec<f64> = cells.iter().filter_map(|c| prior.get(&c.label()).copied()).collect();
    let secs_per_inst = match known.len() {
        0 => 1.0 / budget.max(1) as f64,
        n => known.iter().sum::<f64>() / n as f64 / budget.max(1) as f64,
    };
    let mut keyed: Vec<(f64, Cell)> = cells
        .drain(..)
        .map(|c| {
            let est = prior.get(&c.label()).copied().unwrap_or(budget as f64 * secs_per_inst);
            (est, c)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    *cells = keyed.into_iter().map(|(_, c)| c).collect();
}

fn main() -> ExitCode {
    let mut out_dir: Option<PathBuf> = None;
    let mut only: Option<Vec<String>> = None;
    let mut only_schemes: Option<Vec<String>> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut source: Option<SourceMode> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => match it.next() {
                Some(list) => {
                    only = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
                }
                None => return usage(),
            },
            "--schemes" => match it.next() {
                Some(list) => {
                    only_schemes = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
                }
                None => return usage(),
            },
            "--source" => match it.next().as_deref().and_then(SourceMode::parse) {
                Some(mode) => source = Some(mode),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.into()),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') && out_dir.is_none() => out_dir = Some(a.into()),
            _ => return usage(),
        }
    }
    let out_dir = out_dir
        .or_else(|| std::env::var("RVP_JSON_DIR").ok().filter(|d| !d.is_empty()).map(Into::into))
        .unwrap_or_else(|| "results".into());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        log::error(
            "rvp-grid",
            "cannot create output directory",
            &[("dir", out_dir.display().to_string().into()), ("error", e.to_string().into())],
        );
        return ExitCode::FAILURE;
    }

    let workloads: Vec<Workload> = match &only {
        None => all_workloads().to_vec(),
        Some(names) => {
            let mut selected = Vec::new();
            for name in names {
                match all_workloads().iter().find(|w| w.name() == name) {
                    Some(wl) => selected.push(wl.clone()),
                    None => {
                        let known = all_workloads().iter().map(|w| w.name()).collect::<Vec<_>>();
                        log::error(
                            "rvp-grid",
                            "unknown workload",
                            &[
                                ("workload", name.as_str().into()),
                                ("known", known.join(", ").into()),
                            ],
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            selected
        }
    };

    let schemes: Vec<PaperScheme> = match &only_schemes {
        None => PaperScheme::all().to_vec(),
        Some(names) => {
            let mut selected = Vec::new();
            for name in names {
                match PaperScheme::all().iter().find(|s| s.label() == name) {
                    Some(&scheme) => selected.push(scheme),
                    None => {
                        let known =
                            PaperScheme::all().iter().map(|s| s.label()).collect::<Vec<_>>();
                        log::error(
                            "rvp-grid",
                            "unknown scheme",
                            &[("scheme", name.as_str().into()), ("known", known.join(", ").into())],
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            selected
        }
    };

    let mut runner = runner_from_env();
    if let Some(mode) = source {
        runner.source_mode = mode;
    }
    if metrics_out.is_some() {
        runner.obs = ObsConfig::standard();
    }
    let mut cells: Vec<Cell> = workloads
        .iter()
        .flat_map(|wl| schemes.iter().map(|&scheme| Cell { workload: wl.clone(), scheme }))
        .collect();
    let prior = prior_timings(&out_dir);
    let known = cells.iter().filter(|c| prior.contains_key(&c.label())).count();
    schedule(&mut cells, &prior, runner.measure_insts);
    let workers = worker_count(cells.len());

    println!(
        "rvp-grid: {} workloads x {} schemes = {} cells on {} threads ({} source) -> {}",
        workloads.len(),
        schemes.len(),
        cells.len(),
        workers,
        runner.source_mode.name(),
        out_dir.display()
    );
    println!(
        "schedule: longest-job-first, {known}/{} cells from prior timings, \
         the rest from instruction budgets",
        cells.len()
    );

    let start = Instant::now();

    // Pay every workload's trace capture up front, in parallel, so the
    // cell fan-out below is pure timing simulation (a no-op for the
    // live source). A failed prewarm is not fatal: the cell itself will
    // retry or fall back and report properly.
    if runner.source_mode != SourceMode::Live {
        let next_wl = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(workloads.len()) {
                scope.spawn(|| loop {
                    let i = next_wl.fetch_add(1, Ordering::Relaxed);
                    let Some(wl) = workloads.get(i) else { return };
                    if let Err(e) = runner.prewarm_trace(wl) {
                        log::warn(
                            "rvp-grid",
                            "trace prewarm failed",
                            &[("workload", wl.name().into()), ("error", e.to_string().into())],
                        );
                    }
                });
            }
        });
        println!(
            "traces prewarmed: {} workloads in {:.2}s",
            workloads.len(),
            start.elapsed().as_secs_f64()
        );
    }
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<RunResult>> = Mutex::new(Vec::new());
    let timings: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                run_cells(&runner, &cells, &next, &out_dir, &results, &failures, &timings)
            });
        }
    });

    let elapsed = start.elapsed();
    let results = results.into_inner().expect("results lock");
    let failures = failures.into_inner().expect("failures lock");
    let mut timings = timings.into_inner().expect("timings lock");
    timings.sort_by(|a, b| a.0.cmp(&b.0));

    let simulated: u64 = results.iter().map(|r| r.stats.committed).sum();
    println!(
        "\n{} cells in {:.2}s ({:.1} cells/s, {:.1}M simulated insts/s overall)",
        results.len(),
        elapsed.as_secs_f64(),
        results.len() as f64 / elapsed.as_secs_f64(),
        simulated as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!("profiles collected: {}", runner.profiles.len());
    let sources = runner.source_counters.snapshot();
    if !sources.is_empty() {
        let t = runner.source_counters.total();
        println!(
            "committed-stream sources ({}): {} captures, {} shared hits, {} live fallbacks",
            runner.source_mode.name(),
            t.captures,
            t.shared_hits,
            t.live_fallbacks
        );
    }
    let mut summary: Vec<(String, Json)> = vec![
        ("cells".into(), (results.len() as u64).into()),
        ("failures".into(), (failures.len() as u64).into()),
        ("elapsed_s".into(), elapsed.as_secs_f64().into()),
        ("simulated_insts".into(), simulated.into()),
        ("profiles".into(), (runner.profiles.len() as u64).into()),
        ("source_mode".into(), runner.source_mode.name().into()),
        (
            "cell_seconds".into(),
            Json::Obj(timings.iter().map(|(label, s)| (label.clone(), (*s).into())).collect()),
        ),
        (
            "trace_sources".into(),
            Json::Obj(
                sources.iter().map(|(wl, tally)| ((*wl).to_owned(), tally.to_json())).collect(),
            ),
        ),
    ];
    if let Some(store) = &runner.traces {
        let c = store.counters();
        println!(
            "trace cache ({}): {} hits, {} captures, {} fallbacks",
            store.dir().display(),
            c.hits(),
            c.captures(),
            c.fallbacks()
        );
        log::info(
            "rvp-grid",
            "trace cache counters",
            &[
                ("dir", store.dir().display().to_string().into()),
                ("hits", c.hits().into()),
                ("captures", c.captures().into()),
                ("fallbacks", c.fallbacks().into()),
            ],
        );
        summary.push((
            "trace_cache".into(),
            Json::obj([
                ("hits", c.hits().into()),
                ("captures", c.captures().into()),
                ("fallbacks", c.fallbacks().into()),
            ]),
        ));
    }
    log::info(
        "rvp-grid",
        "grid complete",
        &[
            ("cells", (results.len() as u64).into()),
            ("failures", (failures.len() as u64).into()),
            ("elapsed_s", elapsed.as_secs_f64().into()),
            ("simulated_insts", simulated.into()),
        ],
    );
    let summary = Json::Obj(summary);
    // The on-disk summary feeds the next run's schedule; `--metrics-out`
    // additionally mirrors it wherever CI wants the artifact.
    if let Err(e) = std::fs::write(out_dir.join(SUMMARY_FILE), format!("{summary}\n")) {
        log::warn(
            "rvp-grid",
            "cannot write grid summary",
            &[
                ("path", out_dir.join(SUMMARY_FILE).display().to_string().into()),
                ("error", e.to_string().into()),
            ],
        );
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, format!("{summary}\n")) {
            log::error(
                "rvp-grid",
                "cannot write metrics file",
                &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
            );
            return ExitCode::FAILURE;
        }
        println!("grid metrics written: {}", path.display());
    }
    if !failures.is_empty() {
        for (cell, err) in &failures {
            log::error(
                "rvp-grid",
                "cell failed",
                &[("cell", cell.as_str().into()), ("error", err.as_str().into())],
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_cells(
    runner: &Runner,
    cells: &[Cell],
    next: &AtomicUsize,
    out_dir: &Path,
    results: &Mutex<Vec<RunResult>>,
    failures: &Mutex<Vec<(String, String)>>,
    timings: &Mutex<Vec<(String, f64)>>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(cell) = cells.get(i) else { return };
        let label = cell.label();
        let cell_start = Instant::now();
        match runner.run(&cell.workload, cell.scheme) {
            Ok(result) => {
                timings
                    .lock()
                    .expect("timings lock")
                    .push((label.clone(), cell_start.elapsed().as_secs_f64()));
                if let Err(e) = emit_cell(out_dir, &result) {
                    failures
                        .lock()
                        .expect("failures lock")
                        .push((label, format!("cannot write cell JSON: {e}")));
                    return;
                }
                println!(
                    "  {label:<28} ipc {:.3}  coverage {:5.1}%  accuracy {:5.1}%",
                    result.stats.ipc(),
                    100.0 * result.stats.coverage(),
                    100.0 * result.stats.accuracy()
                );
                results.lock().expect("results lock").push(result);
            }
            Err(e) => failures.lock().expect("failures lock").push((label, e.to_string())),
        }
    }
}
