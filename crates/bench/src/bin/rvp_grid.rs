//! `rvp-grid`: the full (workload × scheme) grid, in parallel and
//! crash-safe.
//!
//! Runs every paper scheme over every workload on a work-stealing pool
//! of OS threads, streaming one JSON file per cell to the output
//! directory as it completes, then prints a throughput summary.
//!
//! ```text
//! rvp-grid [OUT_DIR] [--workloads A,B,...] [--schemes A,B,...] \
//!          [--source MODE] [--sample SPEC] [--scale N] \
//!          [--metrics-out FILE] [--trace-out FILE] \
//!          [--resume] [--retries N] [--cell-timeout SECS]
//! ```
//!
//! `OUT_DIR` defaults to `RVP_JSON_DIR`, then `results/`.
//! `--workloads` restricts the grid to the named workloads and
//! `--schemes` to the named registry schemes — any label the scheme
//! registry knows, paper or zoo, optionally with predictor parameters
//! (`drvp_all:entries=4096`); the default is the paper's 15 (CI runs a
//! small subset of both this way). `--source` picks the committed-stream
//! source for measurement runs: `shared` (default — each workload's
//! trace is captured once up front and fanned out in memory to every
//! scheme cell), `replay` (stream each cell from the on-disk trace
//! cache) or `live` (re-emulate inside every cell, the pre-refactor
//! behaviour). `--metrics-out` enables the optional instrumentation
//! (time series + per-PC telemetry) on every cell — the artifacts land
//! inside the cell JSONs — and writes a grid-level summary (throughput,
//! trace-cache and per-workload source counters, failures) to FILE.
//! `--sample SPEC` measures every cell by SimPoint-style sampled
//! simulation (`auto`, or `interval=N,warmup=N,dims=N,max_k=N,seed=N`)
//! and `--scale N` multiplies every workload's outer pass counts —
//! together they make paper-scale sweeps (100M+ committed instructions
//! per cell) tractable. Sampled cells land in
//! `<workload>-<scheme>.sampled.json` files and the manifest
//! fingerprint covers both knobs, so sampled and detailed sweeps never
//! resume into each other.
//! `--trace-out` arms the span tracer for the whole run and writes the
//! collected spans (prewarm, schedule, per-cell run/attempt/write, and
//! the simulator's phase spans) to FILE: Chrome trace-event JSON by
//! default — open it in Perfetto or `chrome://tracing` — or
//! folded-stack text when FILE ends in `.folded`.
//!
//! ## Crash safety and containment
//!
//! Every cell JSON and the summary are written atomically (temp file +
//! fsync + rename), and each completed cell is journaled — durably,
//! with a checksum — into `OUT_DIR/grid_manifest.jsonl` as it lands.
//! After a crash or SIGKILL, `--resume` re-verifies the journal against
//! the bytes on disk and re-runs only the missing cells. A cell that
//! fails is contained, not fatal: panics are caught, a `--cell-timeout`
//! watchdog bounds hangs, transient I/O faults are retried (up to
//! `--retries` extra attempts with backoff), and a still-failing cell
//! walks the source degradation ladder (shared → replay → live) before
//! being recorded as *poisoned* in the summary's `failures` section.
//! The sweep always finishes; a poisoned cell turns the exit code into
//! 20 and emits a one-line JSON diagnostic on stderr.
//!
//! ## Cost-model scheduling
//!
//! Every run records per-cell wall times into `OUT_DIR/grid_summary.json`
//! (under `"cell_seconds"`), and the next run schedules the grid
//! longest-job-first from those timings: on a work-stealing pool the
//! makespan is set by whatever is still running at the end, so the
//! expensive cells must start first. Cells with no recorded timing are
//! estimated from their instruction budget at the observed
//! seconds-per-instruction rate (or run first when no history exists at
//! all, which degrades to the stable grid order).
//!
//! The usual budget overrides (`RVP_MEASURE_INSTS`,
//! `RVP_PROFILE_INSTS`) apply, `RVP_TRACE_DIR` enables the
//! committed-trace cache, `RVP_SOURCE` is the env equivalent of
//! `--source`, `RVP_THREADS` caps the worker count, and `RVP_FAIL`
//! arms the deterministic fault-injection schedule (chaos testing).
//! Failures and cache counters are also emitted as structured events
//! through the `RVP_LOG` facade.

use std::collections::HashMap;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rvp_bench::grid::{
    grid_config_fnv, load_manifest, run_one_cell, verify_manifest_cell, write_atomic, CellOptions,
    CellSuccess, GridCell, Manifest, ManifestCell, PoisonedCell,
};
use rvp_bench::runner_from_env;
use rvp_core::{
    all_workloads, by_name_or_err, fatal, log, paper_schemes, Json, ObsConfig, Runner, SampleSpec,
    SchemeSpec, SourceMode, ToJson, Workload, EXIT_CONFIG, EXIT_IO, EXIT_POISONED, EXIT_USAGE,
};

fn worker_count(cells: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cap = std::env::var("RVP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    cap.min(cells).max(1)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rvp-grid [OUT_DIR] [--workloads A,B,...] [--schemes A,B,...] \
         [--source live|replay|shared] [--sample auto|interval=N,...] [--scale N] \
         [--metrics-out FILE] [--trace-out FILE] \
         [--resume] [--retries N] [--cell-timeout SECS]"
    );
    ExitCode::from(EXIT_USAGE)
}

/// The file (in the output directory) per-cell wall times persist in,
/// read back by the next run's longest-job-first schedule.
const SUMMARY_FILE: &str = "grid_summary.json";

/// Per-cell wall times from a previous run's summary, if any.
fn prior_timings(out_dir: &Path) -> HashMap<String, f64> {
    let Ok(text) = std::fs::read_to_string(out_dir.join(SUMMARY_FILE)) else {
        return HashMap::new();
    };
    let Ok(json) = Json::parse(&text) else {
        log::warn(
            "rvp-grid",
            "unreadable prior grid summary; scheduling from instruction budgets",
            &[("path", out_dir.join(SUMMARY_FILE).display().to_string().into())],
        );
        return HashMap::new();
    };
    json.get("cell_seconds")
        .and_then(Json::as_obj)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(label, v)| v.as_f64().map(|secs| (label.clone(), secs)))
                .collect()
        })
        .unwrap_or_default()
}

/// Orders `cells` longest-estimated-first. Known cells carry their
/// measured wall time; unknown ones are estimated from the instruction
/// budget at the mean observed seconds-per-instruction (when nothing is
/// known the estimates are uniform and the stable sort preserves the
/// nominal grid order).
fn schedule(cells: &mut Vec<GridCell>, prior: &HashMap<String, f64>, budget: u64) {
    let known: Vec<f64> = cells.iter().filter_map(|c| prior.get(&c.label()).copied()).collect();
    let secs_per_inst = match known.len() {
        0 => 1.0 / budget.max(1) as f64,
        n => known.iter().sum::<f64>() / n as f64 / budget.max(1) as f64,
    };
    let mut keyed: Vec<(f64, GridCell)> = cells
        .drain(..)
        .map(|c| {
            let est = prior.get(&c.label()).copied().unwrap_or(budget as f64 * secs_per_inst);
            (est, c)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    *cells = keyed.into_iter().map(|(_, c)| c).collect();
}

fn main() -> ExitCode {
    let mut out_dir: Option<PathBuf> = None;
    let mut only: Option<Vec<String>> = None;
    let mut only_schemes: Option<Vec<String>> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut source: Option<SourceMode> = None;
    let mut sample: Option<SampleSpec> = None;
    let mut scale: Option<u64> = None;
    let mut resume = false;
    let mut opts = CellOptions::default();

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => match it.next() {
                Some(list) => {
                    only = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
                }
                None => return usage(),
            },
            "--schemes" => match it.next() {
                Some(list) => {
                    only_schemes = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
                }
                None => return usage(),
            },
            "--source" => match it.next().as_deref().and_then(SourceMode::parse) {
                Some(mode) => source = Some(mode),
                None => return usage(),
            },
            "--sample" => match it.next().as_deref().map(SampleSpec::parse) {
                Some(Ok(spec)) => sample = Some(spec),
                Some(Err(e)) => {
                    return fatal(
                        "rvp-grid",
                        "bad --sample spec",
                        EXIT_USAGE,
                        &[("error", e.into())],
                    );
                }
                None => return usage(),
            },
            "--scale" => match it.next().and_then(|v| v.parse::<u64>().ok()).filter(|&n| n > 0) {
                Some(n) => scale = Some(n),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.into()),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.into()),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.retries = n,
                None => return usage(),
            },
            "--cell-timeout" => match it.next().and_then(|v| v.parse().ok()) {
                Some(secs) => opts.timeout_secs = secs,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') && out_dir.is_none() => out_dir = Some(a.into()),
            _ => return usage(),
        }
    }
    let out_dir = out_dir
        .or_else(|| std::env::var("RVP_JSON_DIR").ok().filter(|d| !d.is_empty()).map(Into::into))
        .unwrap_or_else(|| "results".into());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fatal(
            "rvp-grid",
            "cannot create output directory",
            EXIT_IO,
            &[("dir", out_dir.display().to_string().into()), ("error", e.to_string().into())],
        );
    }

    let workloads: Vec<Workload> = match &only {
        None => all_workloads().to_vec(),
        Some(names) => {
            let mut selected = Vec::new();
            for name in names {
                // The registry-listing error, mirroring unknown-scheme UX.
                match by_name_or_err(name) {
                    Ok(wl) => selected.push(wl),
                    Err(e) => {
                        return fatal(
                            "rvp-grid",
                            "unknown workload",
                            EXIT_CONFIG,
                            &[("error", e.into())],
                        );
                    }
                }
            }
            selected
        }
    };

    // Default to the paper's 15 figure configurations; `--schemes`
    // accepts anything in the registry, predictor parameters included.
    let schemes: Vec<SchemeSpec> = match &only_schemes {
        None => paper_schemes(),
        Some(names) => {
            let mut selected = Vec::new();
            for name in names {
                match SchemeSpec::parse(name) {
                    Ok(spec) => selected.push(spec),
                    Err(e) => {
                        return fatal(
                            "rvp-grid",
                            "unknown scheme",
                            EXIT_CONFIG,
                            &[("error", e.into())],
                        );
                    }
                }
            }
            selected
        }
    };

    let mut runner = runner_from_env();
    if let Some(mode) = source {
        runner.source_mode = mode;
    }
    if let Some(spec) = sample {
        runner.sampling = Some(spec);
    }
    if let Some(n) = scale {
        runner.workload_scale = n;
    }
    if metrics_out.is_some() {
        runner.obs = ObsConfig::standard();
    }
    if trace_out.is_some() {
        rvp_core::span::arm(rvp_core::span::DEFAULT_RING_CAPACITY);
    }
    let mut cells: Vec<GridCell> = workloads
        .iter()
        .flat_map(|wl| {
            schemes.iter().map(|scheme| GridCell { workload: wl.clone(), scheme: scheme.clone() })
        })
        .collect();

    // Resume: re-verify the journal of the crashed/killed run against
    // the bytes on disk and lift anything that checks out straight into
    // this run's results.
    let config_fnv = grid_config_fnv(&workloads, &schemes, &runner);
    let mut kept: Vec<ManifestCell> = Vec::new();
    if resume {
        let planned: HashSet<String> = cells.iter().map(GridCell::label).collect();
        for cell in load_manifest(&out_dir, config_fnv) {
            if !planned.contains(&cell.label) {
                continue;
            }
            if verify_manifest_cell(&out_dir, &cell) {
                kept.push(cell);
            } else {
                log::warn(
                    "rvp-grid",
                    "journaled cell failed verification; re-running it",
                    &[("cell", cell.label.as_str().into()), ("file", cell.file.as_str().into())],
                );
            }
        }
        let done: HashSet<&str> = kept.iter().map(|c| c.label.as_str()).collect();
        cells.retain(|c| !done.contains(c.label().as_str()));
    }
    let manifest = match Manifest::start(&out_dir, config_fnv, &kept) {
        Ok(m) => m,
        Err(e) => {
            return fatal(
                "rvp-grid",
                "cannot start run manifest",
                EXIT_IO,
                &[
                    (
                        "path",
                        out_dir.join(rvp_bench::grid::MANIFEST_FILE).display().to_string().into(),
                    ),
                    ("error", e.to_string().into()),
                ],
            );
        }
    };

    let prior = prior_timings(&out_dir);
    let known = cells.iter().filter(|c| prior.contains_key(&c.label())).count();
    {
        let _span = rvp_core::span!("grid.schedule", { cells: cells.len(), known });
        schedule(&mut cells, &prior, runner.measure_insts);
    }
    let workers = worker_count(cells.len());

    println!(
        "rvp-grid: {} workloads x {} schemes = {} cells on {} threads ({} source) -> {}",
        workloads.len(),
        schemes.len(),
        cells.len() + kept.len(),
        workers,
        runner.source_mode.name(),
        out_dir.display()
    );
    if let Some(spec) = &runner.sampling {
        let (interval, warmup) = spec.resolve(runner.measure_insts);
        println!(
            "sampling: {interval}-inst intervals, {warmup}-inst warmup, \
             dims {}, max_k {}, workload scale x{}",
            spec.dims, spec.max_k, runner.workload_scale
        );
    } else if runner.workload_scale > 1 {
        println!("workload scale: x{}", runner.workload_scale);
    }
    if resume {
        println!("resume: {} cells verified from the manifest, {} to run", kept.len(), cells.len());
        log::info(
            "rvp-grid",
            "resuming from manifest",
            &[("verified", (kept.len() as u64).into()), ("remaining", (cells.len() as u64).into())],
        );
    }
    println!(
        "schedule: longest-job-first, {known}/{} cells from prior timings, \
         the rest from instruction budgets",
        cells.len()
    );

    let start = Instant::now();

    // Pay every workload's trace capture up front, in parallel, so the
    // cell fan-out below is pure timing simulation (a no-op for the
    // live source, and skipped for workloads fully restored from the
    // manifest). A failed prewarm is not fatal: the cell itself will
    // retry or fall back and report properly.
    let pending: Vec<&Workload> = workloads
        .iter()
        .filter(|wl| cells.iter().any(|c| c.workload.name() == wl.name()))
        .collect();
    if runner.source_mode != SourceMode::Live && !pending.is_empty() {
        let next_wl = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(pending.len()) {
                scope.spawn(|| loop {
                    let i = next_wl.fetch_add(1, Ordering::Relaxed);
                    let Some(wl) = pending.get(i) else { return };
                    let _span = rvp_core::span!("grid.prewarm", { workload: wl.name() });
                    if let Err(e) = runner.prewarm_trace(wl) {
                        log::warn(
                            "rvp-grid",
                            "trace prewarm failed",
                            &[("workload", wl.name().into()), ("error", e.to_string().into())],
                        );
                    }
                });
            }
        });
        println!(
            "traces prewarmed: {} workloads in {:.2}s",
            pending.len(),
            start.elapsed().as_secs_f64()
        );
    }
    let next = AtomicUsize::new(0);
    let successes: Mutex<Vec<CellSuccess>> = Mutex::new(Vec::new());
    let poisoned: Mutex<Vec<PoisonedCell>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                run_cells(&runner, &cells, opts, &next, &out_dir, &manifest, &successes, &poisoned)
            });
        }
    });

    let elapsed = start.elapsed();
    let mut successes = successes.into_inner().expect("successes lock");
    let mut poisoned = poisoned.into_inner().expect("poisoned lock");
    // The cells restored from the manifest count as completed work.
    successes.extend(kept.iter().map(|c| CellSuccess {
        label: c.label.clone(),
        result: None,
        committed: c.committed,
        file: c.file.clone(),
        file_fnv: c.file_fnv,
        seconds: c.seconds,
        retries: c.retries,
        source: "manifest",
        resumed: true,
    }));
    successes.sort_by(|a, b| a.label.cmp(&b.label));
    poisoned.sort_by(|a, b| a.label.cmp(&b.label));

    let simulated: u64 = successes.iter().map(|s| s.committed).sum();
    let resumed_cells = successes.iter().filter(|s| s.resumed).count();
    let total_retries: u64 = successes.iter().map(|s| s.retries).sum::<u64>()
        + poisoned.iter().map(|p| p.attempts.saturating_sub(1)).sum::<u64>();
    println!(
        "\n{} cells in {:.2}s ({:.1} cells/s, {:.1}M simulated insts/s overall)",
        successes.len(),
        elapsed.as_secs_f64(),
        successes.len() as f64 / elapsed.as_secs_f64(),
        simulated as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!("profiles collected: {}", runner.profiles.len());
    let sources = runner.source_counters.snapshot();
    if !sources.is_empty() {
        let t = runner.source_counters.total();
        println!(
            "committed-stream sources ({}): {} captures, {} shared hits, {} live fallbacks",
            runner.source_mode.name(),
            t.captures,
            t.shared_hits,
            t.live_fallbacks
        );
    }
    let quarantined = runner.traces.as_ref().map_or(0, |s| s.counters().quarantined());
    let injected = rvp_fail::snapshot();
    let failures = Json::obj([
        ("count", (poisoned.len() as u64).into()),
        ("poisoned", Json::Arr(poisoned.iter().map(PoisonedCell::to_json).collect())),
        ("retries", total_retries.into()),
        ("quarantined", quarantined.into()),
        (
            "injected",
            Json::Obj(injected.iter().map(|(site, n)| (site.clone(), (*n).into())).collect()),
        ),
    ]);
    let mut summary: Vec<(String, Json)> = vec![
        ("cells".into(), (successes.len() as u64).into()),
        ("failures".into(), failures),
        ("resumed_cells".into(), (resumed_cells as u64).into()),
        ("elapsed_s".into(), elapsed.as_secs_f64().into()),
        ("simulated_insts".into(), simulated.into()),
        ("profiles".into(), (runner.profiles.len() as u64).into()),
        ("source_mode".into(), runner.source_mode.name().into()),
        (
            "cell_seconds".into(),
            Json::Obj(successes.iter().map(|s| (s.label.clone(), s.seconds.into())).collect()),
        ),
        (
            "trace_sources".into(),
            Json::Obj(
                sources.iter().map(|(wl, tally)| ((*wl).to_owned(), tally.to_json())).collect(),
            ),
        ),
    ];
    if let Some(store) = &runner.traces {
        let c = store.counters();
        println!(
            "trace cache ({}): {} hits, {} captures, {} fallbacks, {} quarantined",
            store.dir().display(),
            c.hits(),
            c.captures(),
            c.fallbacks(),
            c.quarantined()
        );
        log::info(
            "rvp-grid",
            "trace cache counters",
            &[
                ("dir", store.dir().display().to_string().into()),
                ("hits", c.hits().into()),
                ("captures", c.captures().into()),
                ("fallbacks", c.fallbacks().into()),
                ("quarantined", c.quarantined().into()),
            ],
        );
        summary.push((
            "trace_cache".into(),
            Json::obj([
                ("hits", c.hits().into()),
                ("captures", c.captures().into()),
                ("fallbacks", c.fallbacks().into()),
                ("quarantined", c.quarantined().into()),
            ]),
        ));
    }
    log::info(
        "rvp-grid",
        "grid complete",
        &[
            ("cells", (successes.len() as u64).into()),
            ("failures", (poisoned.len() as u64).into()),
            ("resumed", (resumed_cells as u64).into()),
            ("elapsed_s", elapsed.as_secs_f64().into()),
            ("simulated_insts", simulated.into()),
        ],
    );
    let summary = Json::Obj(summary);
    // The on-disk summary feeds the next run's schedule; `--metrics-out`
    // additionally mirrors it wherever CI wants the artifact.
    if let Err(e) = write_atomic(&out_dir.join(SUMMARY_FILE), format!("{summary}\n").as_bytes()) {
        log::warn(
            "rvp-grid",
            "cannot write grid summary",
            &[
                ("path", out_dir.join(SUMMARY_FILE).display().to_string().into()),
                ("error", e.to_string().into()),
            ],
        );
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = write_atomic(path, format!("{summary}\n").as_bytes()) {
            return fatal(
                "rvp-grid",
                "cannot write metrics file",
                EXIT_IO,
                &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
            );
        }
        println!("grid metrics written: {}", path.display());
    }
    if let Some(path) = &trace_out {
        let data = rvp_core::span::drain();
        match rvp_core::span::write_trace_file(path, &data) {
            Ok(()) => println!(
                "grid trace written: {} ({} spans, {} dropped)",
                path.display(),
                data.spans.len(),
                data.dropped
            ),
            Err(e) => {
                return fatal(
                    "rvp-grid",
                    "cannot write trace file",
                    EXIT_IO,
                    &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
                );
            }
        }
    }
    if !poisoned.is_empty() {
        return fatal(
            "rvp-grid",
            "sweep completed with poisoned cells",
            EXIT_POISONED,
            &[
                ("poisoned", (poisoned.len() as u64).into()),
                ("cells", Json::Arr(poisoned.iter().map(|p| p.label.as_str().into()).collect())),
            ],
        );
    }
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_arguments)]
fn run_cells(
    runner: &Runner,
    cells: &[GridCell],
    opts: CellOptions,
    next: &AtomicUsize,
    out_dir: &Path,
    manifest: &Manifest,
    successes: &Mutex<Vec<CellSuccess>>,
    poisoned: &Mutex<Vec<PoisonedCell>>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(cell) = cells.get(i) else { return };
        match run_one_cell(runner, cell, opts, out_dir) {
            Ok(done) => {
                if let Some(result) = &done.result {
                    println!(
                        "  {:<28} ipc {:.3}  coverage {:5.1}%  accuracy {:5.1}%",
                        done.label,
                        result.stats.ipc(),
                        100.0 * result.stats.coverage(),
                        100.0 * result.stats.accuracy()
                    );
                }
                let journaled = ManifestCell {
                    label: done.label.clone(),
                    file: done.file.clone(),
                    file_fnv: done.file_fnv,
                    committed: done.committed,
                    seconds: done.seconds,
                    retries: done.retries,
                    source: done.source.to_owned(),
                };
                if let Err(e) = manifest.append(&journaled) {
                    // The cell JSON is durable; worst case a resume
                    // re-runs this one cell.
                    log::warn(
                        "rvp-grid",
                        "cannot journal cell",
                        &[("cell", done.label.as_str().into()), ("error", e.to_string().into())],
                    );
                }
                successes.lock().expect("successes lock").push(done);
            }
            Err(p) => poisoned.lock().expect("poisoned lock").push(p),
        }
    }
}
