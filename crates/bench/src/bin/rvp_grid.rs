//! `rvp-grid`: the full (workload × scheme) grid, in parallel.
//!
//! Runs every paper scheme over every workload on a work-stealing pool
//! of OS threads, streaming one JSON file per cell to the output
//! directory as it completes, then prints a throughput summary.
//!
//! ```text
//! rvp-grid [OUT_DIR]
//! ```
//!
//! `OUT_DIR` defaults to `RVP_JSON_DIR`, then `results/`. The usual
//! budget overrides (`RVP_MEASURE_INSTS`, `RVP_PROFILE_INSTS`) apply,
//! `RVP_TRACE_DIR` enables the committed-trace cache, and `RVP_THREADS`
//! caps the worker count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rvp_bench::{emit_cell, runner_from_env};
use rvp_core::{all_workloads, PaperScheme, RunResult, Runner, Workload};

struct Cell {
    workload: Workload,
    scheme: PaperScheme,
}

fn worker_count(cells: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cap = std::env::var("RVP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    cap.min(cells).max(1)
}

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("RVP_JSON_DIR").ok().filter(|d| !d.is_empty()))
        .unwrap_or_else(|| "results".to_string())
        .into();
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    let runner = runner_from_env();
    let cells: Vec<Cell> = all_workloads()
        .iter()
        .flat_map(|wl| {
            PaperScheme::all().iter().map(|&scheme| Cell { workload: wl.clone(), scheme })
        })
        .collect();
    let workers = worker_count(cells.len());

    println!(
        "rvp-grid: {} workloads x {} schemes = {} cells on {} threads -> {}",
        all_workloads().len(),
        PaperScheme::all().len(),
        cells.len(),
        workers,
        out_dir.display()
    );

    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<RunResult>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| run_cells(&runner, &cells, &next, &out_dir, &results, &failures));
        }
    });

    let elapsed = start.elapsed();
    let results = results.into_inner().expect("results lock");
    let failures = failures.into_inner().expect("failures lock");

    let simulated: u64 = results.iter().map(|r| r.stats.committed).sum();
    println!(
        "\n{} cells in {:.2}s ({:.1} cells/s, {:.1}M simulated insts/s overall)",
        results.len(),
        elapsed.as_secs_f64(),
        results.len() as f64 / elapsed.as_secs_f64(),
        simulated as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!("profiles collected: {}", runner.profiles.len());
    if let Some(store) = &runner.traces {
        let c = store.counters();
        println!(
            "trace cache ({}): {} hits, {} captures, {} fallbacks",
            store.dir().display(),
            c.hits(),
            c.captures(),
            c.fallbacks()
        );
    }
    if !failures.is_empty() {
        for (cell, err) in &failures {
            eprintln!("error: {cell}: {err}");
        }
        std::process::exit(1);
    }
}

fn run_cells(
    runner: &Runner,
    cells: &[Cell],
    next: &AtomicUsize,
    out_dir: &std::path::Path,
    results: &Mutex<Vec<RunResult>>,
    failures: &Mutex<Vec<(String, String)>>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(cell) = cells.get(i) else { return };
        let label = format!("{}/{}", cell.workload.name(), cell.scheme.label());
        match runner.run(&cell.workload, cell.scheme) {
            Ok(result) => {
                if let Err(e) = emit_cell(out_dir, &result) {
                    failures
                        .lock()
                        .expect("failures lock")
                        .push((label, format!("cannot write cell JSON: {e}")));
                    return;
                }
                println!(
                    "  {label:<28} ipc {:.3}  coverage {:5.1}%  accuracy {:5.1}%",
                    result.stats.ipc(),
                    100.0 * result.stats.coverage(),
                    100.0 * result.stats.accuracy()
                );
                results.lock().expect("results lock").push(result);
            }
            Err(e) => failures.lock().expect("failures lock").push((label, e.to_string())),
        }
    }
}
