//! Crash-safe grid execution.
//!
//! Everything `rvp-grid` needs to survive a hostile afternoon lives
//! here, out of the binary, so the chaos and resume integration tests
//! can exercise it directly:
//!
//! * **atomic cell writes** — every result JSON is written to a temp
//!   file, fsynced and renamed into place, so a crash (or SIGKILL)
//!   leaves either the complete old file or the complete new one;
//! * **a checksummed run manifest** (`grid_manifest.jsonl`) journaling
//!   each completed cell as it lands — `--resume` replays the journal,
//!   re-verifies every recorded cell file by checksum, and re-runs only
//!   what is missing, torn, or was never attempted;
//! * **per-cell failure containment** — each cell attempt runs under
//!   `catch_unwind` (optionally on a watchdog thread with a deadline),
//!   transient I/O faults are retried with bounded backoff, and a
//!   failing cell walks the degradation ladder (shared → replay → live
//!   committed-stream source) before it is recorded as *poisoned*. A
//!   poisoned cell is reported in the grid summary; it never aborts the
//!   sweep.
//!
//! Chaos sites: `grid.cell.run` fires inside the contained attempt
//! (panics, delays and injected-transient I/O land exactly where a real
//! fault would), `grid.cell.write` fires in the atomic cell write.

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rvp_core::{
    fnv1a, journal_line, log, parse_journal_line, CancelToken, Json, RunResult, Runner, SchemeSpec,
    SimError, SourceMode, ToJson, Workload,
};

pub use rvp_core::{grid_config_fnv, write_atomic};

/// One (workload, scheme) cell of the grid.
pub struct GridCell {
    /// The workload to simulate.
    pub workload: Workload,
    /// The registry scheme to simulate it under.
    pub scheme: SchemeSpec,
}

impl GridCell {
    /// The cell's stable identity in summaries, logs and the manifest.
    pub fn label(&self) -> String {
        format!("{}/{}", self.workload.name(), self.scheme.label())
    }
}

/// Containment knobs for one cell attempt.
#[derive(Debug, Clone, Copy)]
pub struct CellOptions {
    /// Extra attempts per ladder stage for *transient* failures
    /// (injected or real I/O trouble), with exponential backoff.
    pub retries: u32,
    /// Wall-clock deadline per attempt; `0` disables the watchdog and
    /// runs the cell inline on the worker thread.
    pub timeout_secs: u64,
}

impl Default for CellOptions {
    fn default() -> CellOptions {
        CellOptions { retries: 2, timeout_secs: 0 }
    }
}

/// A cell that completed and whose JSON is durably on disk.
pub struct CellSuccess {
    /// Cell identity (`workload/scheme`).
    pub label: String,
    /// The simulation result (`None` for cells skipped via `--resume`).
    pub result: Option<RunResult>,
    /// Committed instructions (kept separately so resumed cells count).
    pub committed: u64,
    /// Cell JSON file name within the output directory.
    pub file: String,
    /// FNV-1a of the cell JSON bytes, as journaled in the manifest.
    pub file_fnv: u64,
    /// Wall seconds this cell took (journaled value for resumed cells).
    pub seconds: f64,
    /// Attempts beyond the first this cell needed.
    pub retries: u64,
    /// The committed-stream source that finally served the cell.
    pub source: &'static str,
    /// Whether the cell was restored from the manifest, not re-run.
    pub resumed: bool,
}

/// A cell that failed every rung of the degradation ladder — or was
/// cancelled cooperatively before it could finish.
pub struct PoisonedCell {
    /// Cell identity (`workload/scheme`).
    pub label: String,
    /// The last error observed.
    pub error: String,
    /// The ladder stage that failed last.
    pub stage: &'static str,
    /// Total attempts spent before giving up.
    pub attempts: u64,
    /// The cell was squashed by a fired [`CancelToken`] (job abort,
    /// deadline, drain), not by a model or I/O failure; it is safe to
    /// re-run later.
    pub cancelled: bool,
}

impl PoisonedCell {
    /// The summary JSON entry for this cell.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cell", self.label.as_str().into()),
            ("stage", self.stage.into()),
            ("attempts", self.attempts.into()),
            ("error", self.error.as_str().into()),
            ("cancelled", self.cancelled.into()),
        ])
    }
}

/// The committed-stream sources a cell walks, in order, before it is
/// declared poisoned. The ladder only descends: each rung re-derives
/// the identical committed stream with less shared machinery, so a
/// cell that succeeds on a lower rung is bit-identical to one that
/// succeeded on the first.
pub fn ladder(mode: SourceMode, has_store: bool) -> Vec<SourceMode> {
    match mode {
        SourceMode::Live => vec![SourceMode::Live],
        SourceMode::Replay => vec![SourceMode::Replay, SourceMode::Live],
        SourceMode::Shared if has_store => {
            vec![SourceMode::Shared, SourceMode::Replay, SourceMode::Live]
        }
        SourceMode::Shared => vec![SourceMode::Shared, SourceMode::Live],
    }
}

/// How one attempt of one cell ended.
enum AttemptError {
    /// Worth retrying on the same ladder rung (bounded, with backoff).
    Transient(String),
    /// The simulation itself failed; move down the ladder.
    Sim(String),
    /// The attempt panicked; move down the ladder.
    Panic(String),
    /// The watchdog deadline passed; move down the ladder.
    Timeout,
    /// The cell's own [`CancelToken`] fired; abandon the whole cell
    /// (no retries, no ladder descent — the caller wants it gone).
    Cancelled(String),
}

impl AttemptError {
    fn transient(&self) -> bool {
        matches!(self, AttemptError::Transient(_))
    }

    fn describe(&self) -> String {
        match self {
            AttemptError::Transient(e) | AttemptError::Sim(e) => e.clone(),
            AttemptError::Panic(e) => format!("panic: {e}"),
            AttemptError::Timeout => "cell watchdog timeout".to_owned(),
            AttemptError::Cancelled(e) => format!("cancelled: {e}"),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One contained attempt: `catch_unwind` around the simulation, the
/// `grid.cell.run` chaos site inside the contained region, and an
/// optional *cooperative* watchdog deadline — the attempt then runs on
/// its own thread with a deadline-armed [`CancelToken`]; on expiry the
/// cycle loop observes the token, squashes, and the thread is joined
/// (no abandoned threads, no leaked allocations).
fn attempt(runner: &Runner, cell: &GridCell, timeout_secs: u64) -> Result<RunResult, AttemptError> {
    let body =
        |r: &Runner, wl: &Workload, scheme: &SchemeSpec| -> Result<RunResult, AttemptError> {
            if let Some(fault) = rvp_fail::check("grid.cell.run") {
                if matches!(
                    fault,
                    rvp_fail::Fault::Io | rvp_fail::Fault::ShortRead | rvp_fail::Fault::BitFlip
                ) {
                    return Err(AttemptError::Transient(
                        "injected fault at failpoint grid.cell.run".to_owned(),
                    ));
                }
            }
            r.run(wl, scheme).map_err(|e: SimError| match e {
                SimError::Cancelled { .. } => AttemptError::Cancelled(e.to_string()),
                other => AttemptError::Sim(other.to_string()),
            })
        };
    if timeout_secs == 0 {
        return catch_unwind(AssertUnwindSafe(|| body(runner, &cell.workload, &cell.scheme)))
            .unwrap_or_else(|p| Err(AttemptError::Panic(panic_message(p))));
    }

    // The watchdogged thread gets its own token with the attempt
    // deadline; the caller's token (if any) is *forwarded* into it from
    // the wait loop below, so a job abort or drain squash still lands
    // while the watchdog is standing guard.
    let parent = runner.cancel.clone();
    let watchdog = CancelToken::with_deadline(Duration::from_secs(timeout_secs));
    let mut r = runner.clone();
    r.cancel = Some(watchdog.clone());
    let (tx, rx) = mpsc::channel();
    let wl = cell.workload.clone();
    let scheme = cell.scheme.clone();
    let spawned =
        std::thread::Builder::new().name(format!("cell-{}", cell.label())).spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(|| body(&r, &wl, &scheme)))
                .unwrap_or_else(|p| Err(AttemptError::Panic(panic_message(p))));
            let _ = tx.send(out);
        });
    let handle = match spawned {
        Ok(handle) => handle,
        Err(e) => return Err(AttemptError::Transient(format!("cannot spawn cell thread: {e}"))),
    };

    // After the token fires the simulation squashes within one poll
    // window (milliseconds); this grace bound only matters if an
    // attempt is stuck somewhere that genuinely cannot poll.
    const WAIT_SLICE: Duration = Duration::from_millis(25);
    const SQUASH_GRACE: Duration = Duration::from_secs(10);
    let parent_fired = || parent.as_ref().is_some_and(CancelToken::is_cancelled);
    let mut fired_at: Option<Instant> = None;
    loop {
        match rx.recv_timeout(WAIT_SLICE) {
            Ok(out) => {
                let _ = handle.join();
                return match out {
                    // The squash the thread reports is the watchdog's
                    // unless the caller's own token fired: a deadline is
                    // an ordinary per-attempt timeout (ladder descent),
                    // a forwarded cancel abandons the cell.
                    Err(AttemptError::Cancelled(detail)) => {
                        if parent_fired() {
                            Err(AttemptError::Cancelled(detail))
                        } else {
                            Err(AttemptError::Timeout)
                        }
                    }
                    other => other,
                };
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = handle.join();
                return Err(AttemptError::Panic("cell thread exited without a result".to_owned()));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(p) = &parent {
                    if p.poll().is_some() {
                        watchdog.cancel(&p.detail().unwrap_or_else(|| "caller cancelled".into()));
                    }
                }
                let _ = watchdog.poll(); // promote an expired deadline to fired
                if watchdog.is_cancelled() {
                    let since = *fired_at.get_or_insert_with(Instant::now);
                    if since.elapsed() > SQUASH_GRACE {
                        // Should be unreachable — every long stage polls.
                        // Abandon the thread as a last resort and say so.
                        log::error(
                            "rvp-grid",
                            "cell ignored its cancel token past the grace window; abandoning it",
                            &[("cell", cell.label().into())],
                        );
                        return Err(if parent_fired() {
                            AttemptError::Cancelled("cell unresponsive to cancel".to_owned())
                        } else {
                            AttemptError::Timeout
                        });
                    }
                }
            }
        }
    }
}

fn backoff(attempt_idx: u32) {
    let ms = (10u64 << attempt_idx.min(5)).min(200);
    std::thread::sleep(Duration::from_millis(ms));
}

/// Runs one cell to durable completion: degradation ladder across
/// committed-stream sources, bounded retry-with-backoff for transient
/// faults, containment of panics and hangs, and an atomic, checksummed
/// cell JSON write. Returns the poisoned record (never panics, never
/// aborts the sweep) if every rung fails.
pub fn run_one_cell(
    runner: &Runner,
    cell: &GridCell,
    opts: CellOptions,
    out_dir: &Path,
) -> Result<CellSuccess, PoisonedCell> {
    let label = cell.label();
    let mut cell_span = rvp_core::span!("grid.cell.run", { cell: label.as_str() });
    let start = Instant::now();
    let mut attempts = 0u64;
    let mut last: Option<AttemptError> = None;
    let mut last_stage = runner.source_mode.name();

    for mode in ladder(runner.source_mode, runner.traces.is_some()) {
        let mut r = runner.clone();
        r.source_mode = mode;
        last_stage = mode.name();
        let mut attempt_idx = 0u32;
        loop {
            attempts += 1;
            let outcome = {
                let _span = rvp_core::span!("grid.cell.attempt", {
                    cell: label.as_str(),
                    stage: mode.name(),
                    attempt: attempts,
                });
                attempt(&r, cell, opts.timeout_secs)
            };
            match outcome {
                Ok(result) => {
                    let emitted = {
                        let _span = rvp_core::span!("grid.cell.write", { cell: label.as_str() });
                        emit_with_retry(out_dir, &result, opts, &mut attempts)
                    };
                    match emitted {
                        Ok((file, file_fnv)) => {
                            let committed = result.stats.committed;
                            cell_span.add_field("source", mode.name());
                            cell_span.add_field("retries", attempts - 1);
                            return Ok(CellSuccess {
                                label,
                                result: Some(result),
                                committed,
                                file,
                                file_fnv,
                                seconds: start.elapsed().as_secs_f64(),
                                retries: attempts - 1,
                                source: mode.name(),
                                resumed: false,
                            });
                        }
                        Err(e) => {
                            // The simulation succeeded but its result
                            // could not be made durable even after
                            // retries; re-simulating will not fix the
                            // disk.
                            return Err(poisoned(&label, &e, mode.name(), attempts));
                        }
                    }
                }
                Err(e) => {
                    log::warn(
                        "rvp-grid",
                        "cell attempt failed",
                        &[
                            ("cell", label.as_str().into()),
                            ("stage", mode.name().into()),
                            ("attempt", attempts.into()),
                            ("error", e.describe().into()),
                        ],
                    );
                    // A fired cancel token abandons the cell outright:
                    // no retry and no ladder descent — re-running the
                    // work the caller just squashed wastes the squash.
                    if matches!(e, AttemptError::Cancelled(_)) {
                        return Err(poisoned(&label, &e, mode.name(), attempts));
                    }
                    let retry = e.transient() && attempt_idx < opts.retries;
                    last = Some(e);
                    if !retry {
                        break; // next ladder rung
                    }
                    backoff(attempt_idx);
                    attempt_idx += 1;
                }
            }
        }
    }
    let error = last.map_or_else(|| "unknown failure".to_owned(), |e| e.describe());
    Err(poisoned(&label, &AttemptError::Sim(error), last_stage, attempts))
}

fn poisoned(label: &str, e: &AttemptError, stage: &'static str, attempts: u64) -> PoisonedCell {
    let cell = PoisonedCell {
        label: label.to_owned(),
        error: e.describe(),
        stage,
        attempts,
        cancelled: matches!(e, AttemptError::Cancelled(_)),
    };
    log::error(
        "rvp-grid",
        "cell poisoned",
        &[
            ("cell", cell.label.as_str().into()),
            ("stage", stage.into()),
            ("attempts", attempts.into()),
            ("error", cell.error.as_str().into()),
        ],
    );
    cell
}

/// Atomic cell write with its own bounded transient-retry loop; bumps
/// the shared attempt counter so the retries show up in telemetry.
fn emit_with_retry(
    out_dir: &Path,
    result: &RunResult,
    opts: CellOptions,
    attempts: &mut u64,
) -> Result<(String, u64), AttemptError> {
    let mut attempt_idx = 0u32;
    loop {
        match emit_cell_atomic(out_dir, result) {
            Ok(done) => return Ok(done),
            Err(e) => {
                if attempt_idx >= opts.retries {
                    return Err(AttemptError::Transient(format!("cannot write cell JSON: {e}")));
                }
                log::warn(
                    "rvp-grid",
                    "cell JSON write failed; retrying",
                    &[
                        ("cell", format!("{}/{}", result.workload, result.scheme).into()),
                        ("attempt", (attempt_idx + 1).into()),
                        ("error", e.to_string().into()),
                    ],
                );
                backoff(attempt_idx);
                attempt_idx += 1;
                *attempts += 1;
            }
        }
    }
}

/// Writes one cell result as `<workload>-<scheme>.json` under `dir` —
/// `<workload>-<scheme>.sampled.json` for a sampled cell, so a sampled
/// sweep never overwrites (or masquerades as) a detailed one in the
/// same output directory — atomically (temp file + fsync + rename).
/// Returns the file name and the FNV-1a checksum of its bytes for the
/// manifest journal.
///
/// # Errors
///
/// Returns the underlying I/O error (including injected ones at the
/// `grid.cell.write` chaos site).
pub fn emit_cell_atomic(dir: &Path, result: &RunResult) -> std::io::Result<(String, u64)> {
    let suffix = if result.sampling.is_some() { ".sampled.json" } else { ".json" };
    let name = format!("{}-{}{suffix}", result.workload, result.scheme);
    let text = format!("{}\n", result.to_json());
    rvp_fail::io_at("grid.cell.write")?;
    write_atomic(&dir.join(&name), text.as_bytes())?;
    Ok((name, fnv1a(text.as_bytes())))
}

// ---------------------------------------------------------------------
// The run manifest.

/// File name of the run manifest journal within the output directory.
pub const MANIFEST_FILE: &str = "grid_manifest.jsonl";

/// One journaled completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestCell {
    /// Cell identity (`workload/scheme`).
    pub label: String,
    /// Cell JSON file name within the output directory.
    pub file: String,
    /// FNV-1a of the cell JSON bytes at journal time.
    pub file_fnv: u64,
    /// Committed instructions the cell simulated.
    pub committed: u64,
    /// Wall seconds the cell took.
    pub seconds: f64,
    /// Attempts beyond the first the cell needed.
    pub retries: u64,
    /// Committed-stream source that served the cell.
    pub source: String,
}

impl ManifestCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", "cell".into()),
            ("cell", self.label.as_str().into()),
            ("file", self.file.as_str().into()),
            ("file_fnv", self.file_fnv.into()),
            ("committed", self.committed.into()),
            ("seconds", self.seconds.into()),
            ("retries", self.retries.into()),
            ("source", self.source.as_str().into()),
        ])
    }

    fn from_json(json: &Json) -> Option<ManifestCell> {
        if json.get("kind")?.as_str()? != "cell" {
            return None;
        }
        Some(ManifestCell {
            label: json.get("cell")?.as_str()?.to_owned(),
            file: json.get("file")?.as_str()?.to_owned(),
            file_fnv: json.get("file_fnv")?.as_u64()?,
            committed: json.get("committed")?.as_u64()?,
            seconds: json.get("seconds")?.as_f64()?,
            retries: json.get("retries")?.as_u64()?,
            source: json.get("source")?.as_str()?.to_owned(),
        })
    }
}

/// Loads the journaled cells of a previous run from `dir`, dropping
/// anything unverifiable: a missing/corrupt header, a config
/// fingerprint mismatch, a torn or checksum-failing line. Returns an
/// empty list when there is nothing trustworthy to resume from.
pub fn load_manifest(dir: &Path, config_fnv: u64) -> Vec<ManifestCell> {
    let Ok(text) = std::fs::read_to_string(dir.join(MANIFEST_FILE)) else {
        return Vec::new();
    };
    let mut lines = text.lines();
    let Some(header) = lines.next().and_then(parse_journal_line) else {
        log::warn("rvp-grid", "manifest header unreadable; not resuming from it", &[]);
        return Vec::new();
    };
    let header_ok = header.get("kind").and_then(Json::as_str) == Some("header")
        && header.get("config_fnv").and_then(Json::as_u64) == Some(config_fnv);
    if !header_ok {
        log::warn(
            "rvp-grid",
            "manifest was journaled under a different grid configuration; ignoring it",
            &[("path", dir.join(MANIFEST_FILE).display().to_string().into())],
        );
        return Vec::new();
    }
    let mut cells = Vec::new();
    for line in lines {
        match parse_journal_line(line).as_ref().and_then(ManifestCell::from_json) {
            Some(cell) => cells.push(cell),
            None => log::warn(
                "rvp-grid",
                "dropping unverifiable manifest line",
                &[("line", line.chars().take(80).collect::<String>().into())],
            ),
        }
    }
    cells
}

/// Re-verifies a journaled cell against the bytes actually on disk.
pub fn verify_manifest_cell(dir: &Path, cell: &ManifestCell) -> bool {
    match std::fs::read(dir.join(&cell.file)) {
        Ok(bytes) => fnv1a(&bytes) == cell.file_fnv,
        Err(_) => false,
    }
}

/// The append-only manifest journal for a running sweep. Thread-safe;
/// every append is flushed and fsynced before it returns, so a cell is
/// either fully journaled or not journaled at all.
pub struct Manifest {
    file: Mutex<std::fs::File>,
}

impl Manifest {
    /// Starts a fresh journal at `dir` (atomically replacing any old
    /// one) holding the header plus the already-verified `kept` cells,
    /// then reopens it for appending.
    pub fn start(dir: &Path, config_fnv: u64, kept: &[ManifestCell]) -> std::io::Result<Manifest> {
        let header = Json::obj([
            ("kind", "header".into()),
            ("version", 1u64.into()),
            ("config_fnv", config_fnv.into()),
        ]);
        let mut text = journal_line(&header);
        for cell in kept {
            text.push_str(&journal_line(&cell.to_json()));
        }
        let path = dir.join(MANIFEST_FILE);
        write_atomic(&path, text.as_bytes())?;
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok(Manifest { file: Mutex::new(file) })
    }

    /// Journals one completed cell, durably.
    pub fn append(&self, cell: &ManifestCell) -> std::io::Result<()> {
        let line = journal_line(&cell.to_json());
        let mut file = self.file.lock().expect("manifest poisoned");
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_descends_and_respects_store() {
        assert_eq!(ladder(SourceMode::Live, true), vec![SourceMode::Live]);
        assert_eq!(ladder(SourceMode::Replay, false), vec![SourceMode::Replay, SourceMode::Live]);
        assert_eq!(
            ladder(SourceMode::Shared, true),
            vec![SourceMode::Shared, SourceMode::Replay, SourceMode::Live]
        );
        assert_eq!(ladder(SourceMode::Shared, false), vec![SourceMode::Shared, SourceMode::Live]);
    }

    #[test]
    fn manifest_round_trips_and_rejects_torn_lines() {
        let dir = std::env::temp_dir().join(format!("rvp-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cell = ManifestCell {
            label: "li/lvp".into(),
            file: "li-lvp.json".into(),
            file_fnv: 0xabcd,
            committed: 1234,
            seconds: 0.5,
            retries: 1,
            source: "shared".into(),
        };
        let m = Manifest::start(&dir, 42, &[]).unwrap();
        m.append(&cell).unwrap();
        assert_eq!(load_manifest(&dir, 42), vec![cell.clone()]);
        // Wrong config fingerprint: nothing to resume from.
        assert!(load_manifest(&dir, 43).is_empty());

        // A torn final line (crash mid-append) is dropped, the rest
        // survives.
        let path = dir.join(MANIFEST_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("0123456789abcdef {\"kind\":\"cell\",\"cell\":\"go/lv");
        std::fs::write(&path, &text).unwrap();
        assert_eq!(load_manifest(&dir, 42), vec![cell.clone()]);

        // Verification: matching bytes pass, tampered bytes fail.
        assert!(!verify_manifest_cell(&dir, &cell));
        std::fs::write(dir.join("li-lvp.json"), b"x").unwrap();
        let honest = ManifestCell { file_fnv: fnv1a(b"x"), ..cell.clone() };
        assert!(verify_manifest_cell(&dir, &honest));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_cleans_up_temp_on_failure() {
        let dir = std::env::temp_dir().join(format!("rvp-atomic-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Writing into a missing subdirectory fails at create time and
        // must leave no temp file behind.
        let missing = dir.join("nope").join("cell.json");
        assert!(write_atomic(&missing, b"data").is_err());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
