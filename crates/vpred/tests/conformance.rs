//! Registry conformance suite: the obligations every registered
//! [`ValuePredictor`] must satisfy, checked against the live registry so
//! a new zoo entry is covered the moment it registers.
//!
//! 1. **Determinism** — two fresh instances fed the same dispatch/train
//!    stream emit the same decision stream.
//! 2. **`reset()` equals fresh** — after a training run and a `reset()`,
//!    the instance is indistinguishable from a newly built one.
//! 3. **Spec round-trip** — `spec()` parses back through the registry
//!    into an identically-configured (and identically-behaving)
//!    predictor, and the registry's `default_spec` is the bare name's
//!    canonical form.
//! 4. **`clone_box()` carries state** — a mid-stream clone and its
//!    original continue identically.

use rvp_isa::Reg;
use rvp_vpred::{list_value_predictors, new_value_predictor, Decision, Outcome, ValuePredictor};

/// A deterministic synthetic stream of committed register writers:
/// a few hot PCs with high value reuse, a stride walker, and a noisy
/// tail — enough texture that every predictor family changes state.
fn stream() -> Vec<(usize, Reg, u64)> {
    let mut out = Vec::new();
    let mut x: u64 = 0x2545_f491_4f6c_dd1d;
    for i in 0..4000u64 {
        // xorshift keeps the stream reproducible without rand.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let pc = (x % 23) as usize * 4;
        let dst = Reg::int(1 + (pc % 7) as u8);
        let value = match pc / 4 {
            // same value almost always: the RVP sweet spot
            0..=4 => 42 + u64::from(x.is_multiple_of(16)),
            // strided
            5..=9 => i * 8,
            // bimodal
            10..=14 => [7, 7, 7, 9][(x % 4) as usize],
            // noise
            _ => x,
        };
        out.push((pc, dst, value));
    }
    out
}

/// Drives one predictor through the stream the way the pipeline would:
/// decide at dispatch, value-train at writeback (when requested),
/// outcome-train at commit. Returns the decision stream.
fn drive(p: &mut dyn ValuePredictor, events: &[(usize, Reg, u64)]) -> Vec<Decision> {
    let mut prior = [0u64; 32];
    let mut decisions = Vec::with_capacity(events.len());
    for &(pc, dst, value) in events {
        let d = p.decide(pc, dst);
        decisions.push(d);
        if p.wants_value_training() {
            p.train_value(pc, value);
        }
        // The pipeline resolves Track/Predict against machine state;
        // approximate it with the same-register prior so train_outcome
        // sees realistic hit/miss texture.
        let predicted = match d {
            Decision::Idle => None,
            Decision::Value(v) => Some(v),
            _ => Some(prior[dst.index() % 32]),
        };
        let o = Outcome {
            pc,
            dst,
            predicted,
            actual: value,
            prior: prior[dst.index() % 32],
            observed: None,
        };
        p.train_outcome(&o);
        prior[dst.index() % 32] = value;
    }
    decisions
}

#[test]
fn every_registered_predictor_is_deterministic() {
    let events = stream();
    for info in list_value_predictors() {
        let mut a = new_value_predictor(info.name).unwrap();
        let mut b = new_value_predictor(info.name).unwrap();
        assert_eq!(
            drive(a.as_mut(), &events),
            drive(b.as_mut(), &events),
            "{}: two fresh instances diverged",
            info.name
        );
    }
}

#[test]
fn reset_restores_the_just_constructed_state() {
    let events = stream();
    for info in list_value_predictors() {
        let mut fresh = new_value_predictor(info.name).unwrap();
        let want = drive(fresh.as_mut(), &events);

        let mut reused = new_value_predictor(info.name).unwrap();
        let _ = drive(reused.as_mut(), &events);
        reused.reset();
        assert_eq!(
            drive(reused.as_mut(), &events),
            want,
            "{}: reset() left training state behind",
            info.name
        );
    }
}

#[test]
fn spec_round_trips_through_the_registry() {
    let events = stream();
    for info in list_value_predictors() {
        // The bare name builds the default configuration, and its
        // canonical spec is the registry's advertised default.
        let built = new_value_predictor(info.name).unwrap();
        assert_eq!(built.name(), info.name);
        assert_eq!(built.spec(), info.default_spec, "{}: default_spec drifted", info.name);

        // spec() -> parse -> spec() is a fixed point, and the rebuilt
        // predictor behaves identically.
        let mut rebuilt = new_value_predictor(&built.spec())
            .unwrap_or_else(|e| panic!("{}: {:?} does not parse: {e}", info.name, built.spec()));
        assert_eq!(rebuilt.spec(), built.spec(), "{}: spec not canonical", info.name);
        let mut original = new_value_predictor(info.name).unwrap();
        assert_eq!(
            drive(original.as_mut(), &events),
            drive(rebuilt.as_mut(), &events),
            "{}: rebuilt-from-spec predictor diverged",
            info.name
        );
    }
}

#[test]
fn clone_box_carries_training_state() {
    let events = stream();
    let (warmup, tail) = events.split_at(events.len() / 2);
    for info in list_value_predictors() {
        let mut original = new_value_predictor(info.name).unwrap();
        let _ = drive(original.as_mut(), warmup);
        let mut clone = original.clone_box();
        assert_eq!(
            drive(original.as_mut(), tail),
            drive(clone.as_mut(), tail),
            "{}: clone diverged from its original",
            info.name
        );
    }
}
