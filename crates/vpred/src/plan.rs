use std::collections::HashMap;

use rvp_isa::Reg;

/// Which instructions are value-prediction candidates.
///
/// Static RVP is restricted to loads by its ISA encoding; dynamic RVP
/// needs no ISA change and can cover every register-writing instruction
/// (the paper's Figures 5 vs 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Loads only.
    LoadsOnly,
    /// Every instruction that writes a register.
    AllInsts,
}

impl Scope {
    /// Whether an instruction with the given properties is in scope.
    pub fn admits(self, is_load: bool, writes_reg: bool) -> bool {
        match self {
            Scope::LoadsOnly => is_load && writes_reg,
            Scope::AllInsts => writes_reg,
        }
    }
}

/// The register-reuse relation the compiler has exposed for one static
/// instruction (Section 3 / Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseKind {
    /// The instruction tends to produce the value already in its own
    /// destination register — exploitable with no compiler help.
    SameReg,
    /// The produced value correlates with the value currently in another
    /// register; register reallocation (dead-register merging, or a move
    /// for live registers) turns this into same-register reuse.
    OtherReg(Reg),
    /// The instruction exhibits last-value reuse; giving it a register
    /// that nothing else writes inside the loop turns this into
    /// same-register reuse.
    LastValue,
}

/// A profile-derived map from static instruction (PC) to the
/// [`ReuseKind`] the compiler would exploit for it.
///
/// For **static RVP** the plan is exactly the set of marked (`rvp_`)
/// instructions. For **dynamic RVP** the plan describes the assumed
/// register reallocation: listed instructions track reuse through their
/// assigned relation, and every unlisted instruction tracks plain
/// same-register reuse (the paper's Section 5 evaluation model).
///
/// # Examples
///
/// ```
/// use rvp_isa::Reg;
/// use rvp_vpred::{PredictionPlan, ReuseKind};
///
/// let mut plan = PredictionPlan::new();
/// plan.insert(10, ReuseKind::SameReg);
/// plan.insert(14, ReuseKind::OtherReg(Reg::int(7)));
/// assert_eq!(plan.kind(10), Some(ReuseKind::SameReg));
/// assert_eq!(plan.kind(11), None);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionPlan {
    kinds: HashMap<usize, ReuseKind>,
}

impl PredictionPlan {
    /// Creates an empty plan.
    pub fn new() -> PredictionPlan {
        PredictionPlan::default()
    }

    /// Assigns a reuse kind to the instruction at `pc`, replacing any
    /// previous assignment.
    pub fn insert(&mut self, pc: usize, kind: ReuseKind) {
        self.kinds.insert(pc, kind);
    }

    /// Removes the assignment for `pc`, if any.
    pub fn remove(&mut self, pc: usize) -> Option<ReuseKind> {
        self.kinds.remove(&pc)
    }

    /// The reuse kind assigned to `pc`.
    pub fn kind(&self, pc: usize) -> Option<ReuseKind> {
        self.kinds.get(&pc).copied()
    }

    /// Whether the plan lists `pc`.
    pub fn contains(&self, pc: usize) -> bool {
        self.kinds.contains_key(&pc)
    }

    /// Number of listed instructions.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Iterates over `(pc, kind)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ReuseKind)> + '_ {
        self.kinds.iter().map(|(&pc, &k)| (pc, k))
    }

    /// Merges another plan into this one; `other`'s assignments win on
    /// conflict.
    pub fn extend_from(&mut self, other: &PredictionPlan) {
        for (pc, k) in other.iter() {
            self.kinds.insert(pc, k);
        }
    }
}

impl FromIterator<(usize, ReuseKind)> for PredictionPlan {
    fn from_iter<T: IntoIterator<Item = (usize, ReuseKind)>>(iter: T) -> PredictionPlan {
        PredictionPlan { kinds: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prefers_other() {
        let mut a = PredictionPlan::new();
        a.insert(1, ReuseKind::SameReg);
        a.insert(2, ReuseKind::LastValue);
        let b: PredictionPlan = [(2, ReuseKind::OtherReg(Reg::int(4)))].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.kind(1), Some(ReuseKind::SameReg));
        assert_eq!(a.kind(2), Some(ReuseKind::OtherReg(Reg::int(4))));
    }

    #[test]
    fn remove_and_contains() {
        let mut p = PredictionPlan::new();
        p.insert(3, ReuseKind::SameReg);
        assert!(p.contains(3));
        assert_eq!(p.remove(3), Some(ReuseKind::SameReg));
        assert!(!p.contains(3));
        assert!(p.is_empty());
    }
}
