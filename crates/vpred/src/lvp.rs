use crate::counters::{ConfidenceCounter, CounterPolicy};

/// Configuration of the last-value predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LvpConfig {
    /// Value-table entries (power of two, direct mapped by PC).
    pub entries: usize,
    /// Confidence-counter width.
    pub bits: u8,
    /// Confidence threshold.
    pub threshold: u8,
    /// Miss-update policy.
    pub policy: CounterPolicy,
    /// Whether entries are PC-tagged. The paper assumes tagged LVP
    /// buffers ("tagging entries detects interference in the table to
    /// inhibit predictions"), which improves LVP.
    pub tagged: bool,
}

impl LvpConfig {
    /// The paper's baseline: 1K-entry tagged last-value buffer with 3-bit
    /// resetting counters and threshold 7 (Section 6).
    pub fn paper() -> LvpConfig {
        LvpConfig {
            entries: 1024,
            bits: 3,
            threshold: 7,
            policy: CounterPolicy::Resetting,
            tagged: true,
        }
    }
}

impl Default for LvpConfig {
    fn default() -> LvpConfig {
        LvpConfig::paper()
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: usize,
    value: u64,
    valid: bool,
    counter: ConfidenceCounter,
}

/// The buffer-based last-value predictor (Lipasti & Shen style) that the
/// paper compares against.
///
/// Unlike register value prediction this requires a 64-bit value store
/// (8 KiB for 1K entries) plus tags — the hardware cost the paper's
/// storageless scheme eliminates.
///
/// # Examples
///
/// ```
/// use rvp_vpred::{LastValuePredictor, LvpConfig};
///
/// let mut lvp = LastValuePredictor::new(LvpConfig::paper());
/// for _ in 0..8 {
///     lvp.train(64, 42);
/// }
/// assert_eq!(lvp.predict(64), Some(42));
/// lvp.train(64, 43);                    // value changed
/// assert_eq!(lvp.predict(64), None);    // resetting counter dropped
/// ```
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    config: LvpConfig,
    entries: Vec<Entry>,
}

impl LastValuePredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(config: LvpConfig) -> LastValuePredictor {
        assert!(config.entries.is_power_of_two(), "table size must be a power of two");
        LastValuePredictor {
            entries: vec![
                Entry {
                    tag: 0,
                    value: 0,
                    valid: false,
                    counter: ConfidenceCounter::new(config.bits, config.policy),
                };
                config.entries
            ],
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LvpConfig {
        &self.config
    }

    fn index(&self, pc: usize) -> usize {
        pc & (self.config.entries - 1)
    }

    /// Returns the predicted value for `pc` if the entry is confident
    /// (and tag-matching, when tagged).
    pub fn predict(&self, pc: usize) -> Option<u64> {
        let e = &self.entries[self.index(pc)];
        if !e.valid {
            return None;
        }
        if self.config.tagged && e.tag != pc {
            return None;
        }
        e.counter.confident(self.config.threshold).then_some(e.value)
    }

    /// Trains with the committed result of the instruction at `pc`:
    /// compares against the stored last value, updates the confidence
    /// counter, and stores `actual` as the new last value.
    pub fn train(&mut self, pc: usize, actual: u64) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if !e.valid || (self.config.tagged && e.tag != pc) {
            // (Re)allocate the entry.
            *e = Entry {
                tag: pc,
                value: actual,
                valid: true,
                counter: ConfidenceCounter::new(self.config.bits, self.config.policy),
            };
            return;
        }
        let hit = e.value == actual;
        e.counter.record(hit);
        e.value = actual;
        e.tag = pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_constant_values() {
        let mut lvp = LastValuePredictor::new(LvpConfig::paper());
        for _ in 0..7 {
            assert_eq!(lvp.predict(5), None);
            lvp.train(5, 9);
        }
        // Entry allocated on first train, then 6 hits... threshold 7 needs
        // one more.
        lvp.train(5, 9);
        assert_eq!(lvp.predict(5), Some(9));
    }

    #[test]
    fn value_change_resets_confidence() {
        let mut lvp = LastValuePredictor::new(LvpConfig::paper());
        for _ in 0..10 {
            lvp.train(5, 1);
        }
        assert_eq!(lvp.predict(5), Some(1));
        lvp.train(5, 2);
        assert_eq!(lvp.predict(5), None);
        // And it now tracks the new value.
        for _ in 0..7 {
            lvp.train(5, 2);
        }
        assert_eq!(lvp.predict(5), Some(2));
    }

    #[test]
    fn tagged_interference_inhibits_prediction() {
        let cfg = LvpConfig { entries: 16, ..LvpConfig::paper() };
        let mut lvp = LastValuePredictor::new(cfg);
        for _ in 0..10 {
            lvp.train(1, 7);
        }
        assert_eq!(lvp.predict(1), Some(7));
        // pc 17 aliases: prediction inhibited, entry stolen on train.
        assert_eq!(lvp.predict(17), None);
        lvp.train(17, 3);
        assert_eq!(lvp.predict(1), None);
    }

    #[test]
    fn untagged_lvp_interferes_destructively() {
        // The paper's observation: an untagged LVP value file is nearly
        // useless under interference because both the value and counter
        // are shared.
        let cfg = LvpConfig { entries: 16, tagged: false, ..LvpConfig::paper() };
        let mut lvp = LastValuePredictor::new(cfg);
        for _ in 0..20 {
            lvp.train(1, 7);
            lvp.train(17, 3); // alias with a different value
        }
        assert_eq!(lvp.predict(1), None);
        assert_eq!(lvp.predict(17), None);
    }

    #[test]
    fn distinct_entries_do_not_interact() {
        let mut lvp = LastValuePredictor::new(LvpConfig::paper());
        for pc in 0..100 {
            for _ in 0..8 {
                lvp.train(pc, pc as u64 * 10);
            }
        }
        for pc in 0..100 {
            assert_eq!(lvp.predict(pc), Some(pc as u64 * 10));
        }
    }
}
