/// Update policy of a confidence counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterPolicy {
    /// A miss resets the counter to zero (the paper's choice: "resetting
    /// counters with a confidence threshold of 7 ... only predict after we
    /// have seen seven consecutive hits").
    #[default]
    Resetting,
    /// A miss decrements the counter (classic saturating behaviour). Kept
    /// for the counter-policy ablation bench.
    Saturating,
}

/// An n-bit saturating confidence counter.
///
/// # Examples
///
/// ```
/// use rvp_vpred::{ConfidenceCounter, CounterPolicy};
///
/// let mut c = ConfidenceCounter::new(3, CounterPolicy::Resetting);
/// for _ in 0..7 { c.record(true); }
/// assert!(c.confident(7));
/// c.record(false);
/// assert!(!c.confident(1)); // reset to zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidenceCounter {
    value: u8,
    max: u8,
    policy: CounterPolicy,
}

impl ConfidenceCounter {
    /// Creates a zeroed `bits`-bit counter.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 7`.
    pub fn new(bits: u8, policy: CounterPolicy) -> ConfidenceCounter {
        assert!((1..=7).contains(&bits), "counter width out of range");
        ConfidenceCounter { value: 0, max: (1 << bits) - 1, policy }
    }

    /// Current count.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Whether the count has reached `threshold`.
    pub fn confident(&self, threshold: u8) -> bool {
        self.value >= threshold
    }

    /// Records a hit or miss. Saturation in both directions is
    /// branchless (a compare folded into the arithmetic), so the update
    /// cost does not depend on the counter's current state.
    pub fn record(&mut self, hit: bool) {
        self.value = updated(self.value, self.max, self.policy, hit);
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// The branchless counter-update kernel shared by [`ConfidenceCounter`]
/// and the flat [`ConfidenceTable`]: increment saturating at `max` on a
/// hit; reset or decrement saturating at zero on a miss.
#[inline]
fn updated(value: u8, max: u8, policy: CounterPolicy, hit: bool) -> u8 {
    if hit {
        value + u8::from(value < max)
    } else {
        match policy {
            CounterPolicy::Resetting => 0,
            CounterPolicy::Saturating => value - u8::from(value > 0),
        }
    }
}

/// Geometry and policy of a [`ConfidenceTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableConfig {
    /// Number of entries (power of two, direct mapped by PC).
    pub entries: usize,
    /// Counter width in bits.
    pub bits: u8,
    /// Confidence threshold.
    pub threshold: u8,
    /// Miss-update policy.
    pub policy: CounterPolicy,
    /// Whether entries carry PC tags. A tag mismatch inhibits prediction
    /// and, at training time, evicts the entry (counter restarts from the
    /// new outcome).
    pub tagged: bool,
}

impl Default for TableConfig {
    fn default() -> TableConfig {
        TableConfig {
            entries: 1024,
            bits: 3,
            threshold: 7,
            policy: CounterPolicy::Resetting,
            tagged: false,
        }
    }
}

/// A direct-mapped table of confidence counters indexed by PC.
///
/// Stored flat: one byte of count per entry in a contiguous array, with
/// the shared geometry (width, threshold, policy) held once in the
/// config rather than replicated per counter — a lookup touches exactly
/// one byte of table state, and a train is a branchless read-modify-
/// write of that byte.
#[derive(Debug, Clone)]
pub struct ConfidenceTable {
    config: TableConfig,
    /// Saturating counts, one byte per entry.
    counters: Box<[u8]>,
    /// PC tags (`NO_TAG` = empty); zero-length when untagged.
    tags: Box<[u32]>,
    /// Saturation ceiling `(1 << bits) - 1`, cached out of the config.
    max: u8,
    /// Index mask `entries - 1`, cached out of the config.
    mask: usize,
}

/// Empty-slot sentinel in a [`ConfidenceTable`]'s tag column.
const NO_TAG: u32 = u32::MAX;

impl ConfidenceTable {
    /// Creates a table of zeroed counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or the counter width
    /// is outside `1..=7`.
    pub fn new(config: TableConfig) -> ConfidenceTable {
        assert!(config.entries.is_power_of_two(), "table size must be a power of two");
        assert!((1..=7).contains(&config.bits), "counter width out of range");
        ConfidenceTable {
            counters: vec![0u8; config.entries].into(),
            tags: if config.tagged { vec![NO_TAG; config.entries].into() } else { Box::from([]) },
            max: (1 << config.bits) - 1,
            mask: config.entries - 1,
            config,
        }
    }

    /// The table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    fn index(&self, pc: usize) -> usize {
        pc & self.mask
    }

    /// Whether `pc`'s counter has reached the threshold (and, if tagged,
    /// the tag matches).
    pub fn confident(&self, pc: usize) -> bool {
        let i = self.index(pc);
        if self.config.tagged && self.tags[i] != pc as u32 {
            return false;
        }
        self.counters[i] >= self.config.threshold
    }

    /// Trains the entry for `pc` with a hit/miss outcome.
    pub fn train(&mut self, pc: usize, hit: bool) {
        let i = self.index(pc);
        if self.config.tagged && self.tags[i] != pc as u32 {
            self.tags[i] = pc as u32;
            self.counters[i] = 0;
        }
        self.counters[i] = updated(self.counters[i], self.max, self.config.policy, hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resetting_counter_requires_consecutive_hits() {
        let mut c = ConfidenceCounter::new(3, CounterPolicy::Resetting);
        for _ in 0..6 {
            c.record(true);
        }
        c.record(false);
        for _ in 0..6 {
            c.record(true);
        }
        assert!(!c.confident(7));
        c.record(true);
        assert!(c.confident(7));
    }

    #[test]
    fn saturating_counter_decrements() {
        let mut c = ConfidenceCounter::new(3, CounterPolicy::Saturating);
        for _ in 0..7 {
            c.record(true);
        }
        c.record(false);
        assert_eq!(c.value(), 6);
        assert!(c.confident(6));
    }

    #[test]
    fn counter_saturates_at_max() {
        let mut c = ConfidenceCounter::new(2, CounterPolicy::Resetting);
        for _ in 0..10 {
            c.record(true);
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_width_counter_panics() {
        let _ = ConfidenceCounter::new(0, CounterPolicy::Resetting);
    }

    #[test]
    fn untagged_table_aliases() {
        let cfg = TableConfig { entries: 16, ..TableConfig::default() };
        let mut t = ConfidenceTable::new(cfg);
        for _ in 0..7 {
            t.train(3, true);
        }
        // pc 19 aliases with pc 3 and inherits its confidence.
        assert!(t.confident(19));
    }

    #[test]
    fn tagged_table_isolates_aliases() {
        let cfg = TableConfig { entries: 16, tagged: true, ..TableConfig::default() };
        let mut t = ConfidenceTable::new(cfg);
        for _ in 0..7 {
            t.train(3, true);
        }
        assert!(t.confident(3));
        assert!(!t.confident(19));
        // Training the alias evicts the original.
        t.train(19, true);
        assert!(!t.confident(3));
    }
}
