//! The predictor zoo: every registered [`ValuePredictor`] implementation.
//!
//! Paper schemes are thin adapters over the existing table structures
//! (`DrvpPredictor`, `GabbayPredictor`, `CorrelationPredictor`, the
//! buffer family) and reproduce their training semantics exactly — the
//! pre-refactor cell JSON is pinned bit-identical by the golden tests.
//! The new zoo members (2-delta stride, RVP+LVP tournament, TAGE-style
//! confidence) live here outright.

use rvp_isa::Reg;

use crate::buffers::{BufferConfig, BufferPredictor};
use crate::correlation::{CorrelationConfig, CorrelationPredictor};
use crate::counters::{ConfidenceCounter, ConfidenceTable, CounterPolicy, TableConfig};
use crate::gabbay::GabbayPredictor;
use crate::lvp::{LastValuePredictor, LvpConfig};
use crate::traits::{Decision, Outcome, ValuePredictor};
use crate::{DrvpConfig, DrvpPredictor};

pub(crate) fn policy_str(policy: CounterPolicy) -> &'static str {
    match policy {
        CounterPolicy::Resetting => "reset",
        CounterPolicy::Saturating => "sat",
    }
}

/// The static-RVP adapter: the profile already decided which
/// instructions predict (the plan marks them), so the predictor itself
/// is unconditionally confident.
#[derive(Debug, Clone)]
pub struct SrvpVp;

impl ValuePredictor for SrvpVp {
    fn name(&self) -> &'static str {
        "srvp"
    }

    fn spec(&self) -> String {
        "srvp".to_string()
    }

    fn decide(&mut self, _pc: usize, _dst: Reg) -> Decision {
        Decision::Predict
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// The paper's dynamic RVP confidence table behind the trait.
#[derive(Debug, Clone)]
pub struct DrvpVp {
    config: DrvpConfig,
    inner: DrvpPredictor,
}

impl DrvpVp {
    pub fn new(config: DrvpConfig) -> DrvpVp {
        DrvpVp { config, inner: DrvpPredictor::new(config) }
    }
}

impl ValuePredictor for DrvpVp {
    fn name(&self) -> &'static str {
        "drvp"
    }

    fn spec(&self) -> String {
        let t = &self.config.table;
        format!(
            "drvp:entries={},ctr={},threshold={},policy={},tagged={}",
            t.entries,
            t.bits,
            t.threshold,
            policy_str(t.policy),
            t.tagged
        )
    }

    fn decide(&mut self, pc: usize, _dst: Reg) -> Decision {
        if self.inner.confident(pc) {
            Decision::Predict
        } else {
            Decision::Track
        }
    }

    fn train_outcome(&mut self, o: &Outcome) {
        // Train only when dispatch captured a candidate value — exactly
        // the legacy guard (out-of-scope and zero-dest instructions
        // carry no candidate).
        if let Some(v) = o.predicted {
            self.inner.train(o.pc, v == o.actual);
        }
    }

    fn reset(&mut self) {
        self.inner = DrvpPredictor::new(self.config);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// The Gabbay & Mendelson register-file predictor behind the trait:
/// counters indexed by destination register, trained on every committed
/// writer against the prior register value.
#[derive(Debug, Clone)]
pub struct GabbayVp {
    bits: u8,
    threshold: u8,
    policy: CounterPolicy,
    inner: GabbayPredictor,
}

impl GabbayVp {
    pub fn new(bits: u8, threshold: u8, policy: CounterPolicy) -> GabbayVp {
        GabbayVp { bits, threshold, policy, inner: GabbayPredictor::new(bits, threshold, policy) }
    }
}

impl ValuePredictor for GabbayVp {
    fn name(&self) -> &'static str {
        "gabbay"
    }

    fn spec(&self) -> String {
        format!(
            "gabbay:ctr={},threshold={},policy={}",
            self.bits,
            self.threshold,
            policy_str(self.policy)
        )
    }

    fn decide(&mut self, _pc: usize, dst: Reg) -> Decision {
        if self.inner.confident(dst) {
            Decision::Predict
        } else {
            Decision::Track
        }
    }

    fn train_outcome(&mut self, o: &Outcome) {
        self.inner.train(o.dst, o.prior == o.actual);
    }

    fn reset(&mut self) {
        self.inner = GabbayPredictor::new(self.bits, self.threshold, self.policy);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// The Jourdan-style hardware correlation predictor behind the trait:
/// learns a source register per PC and predicts through it.
#[derive(Debug, Clone)]
pub struct CorrelationVp {
    config: CorrelationConfig,
    inner: CorrelationPredictor,
}

impl CorrelationVp {
    pub fn new(config: CorrelationConfig) -> CorrelationVp {
        CorrelationVp { config, inner: CorrelationPredictor::new(config) }
    }
}

impl ValuePredictor for CorrelationVp {
    fn name(&self) -> &'static str {
        "hwcorr"
    }

    fn spec(&self) -> String {
        format!("hwcorr:entries={},threshold={}", self.config.entries, self.config.threshold)
    }

    fn decide(&mut self, pc: usize, dst: Reg) -> Decision {
        match self.inner.candidate(pc) {
            // A candidate of the wrong class can never hold the value:
            // stand down entirely (no candidate carried, no prediction).
            Some(r) if r.class() == dst.class() => {
                if self.inner.confident(pc) {
                    Decision::PredictReg(r)
                } else {
                    Decision::TrackReg(r)
                }
            }
            _ => Decision::Idle,
        }
    }

    fn train_outcome(&mut self, o: &Outcome) {
        self.inner.train(o.pc, o.predicted == Some(o.actual), o.observed);
    }

    fn observes_registers(&self) -> bool {
        true
    }

    fn reset(&mut self) {
        self.inner = CorrelationPredictor::new(self.config);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// The buffer family (last-value, 1-delta stride, finite-context,
/// stride+LVP hybrid) behind the trait: the table supplies the value
/// directly, training happens at writeback as soon as the value exists.
#[derive(Debug, Clone)]
pub struct BufferVp {
    config: BufferConfig,
    inner: BufferPredictor,
}

impl BufferVp {
    pub fn new(config: BufferConfig) -> BufferVp {
        BufferVp { config, inner: BufferPredictor::new(config) }
    }
}

impl ValuePredictor for BufferVp {
    fn name(&self) -> &'static str {
        match self.config {
            BufferConfig::LastValue(_) => "lvp",
            BufferConfig::Stride(_) => "stride",
            BufferConfig::Context(_) => "fcm",
            BufferConfig::Hybrid(..) => "stride_lvp",
        }
    }

    fn spec(&self) -> String {
        match &self.config {
            BufferConfig::LastValue(c) => format!(
                "lvp:entries={},ctr={},threshold={},policy={},tagged={}",
                c.entries,
                c.bits,
                c.threshold,
                policy_str(c.policy),
                c.tagged
            ),
            BufferConfig::Stride(c) => {
                format!("stride:entries={},threshold={}", c.entries, c.threshold)
            }
            BufferConfig::Context(c) => format!(
                "fcm:entries={},vht={},order={},threshold={}",
                c.entries, c.vht_entries, c.order, c.threshold
            ),
            BufferConfig::Hybrid(s, _) => {
                format!("stride_lvp:entries={},threshold={}", s.entries, s.threshold)
            }
        }
    }

    fn decide(&mut self, pc: usize, _dst: Reg) -> Decision {
        match self.inner.predict(pc) {
            Some(v) => Decision::Value(v),
            None => Decision::Idle,
        }
    }

    fn train_value(&mut self, pc: usize, value: u64) {
        self.inner.train(pc, value);
    }

    fn wants_value_training(&self) -> bool {
        true
    }

    fn reset(&mut self) {
        self.inner = BufferPredictor::new(self.config);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// Configuration of the 2-delta stride predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stride2Config {
    /// Table entries (power of two, PC-indexed, tagged).
    pub entries: usize,
    /// Confidence threshold (3-bit resetting counters).
    pub threshold: u8,
}

impl Default for Stride2Config {
    fn default() -> Stride2Config {
        Stride2Config { entries: 1024, threshold: 7 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Stride2Entry {
    tag: usize,
    valid: bool,
    last: u64,
    /// The committed stride predictions are made with.
    stride: i64,
    /// The most recently observed delta; the committed stride only
    /// follows it once the same delta repeats (the "2-delta" rule).
    pending: i64,
    counter: ConfidenceCounter,
}

/// A 2-delta stride predictor (Eickemeyer & Vassiliadis style): the
/// stride used for prediction only changes after the same new delta is
/// observed twice in a row, so a single irregular value (a loop exit, a
/// pointer re-seed) does not destroy an established stride.
#[derive(Debug, Clone)]
pub struct Stride2Vp {
    config: Stride2Config,
    entries: Vec<Stride2Entry>,
}

impl Stride2Vp {
    pub fn new(config: Stride2Config) -> Stride2Vp {
        assert!(config.entries.is_power_of_two(), "table size must be a power of two");
        Stride2Vp {
            entries: vec![
                Stride2Entry {
                    tag: 0,
                    valid: false,
                    last: 0,
                    stride: 0,
                    pending: 0,
                    counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                };
                config.entries
            ],
            config,
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc & (self.config.entries - 1)
    }
}

impl ValuePredictor for Stride2Vp {
    fn name(&self) -> &'static str {
        "stride2"
    }

    fn spec(&self) -> String {
        format!("stride2:entries={},threshold={}", self.config.entries, self.config.threshold)
    }

    fn decide(&mut self, pc: usize, _dst: Reg) -> Decision {
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == pc && e.counter.confident(self.config.threshold) {
            Decision::Value(e.last.wrapping_add(e.stride as u64))
        } else {
            Decision::Idle
        }
    }

    fn train_value(&mut self, pc: usize, value: u64) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if !e.valid || e.tag != pc {
            *e = Stride2Entry {
                tag: pc,
                valid: true,
                last: value,
                stride: 0,
                pending: 0,
                counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
            };
            return;
        }
        let observed = value.wrapping_sub(e.last) as i64;
        e.counter.record(observed == e.stride);
        if observed == e.pending {
            e.stride = observed;
        }
        e.pending = observed;
        e.last = value;
    }

    fn wants_value_training(&self) -> bool {
        true
    }

    fn reset(&mut self) {
        *self = Stride2Vp::new(self.config);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// An RVP+LVP tournament hybrid: storageless same-register reuse when
/// its PC-indexed confidence is established, otherwise the last-value
/// buffer, otherwise track. The reuse confidence trains at commit
/// against the prior register value; the LVP component trains at
/// writeback like any buffer predictor.
#[derive(Debug, Clone)]
pub struct TournamentVp {
    table: TableConfig,
    lvp_config: LvpConfig,
    conf: ConfidenceTable,
    lvp: LastValuePredictor,
}

impl TournamentVp {
    pub fn new(table: TableConfig, lvp_config: LvpConfig) -> TournamentVp {
        TournamentVp {
            table,
            lvp_config,
            conf: ConfidenceTable::new(table),
            lvp: LastValuePredictor::new(lvp_config),
        }
    }
}

impl ValuePredictor for TournamentVp {
    fn name(&self) -> &'static str {
        "rvp_lvp"
    }

    fn spec(&self) -> String {
        format!(
            "rvp_lvp:entries={},ctr={},threshold={}",
            self.table.entries, self.table.bits, self.table.threshold
        )
    }

    fn decide(&mut self, pc: usize, _dst: Reg) -> Decision {
        if self.conf.confident(pc) {
            Decision::Predict
        } else if let Some(v) = self.lvp.predict(pc) {
            Decision::Value(v)
        } else {
            Decision::Track
        }
    }

    fn train_value(&mut self, pc: usize, value: u64) {
        self.lvp.train(pc, value);
    }

    fn wants_value_training(&self) -> bool {
        true
    }

    fn train_outcome(&mut self, o: &Outcome) {
        self.conf.train(o.pc, o.prior == o.actual);
    }

    fn reset(&mut self) {
        self.conf = ConfidenceTable::new(self.table);
        self.lvp = LastValuePredictor::new(self.lvp_config);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

/// Geometric history lengths (in reuse-outcome bits) of the tagged
/// TAGE tables, shortest first.
const TAGE_HIST_LENS: [u32; 4] = [2, 4, 8, 16];
/// Entries in the per-PC reuse-outcome history table.
const TAGE_HIST_ENTRIES: usize = 1024;

/// Configuration of the TAGE-style DRVP confidence predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TageConfig {
    /// Entries per tagged table (power of two).
    pub entries: usize,
    /// Confidence threshold (3-bit resetting counters).
    pub threshold: u8,
}

impl Default for TageConfig {
    fn default() -> TageConfig {
        TageConfig { entries: 512, threshold: 7 }
    }
}

#[derive(Debug, Clone, Copy)]
struct TageEntry {
    tag: u8,
    valid: bool,
    counter: ConfidenceCounter,
}

/// TAGE-style confidence for dynamic RVP: the predict/don't-predict
/// decision comes from the longest tag-matching entry across four
/// tagged tables indexed by PC folded with geometrically longer slices
/// (2/4/8/16 bits) of the per-PC *reuse outcome* history, falling back
/// to an untagged DRVP-style base table. This catches instructions
/// whose register-value reuse is phase-dependent — reuse that holds on
/// some control paths and not others, invisible to a single counter.
#[derive(Debug, Clone)]
pub struct TageConfVp {
    config: TageConfig,
    base: ConfidenceTable,
    tables: Vec<Vec<TageEntry>>,
    hist: Vec<u16>,
}

impl TageConfVp {
    pub fn new(config: TageConfig) -> TageConfVp {
        assert!(config.entries.is_power_of_two(), "table size must be a power of two");
        TageConfVp {
            base: ConfidenceTable::new(TableConfig {
                entries: 1024,
                bits: 3,
                threshold: config.threshold,
                policy: CounterPolicy::Resetting,
                tagged: false,
            }),
            tables: vec![
                vec![
                    TageEntry {
                        tag: 0,
                        valid: false,
                        counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                    };
                    config.entries
                ];
                TAGE_HIST_LENS.len()
            ],
            hist: vec![0; TAGE_HIST_ENTRIES],
            config,
        }
    }

    /// The (index, tag) slot for table `t` under the current history.
    fn slot(&self, t: usize, pc: usize) -> (usize, u8) {
        let len = TAGE_HIST_LENS[t];
        let mask = ((1u32 << len) - 1) as u16;
        let h = (self.hist[pc & (TAGE_HIST_ENTRIES - 1)] & mask) as usize;
        let idx = (pc ^ (h << 1) ^ (h >> 2)) & (self.config.entries - 1);
        let tag = (((pc >> 9) ^ h ^ (h << 3)) & 0xff) as u8;
        (idx, tag)
    }

    /// The longest tag-matching table, if any.
    fn provider(&self, pc: usize) -> Option<(usize, usize)> {
        for t in (0..self.tables.len()).rev() {
            let (idx, tag) = self.slot(t, pc);
            let e = &self.tables[t][idx];
            if e.valid && e.tag == tag {
                return Some((t, idx));
            }
        }
        None
    }
}

impl ValuePredictor for TageConfVp {
    fn name(&self) -> &'static str {
        "tage_drvp"
    }

    fn spec(&self) -> String {
        format!("tage_drvp:entries={},threshold={}", self.config.entries, self.config.threshold)
    }

    fn decide(&mut self, pc: usize, _dst: Reg) -> Decision {
        let confident = match self.provider(pc) {
            Some((t, idx)) => self.tables[t][idx].counter.confident(self.config.threshold),
            None => self.base.confident(pc),
        };
        if confident {
            Decision::Predict
        } else {
            Decision::Track
        }
    }

    fn train_outcome(&mut self, o: &Outcome) {
        let hit = o.prior == o.actual;
        // The provider is recomputed under the pre-update history, the
        // same slots decide() read this instruction under.
        match self.provider(o.pc) {
            Some((t, idx)) => {
                self.tables[t][idx].counter.record(hit);
                if !hit && t + 1 < self.tables.len() {
                    let (idx, tag) = self.slot(t + 1, o.pc);
                    self.tables[t + 1][idx] = TageEntry {
                        tag,
                        valid: true,
                        counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                    };
                }
            }
            None => {
                self.base.train(o.pc, hit);
                if !hit {
                    let (idx, tag) = self.slot(0, o.pc);
                    self.tables[0][idx] = TageEntry {
                        tag,
                        valid: true,
                        counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                    };
                }
            }
        }
        let h = &mut self.hist[o.pc & (TAGE_HIST_ENTRIES - 1)];
        *h = (*h << 1) | u16::from(hit);
    }

    fn reset(&mut self) {
        *self = TageConfVp::new(self.config);
    }

    fn clone_box(&self) -> Box<dyn ValuePredictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride2_survives_one_irregular_value() {
        let mut p = Stride2Vp::new(Stride2Config::default());
        for i in 0..12u64 {
            p.train_value(4, 100 + 8 * i);
        }
        assert_eq!(p.decide(4, Reg::int(1)), Decision::Value(196));
        // One outlier: the committed stride must not follow it.
        p.train_value(4, 5000);
        p.train_value(4, 5008);
        // The 8-stride survived (confidence took the two misses).
        let e = p.entries[p.index(4)];
        assert_eq!(e.stride, 8);
    }

    #[test]
    fn stride2_adopts_a_repeated_new_delta() {
        let mut p = Stride2Vp::new(Stride2Config::default());
        for i in 0..6u64 {
            p.train_value(4, 10 + 4 * i);
        }
        for i in 0..12u64 {
            p.train_value(4, 1000 + 16 * i);
        }
        let last = 1000 + 16 * 11;
        assert_eq!(p.decide(4, Reg::int(1)), Decision::Value(last + 16));
    }

    #[test]
    fn tournament_prefers_reuse_confidence() {
        let mut p = TournamentVp::new(
            TableConfig { tagged: false, ..TableConfig::default() },
            LvpConfig::paper(),
        );
        let o = |predicted| Outcome {
            pc: 9,
            dst: Reg::int(3),
            predicted,
            actual: 7,
            prior: 7,
            observed: None,
        };
        for _ in 0..7 {
            p.train_outcome(&o(None));
        }
        assert_eq!(p.decide(9, Reg::int(3)), Decision::Predict);
    }

    #[test]
    fn tournament_falls_back_to_lvp() {
        let mut p = TournamentVp::new(
            TableConfig { tagged: false, ..TableConfig::default() },
            LvpConfig::paper(),
        );
        for _ in 0..8 {
            p.train_value(9, 42);
        }
        assert_eq!(p.decide(9, Reg::int(3)), Decision::Value(42));
    }

    #[test]
    fn tage_learns_phase_dependent_reuse() {
        // Reuse alternates hit, hit, miss, hit, hit, miss... A single
        // counter at threshold 7 never fires; a history-indexed entry
        // learns each phase position separately.
        let mut p = TageConfVp::new(TageConfig::default());
        let pattern = [true, true, false];
        let mk = |hit: bool| Outcome {
            pc: 33,
            dst: Reg::int(2),
            predicted: Some(if hit { 1 } else { 0 }),
            actual: 1,
            prior: if hit { 1 } else { 0 },
            observed: None,
        };
        for k in 0..400 {
            p.train_outcome(&mk(pattern[k % 3]));
        }
        // Over one more full period the predictor should be confident
        // for at least the hit positions more often than a flat counter
        // (which would be confident never).
        let mut confident = 0;
        for k in 400..430 {
            if p.decide(33, Reg::int(2)) == Decision::Predict && pattern[k % 3] {
                confident += 1;
            }
            p.train_outcome(&mk(pattern[k % 3]));
        }
        assert!(confident >= 10, "only {confident} confident-at-hit positions");
    }

    #[test]
    fn tage_reset_equals_fresh() {
        let mut p = TageConfVp::new(TageConfig::default());
        for k in 0..100usize {
            p.train_outcome(&Outcome {
                pc: k * 7,
                dst: Reg::int(1),
                predicted: Some(k as u64),
                actual: 3,
                prior: k as u64,
                observed: None,
            });
        }
        p.reset();
        let fresh = TageConfVp::new(TageConfig::default());
        for pc in 0..200 {
            assert_eq!(p.provider(pc), fresh.provider(pc));
            assert_eq!(p.hist[pc & (TAGE_HIST_ENTRIES - 1)], 0);
        }
    }
}
