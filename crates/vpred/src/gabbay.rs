use rvp_isa::{Reg, NUM_REGS};

use crate::counters::{ConfidenceCounter, CounterPolicy};

/// The Gabbay & Mendelson register-file predictor (their TR-1080
/// "register file predictor"), reimplemented as the paper's comparison
/// point for Figure 6 and Table 2.
///
/// The crucial difference from the paper's dRVP: confidence counters are
/// indexed by *destination register number*, not by instruction PC.
/// Register-value reuse is therefore only visible when it holds for **all
/// definitions of the register**, which causes heavy destructive
/// interference — every instruction writing `r3` shares `r3`'s counter.
///
/// # Examples
///
/// ```
/// use rvp_isa::Reg;
/// use rvp_vpred::GabbayPredictor;
///
/// let mut g = GabbayPredictor::paper();
/// let r = Reg::int(3);
/// for _ in 0..7 { g.train(r, true); }
/// assert!(g.confident(r));
/// g.train(r, false); // any non-reusing writer of r3 resets it
/// assert!(!g.confident(r));
/// ```
#[derive(Debug, Clone)]
pub struct GabbayPredictor {
    /// Per-register counters as a flat inline array — the register file
    /// is small enough that no heap indirection is warranted.
    counters: [ConfidenceCounter; NUM_REGS],
    threshold: u8,
}

impl GabbayPredictor {
    /// Creates the predictor with the given counter geometry.
    pub fn new(bits: u8, threshold: u8, policy: CounterPolicy) -> GabbayPredictor {
        GabbayPredictor { counters: [ConfidenceCounter::new(bits, policy); NUM_REGS], threshold }
    }

    /// The configuration used for the paper's comparison: the same 3-bit
    /// resetting counters at threshold 7 as every other predictor, "to
    /// equalize comparisons" (and without their stride predictor).
    pub fn paper() -> GabbayPredictor {
        GabbayPredictor::new(3, 7, CounterPolicy::Resetting)
    }

    /// Whether instructions writing `reg` should be predicted.
    pub fn confident(&self, reg: Reg) -> bool {
        self.counters[reg.index()].confident(self.threshold)
    }

    /// Trains the counter of `reg` with a commit-time outcome.
    pub fn train(&mut self, reg: Reg, hit: bool) {
        self.counters[reg.index()].record(hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_per_register() {
        let mut g = GabbayPredictor::paper();
        for _ in 0..7 {
            g.train(Reg::int(1), true);
        }
        assert!(g.confident(Reg::int(1)));
        assert!(!g.confident(Reg::int(2)));
        assert!(!g.confident(Reg::fp(1)));
    }

    #[test]
    fn mixed_writers_destroy_confidence() {
        // Two static instructions write r5; one reuses, one never does.
        // Interleaved, the shared counter never reaches threshold — the
        // effect the paper's PC-indexed counters avoid.
        let mut g = GabbayPredictor::paper();
        for _ in 0..100 {
            g.train(Reg::int(5), true);
            g.train(Reg::int(5), false);
        }
        assert!(!g.confident(Reg::int(5)));
    }
}
