//! Value predictors for the RVP reproduction.
//!
//! Implements every prediction mechanism the paper evaluates:
//!
//! * [`ConfidenceCounter`] / [`ConfidenceTable`] — small *resetting*
//!   saturating counters (3 bits, threshold 7 by default: predict only
//!   after seven consecutive hits), optionally PC-tagged;
//! * [`LastValuePredictor`] — the baseline buffer-based last-value
//!   predictor (1K entries, tagged, value storage + counters);
//! * [`DrvpPredictor`] — the paper's dynamic register value predictor:
//!   PC-indexed confidence counters and **no value storage** (the
//!   predicted value is whatever the destination register already holds);
//! * [`GabbayPredictor`] — the Gabbay & Mendelson register-file predictor
//!   used as a comparison point: confidence counters indexed by *register
//!   number*, so every instruction writing a register shares one counter;
//! * [`PredictionPlan`] / [`ReuseKind`] — the profile-derived map from
//!   static instruction to the register-reuse relation the compiler has
//!   exposed (same register, another register, or last-value turned into
//!   an exclusive register).
//!
//! # Examples
//!
//! ```
//! use rvp_vpred::{DrvpConfig, DrvpPredictor};
//!
//! let mut rvp = DrvpPredictor::new(DrvpConfig::paper());
//! // An instruction at pc 12 keeps producing its prior register value:
//! for _ in 0..7 {
//!     assert!(!rvp.confident(12));
//!     rvp.train(12, true);
//! }
//! assert!(rvp.confident(12)); // seven consecutive hits -> predict
//! rvp.train(12, false);
//! assert!(!rvp.confident(12)); // resetting counter drops to zero
//! ```

mod buffers;
mod correlation;
mod counters;
mod gabbay;
mod lvp;
mod plan;
mod registry;
mod traits;
mod zoo;

pub use buffers::{
    BufferConfig, BufferPredictor, ContextConfig, ContextPredictor, StrideConfig, StridePredictor,
};
pub use correlation::{CorrelationConfig, CorrelationPredictor};
pub use counters::{ConfidenceCounter, ConfidenceTable, CounterPolicy, TableConfig};
pub use gabbay::GabbayPredictor;
pub use lvp::{LastValuePredictor, LvpConfig};
pub use plan::{PredictionPlan, ReuseKind, Scope};
pub use registry::{
    list_value_predictors, new_value_predictor, value_predictor_names, Params, PredictorInfo,
};
pub use traits::{Decision, Outcome, ValuePredictor};
pub use zoo::{
    BufferVp, CorrelationVp, DrvpVp, GabbayVp, SrvpVp, Stride2Config, Stride2Vp, TageConfVp,
    TageConfig, TournamentVp,
};

/// Configuration of the dynamic register value predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrvpConfig {
    /// Confidence-table geometry (entries, bits, threshold, policy,
    /// tagging).
    pub table: TableConfig,
}

impl DrvpConfig {
    /// The paper's dRVP configuration: 1K direct-mapped **untagged**
    /// 3-bit resetting counters with threshold 7 (Section 4.2). The paper
    /// found untagged counters slightly *outperform* tagged ones, because
    /// positive interference helps when both aliasing instructions
    /// exhibit register-value reuse.
    pub fn paper() -> DrvpConfig {
        DrvpConfig {
            table: TableConfig {
                entries: 1024,
                bits: 3,
                threshold: 7,
                policy: CounterPolicy::Resetting,
                tagged: false,
            },
        }
    }

    /// The tagged variant used for the paper's tagged-vs-untagged
    /// comparison.
    pub fn paper_tagged() -> DrvpConfig {
        DrvpConfig { table: TableConfig { tagged: true, ..DrvpConfig::paper().table } }
    }
}

impl Default for DrvpConfig {
    fn default() -> DrvpConfig {
        DrvpConfig::paper()
    }
}

/// The paper's dynamic register value predictor: confidence only, no
/// value storage. The value used for a prediction is read from the
/// destination architectural register by the pipeline; this structure
/// merely decides *whether* to predict and learns from outcomes.
#[derive(Debug, Clone)]
pub struct DrvpPredictor {
    table: ConfidenceTable,
}

impl DrvpPredictor {
    /// Creates a predictor with all counters at zero.
    pub fn new(config: DrvpConfig) -> DrvpPredictor {
        DrvpPredictor { table: ConfidenceTable::new(config.table) }
    }

    /// Whether the instruction at `pc` should be predicted.
    pub fn confident(&self, pc: usize) -> bool {
        self.table.confident(pc)
    }

    /// Trains with the commit-time outcome: `hit` means the prior
    /// register value equalled the produced value.
    pub fn train(&mut self, pc: usize, hit: bool) {
        self.table.train(pc, hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drvp_positive_interference_without_tags() {
        // Two instructions aliasing to the same counter, both exhibiting
        // reuse: with untagged counters they reinforce each other.
        let mut p = DrvpPredictor::new(DrvpConfig::paper());
        let (a, b) = (5, 5 + 1024);
        for _ in 0..4 {
            p.train(a, true);
            p.train(b, true);
        }
        assert!(p.confident(a));
        assert!(p.confident(b));

        // With tags, the alternating tags keep resetting the entry.
        let mut p = DrvpPredictor::new(DrvpConfig::paper_tagged());
        for _ in 0..8 {
            p.train(a, true);
            p.train(b, true);
        }
        assert!(!p.confident(a));
        assert!(!p.confident(b));
    }

    #[test]
    fn drvp_default_matches_paper() {
        let c = DrvpConfig::default();
        assert_eq!(c.table.entries, 1024);
        assert_eq!(c.table.threshold, 7);
        assert!(!c.table.tagged);
    }
}
