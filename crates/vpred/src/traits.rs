//! The open-ended value-predictor contract the timing core dispatches
//! through.
//!
//! The pipeline owns every piece of machine state a prediction might
//! read (the architectural shadow registers, per-PC last values,
//! in-flight producer tracking); a predictor owns only its private
//! tables. The [`Decision`] enum is the narrow waist between the two:
//! at dispatch the predictor says *what kind* of prediction to make and
//! the pipeline resolves it against machine state, so storageless
//! register-reuse predictors, buffer predictors and register-correlation
//! predictors all fit one trait without the pipeline matching on a
//! closed scheme enum.

use rvp_isa::Reg;

/// What the predictor wants the pipeline to do for one dispatched,
/// in-scope, register-writing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Stay out of the way entirely: no prediction, no candidate value
    /// (e.g. a buffer miss, or a correlation predictor with no learned
    /// candidate register).
    Idle,
    /// Not confident yet: do not predict, but carry the per-PC
    /// register-reuse candidate through the pipeline so commit-time
    /// training can score it.
    Track,
    /// Confident: predict through the instruction's register-reuse
    /// relation (the plan-resolved [`crate::ReuseKind`] held by the
    /// pipeline's per-PC metadata).
    Predict,
    /// Buffer hit: predict this concrete value, with no register-file
    /// dependence at all.
    Value(u64),
    /// Correlation tracking: carry the value currently in register `r`
    /// as the candidate without predicting.
    TrackReg(Reg),
    /// Correlation prediction: predict the value currently in register
    /// `r`.
    PredictReg(Reg),
}

/// The commit-time architectural outcome of one in-scope instruction,
/// handed to [`ValuePredictor::train_outcome`].
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Static instruction address.
    pub pc: usize,
    /// Destination register (commit training only fires for writers).
    pub dst: Reg,
    /// The candidate value captured at dispatch, if the decision carried
    /// one (`None` after [`Decision::Idle`]).
    pub predicted: Option<u64>,
    /// The value the instruction actually produced.
    pub actual: u64,
    /// The destination register's value before the write — the
    /// storageless same-register reuse candidate.
    pub prior: u64,
    /// The same-class register observed at dispatch to already hold
    /// `actual`, when the predictor asked for register observation via
    /// [`ValuePredictor::observes_registers`].
    pub observed: Option<Reg>,
}

/// A value predictor the timing core can dispatch through.
///
/// Implementations are constructed by the string-keyed registry
/// ([`crate::new_value_predictor`]); see the registry module for the
/// config-string grammar and the conformance obligations (determinism,
/// `reset` == fresh, `spec()` round-trip) every registered predictor
/// must satisfy.
pub trait ValuePredictor: Send {
    /// Registry name this predictor was built under.
    fn name(&self) -> &'static str;

    /// Canonical config string: parsing it back through the registry
    /// yields an identically-configured predictor.
    fn spec(&self) -> String;

    /// The dispatch-time decision for the instruction at `pc` writing
    /// `dst`. Called once per dispatched in-scope instruction.
    fn decide(&mut self, pc: usize, dst: Reg) -> Decision;

    /// Writeback-time value training (buffer family): called with the
    /// produced value as soon as it exists, for every in-scope
    /// register-writing instruction — only when
    /// [`ValuePredictor::wants_value_training`] is true.
    fn train_value(&mut self, _pc: usize, _value: u64) {}

    /// Whether the pipeline should call [`ValuePredictor::train_value`]
    /// at writeback.
    fn wants_value_training(&self) -> bool {
        false
    }

    /// Commit-time outcome training: called once per committed in-scope
    /// register-writing instruction, in program order.
    fn train_outcome(&mut self, _o: &Outcome) {}

    /// Whether dispatch should scan the same-class registers to fill
    /// [`Outcome::observed`] (register-correlation learning).
    fn observes_registers(&self) -> bool {
        false
    }

    /// Returns the predictor to its just-constructed state.
    fn reset(&mut self);

    /// Clones the predictor, state included, behind the trait.
    fn clone_box(&self) -> Box<dyn ValuePredictor>;
}

impl Clone for Box<dyn ValuePredictor> {
    fn clone(&self) -> Box<dyn ValuePredictor> {
        self.clone_box()
    }
}

impl std::fmt::Debug for dyn ValuePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ValuePredictor({})", self.spec())
    }
}
