//! Hardware-learned register correlation, after Jourdan et al. (MICRO
//! 1998), the paper's related work [6]: "They depend on hardware to
//! recognize other-register value-reuse, where we transform the program.
//! Their technique could be combined with ours to increase the
//! effectiveness of RVP without compiler intervention."
//!
//! The predictor learns, per static instruction, *which architectural
//! register* tends to already hold the value the instruction is about to
//! produce — still storageless (the value is read from the register
//! file), but with a small source-register field next to each confidence
//! counter instead of relying on the compiler's reallocation.

use rvp_isa::Reg;

use crate::counters::{ConfidenceCounter, CounterPolicy};

/// Configuration of a [`CorrelationPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrelationConfig {
    /// Table entries (power of two, PC-indexed, untagged like the dRVP
    /// counters).
    pub entries: usize,
    /// Confidence threshold (3-bit resetting counters).
    pub threshold: u8,
}

impl Default for CorrelationConfig {
    fn default() -> CorrelationConfig {
        CorrelationConfig { entries: 1024, threshold: 7 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    candidate: Option<Reg>,
    counter: ConfidenceCounter,
}

/// A storageless predictor that learns a *source register* per static
/// instruction: predictions read that register's current value from the
/// register file.
///
/// Training feeds back whether the learned register held the produced
/// value, plus (on a miss) a register that *did* hold it this time, which
/// becomes the new candidate.
///
/// # Examples
///
/// ```
/// use rvp_isa::Reg;
/// use rvp_vpred::{CorrelationConfig, CorrelationPredictor};
///
/// let mut p = CorrelationPredictor::new(CorrelationConfig::default());
/// // The value keeps showing up in r7:
/// for _ in 0..8 {
///     let hit = p.candidate(12) == Some(Reg::int(7));
///     p.train(12, hit, Some(Reg::int(7)));
/// }
/// assert_eq!(p.candidate(12), Some(Reg::int(7)));
/// assert!(p.confident(12));
/// ```
#[derive(Debug, Clone)]
pub struct CorrelationPredictor {
    config: CorrelationConfig,
    entries: Vec<Entry>,
}

impl CorrelationPredictor {
    /// Creates a predictor with empty candidates and zeroed counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(config: CorrelationConfig) -> CorrelationPredictor {
        assert!(config.entries.is_power_of_two(), "table size must be a power of two");
        CorrelationPredictor {
            entries: vec![
                Entry {
                    candidate: None,
                    counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                };
                config.entries
            ],
            config,
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc & (self.config.entries - 1)
    }

    /// The register currently believed to hold this instruction's next
    /// value.
    pub fn candidate(&self, pc: usize) -> Option<Reg> {
        self.entries[self.index(pc)].candidate
    }

    /// Whether the instruction should be predicted from its candidate.
    pub fn confident(&self, pc: usize) -> bool {
        let e = &self.entries[self.index(pc)];
        e.candidate.is_some() && e.counter.confident(self.config.threshold)
    }

    /// Trains with a commit-time outcome: `hit` says whether the
    /// candidate register held the produced value; `observed` names a
    /// register that did (if any), adopted as the new candidate on a
    /// miss.
    pub fn train(&mut self, pc: usize, hit: bool, observed: Option<Reg>) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        e.counter.record(hit);
        if !hit {
            if let Some(r) = observed {
                if e.candidate != Some(r) {
                    e.candidate = Some(r);
                    e.counter.reset();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_stable_source_register() {
        let mut p = CorrelationPredictor::new(CorrelationConfig::default());
        for _ in 0..10 {
            let hit = p.candidate(4) == Some(Reg::fp(3));
            p.train(4, hit, Some(Reg::fp(3)));
        }
        assert!(p.confident(4));
        assert_eq!(p.candidate(4), Some(Reg::fp(3)));
    }

    #[test]
    fn switches_candidates_on_sustained_misses() {
        let mut p = CorrelationPredictor::new(CorrelationConfig::default());
        for _ in 0..10 {
            let hit = p.candidate(4) == Some(Reg::int(1));
            p.train(4, hit, Some(Reg::int(1)));
        }
        assert!(p.confident(4));
        // The correlation moves to r2.
        for _ in 0..10 {
            let hit = p.candidate(4) == Some(Reg::int(2));
            p.train(4, hit, Some(Reg::int(2)));
        }
        assert!(p.confident(4));
        assert_eq!(p.candidate(4), Some(Reg::int(2)));
    }

    #[test]
    fn never_confident_without_a_candidate() {
        let mut p = CorrelationPredictor::new(CorrelationConfig::default());
        assert!(!p.confident(9));
        for _ in 0..10 {
            p.train(9, false, None);
        }
        assert!(!p.confident(9));
        assert_eq!(p.candidate(9), None);
    }

    #[test]
    fn flapping_correlations_stay_unconfident() {
        let mut p = CorrelationPredictor::new(CorrelationConfig::default());
        for k in 0..100 {
            let r = Reg::int(1 + (k % 2) as u8);
            let hit = p.candidate(4) == Some(r);
            p.train(4, hit, Some(r));
        }
        assert!(!p.confident(4));
    }
}
