//! Extended buffer-based value predictors beyond last-value prediction:
//! stride, finite-context (two-level) and hybrid predictors.
//!
//! The paper deliberately excludes these from its comparison ("we do not
//! compare it with schemes that add additional storage and complexity to
//! what is required for last-value prediction"), but cites them all:
//! stride (Gabbay & Mendelson), context/two-level (Sazeides & Smith,
//! Wang & Franklin) and hybrids. They are provided here as additional
//! baselines for the `beyond_paper` experiment, with the same 3-bit
//! resetting confidence filter as everything else.

use crate::counters::{ConfidenceCounter, CounterPolicy};
use crate::lvp::{LastValuePredictor, LvpConfig};

/// Configuration of a [`StridePredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Table entries (power of two, PC-indexed, tagged).
    pub entries: usize,
    /// Confidence threshold (3-bit resetting counters).
    pub threshold: u8,
}

impl Default for StrideConfig {
    fn default() -> StrideConfig {
        StrideConfig { entries: 1024, threshold: 7 }
    }
}

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    tag: usize,
    last: u64,
    stride: i64,
    valid: bool,
    counter: ConfidenceCounter,
}

/// A classic stride predictor: predicts `last + stride`, where `stride`
/// is the last observed difference. Confidence counts consecutive
/// correct stride applications.
///
/// # Examples
///
/// ```
/// use rvp_vpred::{StrideConfig, StridePredictor};
///
/// let mut sp = StridePredictor::new(StrideConfig::default());
/// for i in 0..10u64 {
///     sp.train(4, 100 + 8 * i);
/// }
/// assert_eq!(sp.predict(4), Some(180));
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor {
    config: StrideConfig,
    entries: Vec<StrideEntry>,
}

impl StridePredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(config: StrideConfig) -> StridePredictor {
        assert!(config.entries.is_power_of_two(), "table size must be a power of two");
        StridePredictor {
            entries: vec![
                StrideEntry {
                    tag: 0,
                    last: 0,
                    stride: 0,
                    valid: false,
                    counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                };
                config.entries
            ],
            config,
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc & (self.config.entries - 1)
    }

    /// The predicted next value for `pc`, if confident.
    pub fn predict(&self, pc: usize) -> Option<u64> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == pc && e.counter.confident(self.config.threshold))
            .then(|| e.last.wrapping_add(e.stride as u64))
    }

    /// Trains with a committed result.
    pub fn train(&mut self, pc: usize, actual: u64) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if !e.valid || e.tag != pc {
            *e = StrideEntry {
                tag: pc,
                last: actual,
                stride: 0,
                valid: true,
                counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
            };
            return;
        }
        let observed = actual.wrapping_sub(e.last) as i64;
        e.counter.record(observed == e.stride);
        e.stride = observed;
        e.last = actual;
    }
}

/// Configuration of a [`ContextPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextConfig {
    /// First-level (history) entries per PC table.
    pub entries: usize,
    /// Second-level value-table entries.
    pub vht_entries: usize,
    /// Values of history folded into the context hash.
    pub order: usize,
    /// Confidence threshold.
    pub threshold: u8,
}

impl Default for ContextConfig {
    fn default() -> ContextConfig {
        ContextConfig { entries: 1024, vht_entries: 4096, order: 2, threshold: 7 }
    }
}

#[derive(Debug, Clone)]
struct ContextEntry {
    tag: usize,
    /// Hashes of the last `order` values.
    history: Vec<u64>,
    valid: bool,
}

#[derive(Debug, Clone, Copy)]
struct VhtEntry {
    value: u64,
    counter: ConfidenceCounter,
}

/// An order-N finite-context-method predictor (Sazeides & Smith style):
/// the recent value history selects a second-level table entry holding
/// the value that followed this context last time.
#[derive(Debug, Clone)]
pub struct ContextPredictor {
    config: ContextConfig,
    first: Vec<ContextEntry>,
    second: Vec<VhtEntry>,
}

impl ContextPredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics unless both table sizes are powers of two and `order >= 1`.
    pub fn new(config: ContextConfig) -> ContextPredictor {
        assert!(config.entries.is_power_of_two());
        assert!(config.vht_entries.is_power_of_two());
        assert!(config.order >= 1);
        ContextPredictor {
            first: vec![
                ContextEntry { tag: 0, history: vec![0; config.order], valid: false };
                config.entries
            ],
            second: vec![
                VhtEntry {
                    value: 0,
                    counter: ConfidenceCounter::new(3, CounterPolicy::Resetting),
                };
                config.vht_entries
            ],
            config,
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc & (self.config.entries - 1)
    }

    fn context_hash(&self, pc: usize, history: &[u64]) -> usize {
        let mut h = pc as u64;
        for (k, v) in history.iter().enumerate() {
            h = h.rotate_left(7).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ v.rotate_left(k as u32 + 1);
        }
        (h as usize) & (self.config.vht_entries - 1)
    }

    /// The value predicted to follow the current context, if confident.
    pub fn predict(&self, pc: usize) -> Option<u64> {
        let e = &self.first[self.index(pc)];
        if !e.valid || e.tag != pc {
            return None;
        }
        let v = &self.second[self.context_hash(pc, &e.history)];
        v.counter.confident(self.config.threshold).then_some(v.value)
    }

    /// Trains with a committed result.
    pub fn train(&mut self, pc: usize, actual: u64) {
        let i = self.index(pc);
        if !self.first[i].valid || self.first[i].tag != pc {
            self.first[i] =
                ContextEntry { tag: pc, history: vec![0; self.config.order], valid: true };
        }
        let vi = self.context_hash(pc, &self.first[i].history);
        let v = &mut self.second[vi];
        let hit = v.value == actual;
        v.counter.record(hit);
        if !hit {
            v.value = actual;
        }
        // Shift the value history.
        self.first[i].history.rotate_left(1);
        *self.first[i].history.last_mut().expect("order >= 1") = actual;
    }
}

/// Which buffer-based predictor a [`BufferPredictor`] wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferConfig {
    /// Last-value prediction (the paper's comparison point).
    LastValue(LvpConfig),
    /// Stride prediction.
    Stride(StrideConfig),
    /// Order-N context prediction.
    Context(ContextConfig),
    /// Hybrid: stride backed by last-value (component with confidence
    /// wins; stride preferred on ties).
    Hybrid(StrideConfig, LvpConfig),
}

/// A uniform front over every buffer-based predictor, so the timing
/// model can treat them interchangeably (they all supply a value
/// directly from a table with no register-file dependence).
#[derive(Debug, Clone)]
pub enum BufferPredictor {
    /// Last-value table.
    Lvp(LastValuePredictor),
    /// Stride table.
    Stride(StridePredictor),
    /// Finite-context predictor.
    Context(ContextPredictor),
    /// Stride + last-value hybrid.
    Hybrid(StridePredictor, LastValuePredictor),
}

impl BufferPredictor {
    /// Instantiates the configured predictor with cold tables.
    pub fn new(config: BufferConfig) -> BufferPredictor {
        match config {
            BufferConfig::LastValue(c) => BufferPredictor::Lvp(LastValuePredictor::new(c)),
            BufferConfig::Stride(c) => BufferPredictor::Stride(StridePredictor::new(c)),
            BufferConfig::Context(c) => BufferPredictor::Context(ContextPredictor::new(c)),
            BufferConfig::Hybrid(s, l) => {
                BufferPredictor::Hybrid(StridePredictor::new(s), LastValuePredictor::new(l))
            }
        }
    }

    /// The predicted value for `pc`, if the predictor is confident.
    pub fn predict(&self, pc: usize) -> Option<u64> {
        match self {
            BufferPredictor::Lvp(p) => p.predict(pc),
            BufferPredictor::Stride(p) => p.predict(pc),
            BufferPredictor::Context(p) => p.predict(pc),
            BufferPredictor::Hybrid(s, l) => s.predict(pc).or_else(|| l.predict(pc)),
        }
    }

    /// Trains every component with a committed result.
    pub fn train(&mut self, pc: usize, actual: u64) {
        match self {
            BufferPredictor::Lvp(p) => p.train(pc, actual),
            BufferPredictor::Stride(p) => p.train(pc, actual),
            BufferPredictor::Context(p) => p.train(pc, actual),
            BufferPredictor::Hybrid(s, l) => {
                s.train(pc, actual);
                l.train(pc, actual);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_tracks_arithmetic_sequences() {
        let mut sp = StridePredictor::new(StrideConfig::default());
        for i in 0..12u64 {
            sp.train(9, i * 16);
        }
        assert_eq!(sp.predict(9), Some(192));
        // A break in the pattern resets confidence.
        sp.train(9, 5);
        assert_eq!(sp.predict(9), None);
    }

    #[test]
    fn stride_zero_equals_last_value() {
        let mut sp = StridePredictor::new(StrideConfig::default());
        for _ in 0..10 {
            sp.train(3, 42);
        }
        assert_eq!(sp.predict(3), Some(42));
    }

    #[test]
    fn stride_handles_negative_strides() {
        let mut sp = StridePredictor::new(StrideConfig::default());
        for i in 0..12i64 {
            sp.train(7, (1000 - 8 * i) as u64);
        }
        assert_eq!(sp.predict(7), Some(904));
    }

    #[test]
    fn context_learns_repeating_patterns() {
        // The sequence 1,2,3,1,2,3,... is unpredictable for last-value
        // and stride, but trivial for an order-2 context predictor.
        let mut cp = ContextPredictor::new(ContextConfig::default());
        let pattern = [1u64, 2, 3];
        for k in 0..60 {
            cp.train(5, pattern[k % 3]);
        }
        // After (3,1) the next value is 2, and so on.
        let mut correct = 0;
        for k in 60..90 {
            if cp.predict(5) == Some(pattern[k % 3]) {
                correct += 1;
            }
            cp.train(5, pattern[k % 3]);
        }
        assert!(correct >= 28, "only {correct}/30 correct");
    }

    #[test]
    fn hybrid_prefers_stride_then_falls_back() {
        let cfg = BufferConfig::Hybrid(StrideConfig::default(), LvpConfig::paper());
        let mut h = BufferPredictor::new(cfg);
        for i in 0..12u64 {
            h.train(11, 100 + 4 * i);
        }
        assert_eq!(h.predict(11), Some(148)); // stride component
        let mut h = BufferPredictor::new(cfg);
        for _ in 0..12 {
            h.train(11, 77);
        }
        assert_eq!(h.predict(11), Some(77)); // both agree on constants
    }

    #[test]
    fn buffer_front_matches_lvp() {
        let mut a = BufferPredictor::new(BufferConfig::LastValue(LvpConfig::paper()));
        let mut b = LastValuePredictor::new(LvpConfig::paper());
        for i in 0..20usize {
            let v = (i as u64) % 3;
            a.train(i & 7, v);
            b.train(i & 7, v);
            assert_eq!(a.predict(i & 7), b.predict(i & 7));
        }
    }
}
