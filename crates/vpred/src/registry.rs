//! The string-keyed value-predictor registry.
//!
//! Predictors are constructed by name from a config string:
//!
//! ```text
//! <name>[:<key>=<value>[,<key>=<value>...]]
//! ```
//!
//! e.g. `lvp`, `lvp:entries=4096,ctr=2`, `fcm:order=3`. Every parameter
//! is optional (defaults come from the predictor's paper/default
//! config), unknown names and unknown or duplicate keys are errors, and
//! [`ValuePredictor::spec`] emits the canonical fully-spelled form that
//! parses back to an identical predictor.
//!
//! # Examples
//!
//! ```
//! use rvp_vpred::{new_value_predictor, list_value_predictors};
//!
//! let p = new_value_predictor("lvp:entries=4096,ctr=2").unwrap();
//! assert_eq!(p.name(), "lvp");
//! assert!(new_value_predictor(p.spec().as_str()).is_ok());
//! assert!(list_value_predictors().iter().any(|i| i.name == "tage_drvp"));
//! ```

use crate::buffers::{BufferConfig, ContextConfig, StrideConfig};
use crate::correlation::CorrelationConfig;
use crate::counters::{CounterPolicy, TableConfig};
use crate::lvp::LvpConfig;
use crate::traits::ValuePredictor;
use crate::zoo::{
    BufferVp, CorrelationVp, DrvpVp, GabbayVp, SrvpVp, Stride2Config, Stride2Vp, TageConfVp,
    TageConfig, TournamentVp,
};
use crate::DrvpConfig;

/// A registered predictor, as listed by [`list_value_predictors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorInfo {
    /// Registry name (the part of the config string before `:`).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The canonical spec of the default configuration.
    pub default_spec: &'static str,
}

/// A parsed `name:key=value,...` config string with consumption
/// tracking, so builders can pull typed parameters (with aliases) and
/// anything left over is reported as an unknown key.
#[derive(Debug)]
pub struct Params {
    name: String,
    pairs: Vec<(String, String, bool)>,
}

impl Params {
    /// Parses a config string. Rejects empty names, empty parameter
    /// lists after `:`, malformed pairs and duplicate keys.
    pub fn parse(spec: &str) -> Result<Params, String> {
        let (name, rest) = match spec.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (spec, None),
        };
        if name.is_empty() {
            return Err(format!("empty predictor name in spec '{spec}'"));
        }
        let mut pairs: Vec<(String, String, bool)> = Vec::new();
        if let Some(rest) = rest {
            if rest.is_empty() {
                return Err(format!("empty parameter list in spec '{spec}'"));
            }
            for part in rest.split(',') {
                let (k, v) = part
                    .split_once('=')
                    .ok_or_else(|| format!("malformed parameter '{part}' (expected key=value)"))?;
                if k.is_empty() || v.is_empty() {
                    return Err(format!("malformed parameter '{part}' (expected key=value)"));
                }
                if pairs.iter().any(|(pk, ..)| pk == k) {
                    return Err(format!("duplicate parameter '{k}' in spec '{spec}'"));
                }
                pairs.push((k.to_string(), v.to_string(), false));
            }
        }
        Ok(Params { name: name.to_string(), pairs })
    }

    /// The predictor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&mut self, keys: &[&str]) -> Option<String> {
        for (k, v, taken) in &mut self.pairs {
            if keys.iter().any(|want| want == k) {
                *taken = true;
                return Some(v.clone());
            }
        }
        None
    }

    /// An integer parameter under any of `keys`, or `default`.
    pub fn usize_or(&mut self, keys: &[&str], default: usize) -> Result<usize, String> {
        match self.lookup(keys) {
            Some(v) => {
                v.parse().map_err(|_| format!("parameter '{}': '{v}' is not an integer", keys[0]))
            }
            None => Ok(default),
        }
    }

    /// A small-integer parameter under any of `keys`, or `default`.
    pub fn u8_or(&mut self, keys: &[&str], default: u8) -> Result<u8, String> {
        match self.lookup(keys) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("parameter '{}': '{v}' is not a small integer", keys[0])),
            None => Ok(default),
        }
    }

    /// A boolean parameter (`true`/`false`/`1`/`0`) under any of `keys`.
    pub fn bool_or(&mut self, keys: &[&str], default: bool) -> Result<bool, String> {
        match self.lookup(keys).as_deref() {
            Some("true") | Some("1") => Ok(true),
            Some("false") | Some("0") => Ok(false),
            Some(v) => Err(format!("parameter '{}': '{v}' is not a boolean", keys[0])),
            None => Ok(default),
        }
    }

    /// A counter-policy parameter (`reset`/`sat`) under any of `keys`.
    pub fn policy_or(
        &mut self,
        keys: &[&str],
        default: CounterPolicy,
    ) -> Result<CounterPolicy, String> {
        match self.lookup(keys).as_deref() {
            Some("reset") | Some("resetting") => Ok(CounterPolicy::Resetting),
            Some("sat") | Some("saturating") => Ok(CounterPolicy::Saturating),
            Some(v) => Err(format!("parameter '{}': '{v}' is not a policy (reset|sat)", keys[0])),
            None => Ok(default),
        }
    }

    /// Errors if any parameter was never consumed by a builder.
    pub fn finish(&self) -> Result<(), String> {
        let leftover: Vec<&str> =
            self.pairs.iter().filter(|(.., taken)| !taken).map(|(k, ..)| k.as_str()).collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unknown parameter{} for '{}': {}",
                if leftover.len() == 1 { "" } else { "s" },
                self.name,
                leftover.join(", ")
            ))
        }
    }
}

fn pow2(n: usize, what: &str) -> Result<usize, String> {
    if n.is_power_of_two() {
        Ok(n)
    } else {
        Err(format!("{what} must be a power of two, got {n}"))
    }
}

fn counter_bits(b: u8) -> Result<u8, String> {
    if (1..=7).contains(&b) {
        Ok(b)
    } else {
        Err(format!("ctr width must be 1..=7 bits, got {b}"))
    }
}

type Builder = fn(&mut Params) -> Result<Box<dyn ValuePredictor>, String>;

fn build_srvp(_p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    Ok(Box::new(SrvpVp))
}

fn lvp_config(p: &mut Params) -> Result<LvpConfig, String> {
    let d = LvpConfig::paper();
    Ok(LvpConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        bits: counter_bits(p.u8_or(&["ctr", "bits"], d.bits)?)?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
        policy: p.policy_or(&["policy"], d.policy)?,
        tagged: p.bool_or(&["tagged"], d.tagged)?,
    })
}

fn build_lvp(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    Ok(Box::new(BufferVp::new(BufferConfig::LastValue(lvp_config(p)?))))
}

fn build_stride(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = StrideConfig::default();
    let c = StrideConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
    };
    Ok(Box::new(BufferVp::new(BufferConfig::Stride(c))))
}

fn build_stride2(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = Stride2Config::default();
    let c = Stride2Config {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
    };
    Ok(Box::new(Stride2Vp::new(c)))
}

fn build_fcm(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = ContextConfig::default();
    let order = p.usize_or(&["order"], d.order)?;
    if order == 0 {
        return Err("order must be >= 1".to_string());
    }
    let c = ContextConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        vht_entries: pow2(p.usize_or(&["vht"], d.vht_entries)?, "vht")?,
        order,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
    };
    Ok(Box::new(BufferVp::new(BufferConfig::Context(c))))
}

fn build_stride_lvp(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = StrideConfig::default();
    let c = StrideConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
    };
    Ok(Box::new(BufferVp::new(BufferConfig::Hybrid(c, LvpConfig::paper()))))
}

fn build_drvp(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = DrvpConfig::paper().table;
    let table = TableConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        bits: counter_bits(p.u8_or(&["ctr", "bits"], d.bits)?)?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
        policy: p.policy_or(&["policy"], d.policy)?,
        tagged: p.bool_or(&["tagged"], d.tagged)?,
    };
    Ok(Box::new(DrvpVp::new(DrvpConfig { table })))
}

fn build_gabbay(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let bits = counter_bits(p.u8_or(&["ctr", "bits"], 3)?)?;
    let threshold = p.u8_or(&["threshold", "thr"], 7)?;
    let policy = p.policy_or(&["policy"], CounterPolicy::Resetting)?;
    Ok(Box::new(GabbayVp::new(bits, threshold, policy)))
}

fn build_hwcorr(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = CorrelationConfig::default();
    let c = CorrelationConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
    };
    Ok(Box::new(CorrelationVp::new(c)))
}

fn build_rvp_lvp(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = TableConfig::default();
    let table = TableConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        bits: counter_bits(p.u8_or(&["ctr", "bits"], d.bits)?)?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
        policy: CounterPolicy::Resetting,
        tagged: false,
    };
    Ok(Box::new(TournamentVp::new(table, LvpConfig::paper())))
}

fn build_tage_drvp(p: &mut Params) -> Result<Box<dyn ValuePredictor>, String> {
    let d = TageConfig::default();
    let c = TageConfig {
        entries: pow2(p.usize_or(&["entries"], d.entries)?, "entries")?,
        threshold: p.u8_or(&["threshold", "thr"], d.threshold)?,
    };
    Ok(Box::new(TageConfVp::new(c)))
}

struct Entry {
    info: PredictorInfo,
    build: Builder,
}

static REGISTRY: &[Entry] = &[
    Entry {
        info: PredictorInfo {
            name: "srvp",
            summary: "static RVP: the profile-derived plan decides, always confident",
            default_spec: "srvp",
        },
        build: build_srvp,
    },
    Entry {
        info: PredictorInfo {
            name: "lvp",
            summary: "last-value buffer (Lipasti & Shen), tagged, with confidence",
            default_spec: "lvp:entries=1024,ctr=3,threshold=7,policy=reset,tagged=true",
        },
        build: build_lvp,
    },
    Entry {
        info: PredictorInfo {
            name: "drvp",
            summary: "dynamic RVP: storageless PC-indexed reuse confidence (the paper)",
            default_spec: "drvp:entries=1024,ctr=3,threshold=7,policy=reset,tagged=false",
        },
        build: build_drvp,
    },
    Entry {
        info: PredictorInfo {
            name: "gabbay",
            summary: "Gabbay & Mendelson register-file predictor (per-register counters)",
            default_spec: "gabbay:ctr=3,threshold=7,policy=reset",
        },
        build: build_gabbay,
    },
    Entry {
        info: PredictorInfo {
            name: "hwcorr",
            summary: "hardware-learned register correlation (Jourdan et al.)",
            default_spec: "hwcorr:entries=1024,threshold=7",
        },
        build: build_hwcorr,
    },
    Entry {
        info: PredictorInfo {
            name: "stride",
            summary: "1-delta stride buffer predictor",
            default_spec: "stride:entries=1024,threshold=7",
        },
        build: build_stride,
    },
    Entry {
        info: PredictorInfo {
            name: "stride2",
            summary: "2-delta stride buffer predictor (stride changes only when repeated)",
            default_spec: "stride2:entries=1024,threshold=7",
        },
        build: build_stride2,
    },
    Entry {
        info: PredictorInfo {
            name: "fcm",
            summary: "order-N finite-context-method predictor (Sazeides & Smith)",
            default_spec: "fcm:entries=1024,vht=4096,order=2,threshold=7",
        },
        build: build_fcm,
    },
    Entry {
        info: PredictorInfo {
            name: "stride_lvp",
            summary: "stride+last-value hybrid buffer (stride preferred)",
            default_spec: "stride_lvp:entries=1024,threshold=7",
        },
        build: build_stride_lvp,
    },
    Entry {
        info: PredictorInfo {
            name: "rvp_lvp",
            summary: "RVP+LVP tournament: reuse confidence first, last-value fallback",
            default_spec: "rvp_lvp:entries=1024,ctr=3,threshold=7",
        },
        build: build_rvp_lvp,
    },
    Entry {
        info: PredictorInfo {
            name: "tage_drvp",
            summary: "TAGE-style tagged geometric-history reuse confidence for DRVP",
            default_spec: "tage_drvp:entries=512,threshold=7",
        },
        build: build_tage_drvp,
    },
];

/// Every registered predictor, in registration order.
pub fn list_value_predictors() -> Vec<&'static PredictorInfo> {
    REGISTRY.iter().map(|e| &e.info).collect()
}

/// The registered predictor names, in registration order.
pub fn value_predictor_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.info.name).collect()
}

/// Builds a predictor from a `name[:key=value,...]` config string.
pub fn new_value_predictor(spec: &str) -> Result<Box<dyn ValuePredictor>, String> {
    let mut p = Params::parse(spec)?;
    let entry = REGISTRY.iter().find(|e| e.info.name == p.name()).ok_or_else(|| {
        format!(
            "unknown value predictor '{}' (known: {})",
            p.name(),
            value_predictor_names().join(", ")
        )
    })?;
    let built = (entry.build)(&mut p)?;
    p.finish()?;
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_default_spec_builds_and_round_trips() {
        for info in list_value_predictors() {
            let by_name = new_value_predictor(info.name).unwrap();
            assert_eq!(by_name.name(), info.name);
            assert_eq!(by_name.spec(), info.default_spec, "canonical spec for {}", info.name);
            let by_spec = new_value_predictor(info.default_spec).unwrap();
            assert_eq!(by_spec.spec(), info.default_spec);
        }
    }

    #[test]
    fn unknown_names_and_keys_are_rejected() {
        let err = new_value_predictor("bogus").unwrap_err();
        assert!(err.contains("unknown value predictor"), "{err}");
        assert!(err.contains("tage_drvp"), "{err}");
        let err = new_value_predictor("lvp:wat=1").unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");
        assert!(new_value_predictor("lvp:").is_err());
        assert!(new_value_predictor("lvp:entries").is_err());
        assert!(new_value_predictor("lvp:entries=2,entries=4").is_err());
    }

    #[test]
    fn parameters_are_typed_and_validated() {
        assert!(new_value_predictor("lvp:entries=1000").is_err()); // not a power of two
        assert!(new_value_predictor("lvp:ctr=9").is_err());
        assert!(new_value_predictor("lvp:tagged=maybe").is_err());
        assert!(new_value_predictor("fcm:order=0").is_err());
        let p = new_value_predictor("lvp:entries=4096,ctr=2").unwrap();
        assert_eq!(p.spec(), "lvp:entries=4096,ctr=2,threshold=7,policy=reset,tagged=true");
    }

    #[test]
    fn ctr_and_bits_are_aliases() {
        let a = new_value_predictor("drvp:ctr=2").unwrap();
        let b = new_value_predictor("drvp:bits=2").unwrap();
        assert_eq!(a.spec(), b.spec());
    }
}
