//! Property tests: every ALU operation the emulator executes matches a
//! direct Rust reference computation, and memory loads/stores round-trip
//! through programs.

use proptest::prelude::*;
use rvp_emu::Emulator;
use rvp_isa::{ProgramBuilder, Reg};

fn run_alu(op: &str, a: u64, b: u64) -> u64 {
    let (ra, rb, rd) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut p = ProgramBuilder::new();
    p.li(ra, a as i64);
    p.li(rb, b as i64);
    match op {
        "add" => p.add(rd, ra, rb),
        "sub" => p.sub(rd, ra, rb),
        "mul" => p.mul(rd, ra, rb),
        "div" => p.div(rd, ra, rb),
        "rem" => p.rem(rd, ra, rb),
        "and" => p.and(rd, ra, rb),
        "or" => p.or(rd, ra, rb),
        "xor" => p.xor(rd, ra, rb),
        "sll" => p.sll(rd, ra, rb),
        "srl" => p.srl(rd, ra, rb),
        "sra" => p.sra(rd, ra, rb),
        "cmpeq" => p.cmpeq(rd, ra, rb),
        "cmplt" => p.cmplt(rd, ra, rb),
        "cmpltu" => p.cmpltu(rd, ra, rb),
        "cmple" => p.cmple(rd, ra, rb),
        _ => unreachable!(),
    };
    p.halt();
    let prog = p.build().unwrap();
    let mut emu = Emulator::new(&prog);
    while emu.step().unwrap().is_some() {}
    emu.reg(rd)
}

fn reference(op: &str, a: u64, b: u64) -> u64 {
    match op {
        "add" => a.wrapping_add(b),
        "sub" => a.wrapping_sub(b),
        "mul" => a.wrapping_mul(b),
        "div" => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        "rem" => {
            if b == 0 {
                a
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
        "and" => a & b,
        "or" => a | b,
        "xor" => a ^ b,
        "sll" => a.wrapping_shl(b as u32),
        "srl" => a.wrapping_shr(b as u32),
        "sra" => ((a as i64).wrapping_shr(b as u32)) as u64,
        "cmpeq" => u64::from(a == b),
        "cmplt" => u64::from((a as i64) < (b as i64)),
        "cmpltu" => u64::from(a < b),
        "cmple" => u64::from((a as i64) <= (b as i64)),
        _ => unreachable!(),
    }
}

const OPS: &[&str] = &[
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "sll", "srl", "sra", "cmpeq", "cmplt",
    "cmpltu", "cmple",
];

proptest! {
    #[test]
    fn alu_matches_reference(op_idx in 0..OPS.len(), a in any::<u64>(), b in any::<u64>()) {
        let op = OPS[op_idx];
        prop_assert_eq!(run_alu(op, a, b), reference(op, a, b), "op {}", op);
    }

    /// Division edge cases that trap on real hardware must be total here.
    #[test]
    fn division_edges_are_total(a in any::<u64>()) {
        prop_assert_eq!(run_alu("div", a, 0), 0);
        prop_assert_eq!(run_alu("rem", a, 0), a);
        // i64::MIN / -1 overflows; wrapping semantics apply.
        prop_assert_eq!(
            run_alu("div", i64::MIN as u64, (-1i64) as u64),
            (i64::MIN).wrapping_div(-1) as u64
        );
    }

    /// Stores followed by loads of any width round-trip the stored bytes.
    #[test]
    fn memory_round_trips(value in any::<u64>(), slot in 0u64..32) {
        let (v, base, out) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let addr = 0x1_0000 + slot * 8;
        let mut p = ProgramBuilder::new();
        p.li(base, addr as i64);
        p.li(v, value as i64);
        p.st(v, base, 0);
        p.ld(out, base, 0);
        p.halt();
        let prog = p.build().unwrap();
        let mut emu = Emulator::new(&prog);
        while emu.step().unwrap().is_some() {}
        prop_assert_eq!(emu.reg(out), value);
        prop_assert_eq!(emu.memory().read_u64(addr), value);
    }

    /// FP arithmetic matches f64 semantics bit-for-bit.
    #[test]
    fn fp_matches_reference(a in any::<f64>(), b in any::<f64>()) {
        let (fa, fb, fd) = (Reg::fp(1), Reg::fp(2), Reg::fp(3));
        for (i, expect) in [a + b, a - b, a * b, a / b].into_iter().enumerate() {
            let mut p = ProgramBuilder::new();
            p.lif(fa, a);
            p.lif(fb, b);
            match i {
                0 => p.fadd(fd, fa, fb),
                1 => p.fsub(fd, fa, fb),
                2 => p.fmul(fd, fa, fb),
                _ => p.fdiv(fd, fa, fb),
            };
            p.halt();
            let prog = p.build().unwrap();
            let mut emu = Emulator::new(&prog);
            while emu.step().unwrap().is_some() {}
            prop_assert_eq!(emu.reg(fd), expect.to_bits());
        }
    }
}
