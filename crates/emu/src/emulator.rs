use std::error::Error;
use std::fmt;

use rvp_isa::{AluOp, Cond, FpuOp, Kind, MemWidth, Operand, Program, Reg, NUM_REGS};

use crate::memory::Memory;

/// Initial value of the stack pointer (`r30`); the stack grows downward
/// from here.
pub const STACK_TOP: u64 = 0x4000_0000;

/// One retired (committed) instruction, as observed at architectural
/// granularity.
///
/// `old_value` is the key field for this reproduction: it is the value the
/// destination *architectural* register held before the instruction
/// executed — exactly the prediction register value prediction supplies.
/// A prediction by the paper's same-register scheme is correct iff
/// `old_value == new_value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Committed {
    /// Dynamic instruction number (0-based).
    pub seq: u64,
    /// Static instruction index (PC).
    pub pc: usize,
    /// PC of the next committed instruction.
    pub next_pc: usize,
    /// Destination register, if the instruction writes one (writes to the
    /// zero registers are reported as `None`).
    pub dst: Option<Reg>,
    /// Value of `dst` before execution (0 when `dst` is `None`).
    pub old_value: u64,
    /// Value written to `dst` (0 when `dst` is `None`).
    pub new_value: u64,
    /// Effective byte address for loads and stores.
    pub eff_addr: Option<u64>,
    /// Branch outcome for conditional branches.
    pub taken: Option<bool>,
}

/// Error raised by [`Emulator::step`]. These indicate malformed programs,
/// not recoverable conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuError {
    /// Control flow left the program text.
    PcOutOfRange {
        /// The offending target.
        pc: usize,
    },
    /// A memory access was not aligned to its width.
    Misaligned {
        /// Effective address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
        /// PC of the access.
        pc: usize,
    },
    /// An indirect jump reached an address not in its declared target
    /// table.
    JumpOutsideTable {
        /// PC of the jump.
        pc: usize,
        /// The dynamic target that was not declared.
        target: usize,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "control flow left the program at pc {pc}"),
            EmuError::Misaligned { addr, width, pc } => {
                write!(f, "misaligned {width}-byte access to {addr:#x} at pc {pc}")
            }
            EmuError::JumpOutsideTable { pc, target } => {
                write!(f, "indirect jump at pc {pc} reached undeclared target {target}")
            }
        }
    }
}

impl Error for EmuError {}

/// Summary returned by [`Emulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Instructions committed during the call.
    pub committed: u64,
    /// Whether the program reached `halt`.
    pub halted: bool,
}

/// The architectural emulator.
///
/// Construct one per program run; [`Emulator::new`] loads the program's
/// data segments and initializes the stack pointer to [`STACK_TOP`].
#[derive(Debug, Clone)]
pub struct Emulator<'a> {
    program: &'a Program,
    regs: [u64; NUM_REGS],
    mem: Memory,
    pc: usize,
    seq: u64,
    halted: bool,
}

impl<'a> Emulator<'a> {
    /// Creates an emulator with the program's data segments loaded and
    /// `sp = STACK_TOP`.
    pub fn new(program: &'a Program) -> Emulator<'a> {
        let mut mem = Memory::new();
        for seg in program.data() {
            for (i, w) in seg.words.iter().enumerate() {
                mem.write_u64(seg.base + 8 * i as u64, *w);
            }
        }
        let mut regs = [0u64; NUM_REGS];
        regs[rvp_isa::analysis::abi::SP.index()] = STACK_TOP;
        Emulator { program, regs, mem, pc: program.entry(), seq: 0, halted: false }
    }

    /// The program being executed.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Current value of a register (zero registers always read 0).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Sets a register (writes to zero registers are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Read-only access to memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (for test fixtures).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Current PC.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Committed-instruction count so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(i) => i as u64,
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` once the program has halted.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] if the program is malformed (PC escapes the
    /// text, misaligned access, undeclared indirect-jump target).
    pub fn step(&mut self) -> Result<Option<Committed>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = self.program.inst(pc).ok_or(EmuError::PcOutOfRange { pc })?;

        let mut next_pc = pc + 1;
        let mut write: Option<(Reg, u64)> = None;
        let mut eff_addr = None;
        let mut taken = None;

        match &inst.kind {
            Kind::Alu { op, dst, a, b } => {
                let a = self.reg(*a);
                let b = self.operand(*b);
                let v = alu(*op, a, b);
                write = Some((*dst, v));
            }
            Kind::Fpu { op, dst, a, b } => {
                let a = f64::from_bits(self.reg(*a));
                let b = f64::from_bits(self.reg(*b));
                let v = match op {
                    FpuOp::FAdd => (a + b).to_bits(),
                    FpuOp::FSub => (a - b).to_bits(),
                    FpuOp::FMul => (a * b).to_bits(),
                    FpuOp::FDiv => (a / b).to_bits(),
                    FpuOp::FCmpEq => u64::from(a == b),
                    FpuOp::FCmpLt => u64::from(a < b),
                    FpuOp::FCmpLe => u64::from(a <= b),
                };
                write = Some((*dst, v));
            }
            Kind::Itof { dst, src } => {
                write = Some((*dst, (self.reg(*src) as i64 as f64).to_bits()));
            }
            Kind::Ftoi { dst, src } => {
                let v = f64::from_bits(self.reg(*src));
                // Saturating truncation, like Rust's `as`.
                write = Some((*dst, v as i64 as u64));
            }
            Kind::Li { dst, imm } => write = Some((*dst, *imm as u64)),
            Kind::Lif { dst, bits } => write = Some((*dst, *bits)),
            Kind::Ld { dst, base, disp, width } => {
                let addr = self.reg(*base).wrapping_add(*disp as u64);
                check_align(addr, *width, pc)?;
                eff_addr = Some(addr);
                let v = self.mem.read_bytes(addr, width.bytes() as usize);
                write = Some((*dst, v));
            }
            Kind::St { src, base, disp, width } => {
                let addr = self.reg(*base).wrapping_add(*disp as u64);
                check_align(addr, *width, pc)?;
                eff_addr = Some(addr);
                let v = self.reg(*src);
                self.mem.write_bytes(addr, v, width.bytes() as usize);
            }
            Kind::Br { target } => next_pc = *target,
            Kind::BrCond { cond, src, target } => {
                let v = self.reg(*src) as i64;
                let t = match cond {
                    Cond::Eq => v == 0,
                    Cond::Ne => v != 0,
                    Cond::Lt => v < 0,
                    Cond::Le => v <= 0,
                    Cond::Gt => v > 0,
                    Cond::Ge => v >= 0,
                };
                taken = Some(t);
                if t {
                    next_pc = *target;
                }
            }
            Kind::Bsr { dst, target } => {
                write = Some((*dst, (pc + 1) as u64));
                next_pc = *target;
            }
            Kind::Ret { base } => {
                next_pc = self.reg(*base) as usize;
            }
            Kind::Jmp { base, targets } => {
                let t = self.reg(*base) as usize;
                if !targets.contains(&t) {
                    return Err(EmuError::JumpOutsideTable { pc, target: t });
                }
                next_pc = t;
            }
            Kind::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Kind::Nop => {}
        }

        if !self.halted && next_pc >= self.program.len() {
            return Err(EmuError::PcOutOfRange { pc: next_pc });
        }

        let (dst, old_value, new_value) = match write {
            Some((d, v)) if !d.is_zero() => {
                let old = self.regs[d.index()];
                self.regs[d.index()] = v;
                (Some(d), old, v)
            }
            _ => (None, 0, 0),
        };

        let record =
            Committed { seq: self.seq, pc, next_pc, dst, old_value, new_value, eff_addr, taken };
        self.seq += 1;
        self.pc = next_pc;
        Ok(Some(record))
    }

    /// Runs until `halt` or until `max_insts` more instructions have
    /// committed, discarding trace records.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from [`Emulator::step`].
    pub fn run(&mut self, max_insts: u64) -> Result<RunSummary, EmuError> {
        let mut n = 0;
        while n < max_insts {
            match self.step()? {
                Some(_) => n += 1,
                None => break,
            }
        }
        Ok(RunSummary { committed: n, halted: self.halted })
    }
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32),
        AluOp::Srl => a.wrapping_shr(b as u32),
        AluOp::Sra => ((a as i64).wrapping_shr(b as u32)) as u64,
        AluOp::CmpEq => u64::from(a == b),
        AluOp::CmpLt => u64::from((a as i64) < (b as i64)),
        AluOp::CmpLtu => u64::from(a < b),
        AluOp::CmpLe => u64::from((a as i64) <= (b as i64)),
    }
}

fn check_align(addr: u64, width: MemWidth, pc: usize) -> Result<(), EmuError> {
    let w = width.bytes();
    if !addr.is_multiple_of(w) {
        Err(EmuError::Misaligned { addr, width: w, pc })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_isa::ProgramBuilder;

    fn run_program(b: &mut ProgramBuilder) -> (Vec<Committed>, Program) {
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        let mut trace = Vec::new();
        while let Some(c) = emu.step().unwrap() {
            trace.push(c);
        }
        (trace, p)
    }

    use rvp_isa::Program;

    #[test]
    fn arithmetic_and_old_values() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 5);
        b.add(r, r, 10);
        b.halt();
        let (trace, _) = run_program(&mut b);
        assert_eq!(trace[0].old_value, 0);
        assert_eq!(trace[0].new_value, 5);
        assert_eq!(trace[1].old_value, 5);
        assert_eq!(trace[1].new_value, 15);
    }

    #[test]
    fn same_register_reuse_shows_in_trace() {
        // A load that rewrites the value already present: old == new.
        let (r, base) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[7]);
        b.li(base, 0x1000);
        b.li(r, 7);
        b.ld(r, base, 0);
        b.halt();
        let (trace, _) = run_program(&mut b);
        let ld = &trace[2];
        assert_eq!(ld.old_value, 7);
        assert_eq!(ld.new_value, 7);
        assert_eq!(ld.eff_addr, Some(0x1000));
    }

    #[test]
    fn loop_commits_expected_count() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 4);
        b.label("top");
        b.subi(r, r, 1);
        b.bnez(r, "top");
        b.halt();
        let (trace, _) = run_program(&mut b);
        // li + 4*(sub+bne) + halt
        assert_eq!(trace.len(), 1 + 8 + 1);
        let taken: Vec<bool> = trace.iter().filter_map(|c| c.taken).collect();
        assert_eq!(taken, vec![true, true, true, false]);
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::int(1), 9);
        b.add(Reg::ZERO, Reg::int(1), 1);
        b.halt();
        let (trace, _) = run_program(&mut b);
        assert_eq!(trace[1].dst, None);
        assert_eq!(trace[1].new_value, 0);
    }

    #[test]
    fn memory_widths_zero_extend() {
        let (r, base) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[0xFFFF_FFFF_FFFF_FFFF]);
        b.li(base, 0x1000);
        b.ldb(r, base, 0);
        b.st(r, base, 8);
        b.ldw(r, base, 0);
        b.halt();
        let (trace, _) = run_program(&mut b);
        assert_eq!(trace[1].new_value, 0xFF);
        assert_eq!(trace[3].new_value, 0xFFFF_FFFF);
    }

    #[test]
    fn calls_and_returns() {
        use rvp_isa::analysis::abi;
        let mut b = ProgramBuilder::new();
        b.proc("main");
        b.li(Reg::int(16), 20);
        b.call("double");
        b.st(Reg::int(0), abi::SP, -8);
        b.halt();
        b.proc("double");
        b.add(Reg::int(0), Reg::int(16), Reg::int(16));
        b.ret(abi::RA);
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        while emu.step().unwrap().is_some() {}
        assert_eq!(emu.reg(Reg::int(0)), 40);
        assert_eq!(emu.memory().read_u64(STACK_TOP - 8), 40);
    }

    #[test]
    fn fp_pipeline() {
        let (f0, f1, f2) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
        let mut b = ProgramBuilder::new();
        b.lif(f0, 1.5);
        b.lif(f1, 2.0);
        b.fmul(f2, f0, f1);
        b.fcmplt(f0, f0, f2);
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        while emu.step().unwrap().is_some() {}
        assert_eq!(f64::from_bits(emu.reg(f2)), 3.0);
        assert_eq!(emu.reg(f0), 1); // 1.5 < 3.0
    }

    #[test]
    fn conversions() {
        let (r, f) = (Reg::int(1), Reg::fp(1));
        let mut b = ProgramBuilder::new();
        b.li(r, -3);
        b.itof(f, r);
        b.ftoi(r, f);
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        while emu.step().unwrap().is_some() {}
        assert_eq!(emu.reg(r) as i64, -3);
    }

    #[test]
    fn jump_table_dispatch() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 3); // index of label "b"
        b.jmp(r, &["a", "b"]);
        b.label("a");
        b.li(Reg::int(2), 100);
        b.label("b");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.label("b"), Some(3));
        let mut emu = Emulator::new(&p);
        while emu.step().unwrap().is_some() {}
        // Jumped straight to "b": the li at "a" never ran.
        assert_eq!(emu.reg(Reg::int(2)), 0);
    }

    #[test]
    fn undeclared_jump_target_errors() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 0);
        b.jmp(r, &["a"]);
        b.label("a");
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        assert_eq!(emu.step(), Err(EmuError::JumpOutsideTable { pc: 1, target: 0 }));
    }

    #[test]
    fn misaligned_access_errors() {
        let (r, base) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(base, 0x1001);
        b.ld(r, base, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        assert!(matches!(emu.step(), Err(EmuError::Misaligned { .. })));
    }

    #[test]
    fn falling_off_the_end_errors() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        assert!(matches!(emu.step(), Err(EmuError::PcOutOfRange { .. })));
    }

    #[test]
    fn run_respects_fuel() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 1_000_000);
        b.label("top");
        b.subi(r, r, 1);
        b.bnez(r, "top");
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        let s = emu.run(100).unwrap();
        assert_eq!(s.committed, 100);
        assert!(!s.halted);
        assert_eq!(emu.committed(), 100);
    }

    #[test]
    fn div_and_rem_by_zero_are_defined() {
        let (a, b_) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(a, 17);
        b.li(b_, 0);
        b.div(Reg::int(3), a, b_);
        b.rem(Reg::int(4), a, b_);
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        while emu.step().unwrap().is_some() {}
        assert_eq!(emu.reg(Reg::int(3)), 0);
        assert_eq!(emu.reg(Reg::int(4)), 17);
    }

    #[test]
    fn halt_is_recorded_then_stream_ends() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p);
        let c = emu.step().unwrap().unwrap();
        assert_eq!(c.pc, 0);
        assert!(emu.halted());
        assert_eq!(emu.step().unwrap(), None);
    }
}
