use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, paged byte-addressable memory.
///
/// Pages (4 KiB) are allocated lazily on first touch and zero-filled, so a
/// program may use any address without explicit mapping. Values are stored
/// little-endian.
///
/// # Examples
///
/// ```
/// use rvp_emu::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x2000), 0); // untouched memory reads zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory (all zeroes).
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = value;
    }

    /// Reads `n <= 8` bytes starting at `addr`, zero-extended into a u64.
    /// The access must not cross a page boundary unless it is composed of
    /// byte reads (this helper handles crossings correctly but slowly).
    pub fn read_bytes(&self, addr: u64, n: usize) -> u64 {
        debug_assert!(n <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                let mut buf = [0u8; 8];
                buf[..n].copy_from_slice(&p[off..off + n]);
                return u64::from_le_bytes(buf);
            }
            return 0;
        }
        let mut v = 0u64;
        for i in 0..n {
            v |= u64::from(self.read_u8(addr + i as u64)) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `value` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, value: u64, n: usize) {
        debug_assert!(n <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        let bytes = value.to_le_bytes();
        if off + n <= PAGE_SIZE {
            self.page_mut(addr)[off..off + n].copy_from_slice(&bytes[..n]);
            return;
        }
        for (i, b) in bytes[..n].iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads an aligned 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_bytes(addr, 8)
    }

    /// Writes an aligned 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, value, 8)
    }

    /// Reads an f64 stored at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an f64 at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Number of currently allocated pages (for tests and diagnostics).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_touch() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn round_trip_widths() {
        let mut m = Memory::new();
        m.write_bytes(0x100, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read_bytes(0x100, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read_bytes(0x100, 4), 0x5566_7788);
        assert_eq!(m.read_bytes(0x100, 1), 0x88);
        m.write_bytes(0x200, 0xAB, 1);
        assert_eq!(m.read_u8(0x200), 0xAB);
        assert_eq!(m.read_u8(0x201), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 4; // last 4 bytes of page 0
        m.write_bytes(addr, 0x0102_0304_0506_0708, 8);
        assert_eq!(m.read_bytes(addr, 8), 0x0102_0304_0506_0708);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(0x300, -1.25e10);
        assert_eq!(m.read_f64(0x300), -1.25e10);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u64(0, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0), 0x08);
        assert_eq!(m.read_u8(7), 0x01);
    }
}
