//! Functional (architectural) emulator for the RVP reproduction.
//!
//! The emulator executes [`rvp_isa::Program`]s at architectural
//! granularity and emits one [`Committed`] record per retired instruction.
//! That trace is the single source of architectural truth for every other
//! component:
//!
//! * the **profiler** replays it to measure register-value reuse;
//! * the **timing simulator** consumes it execution-driven, using
//!   [`Committed::old_value`] — the value the destination register held
//!   *before* the instruction executed — as the register-value-prediction
//!   oracle, and [`Committed::new_value`] as the truth it is checked
//!   against.
//!
//! # Examples
//!
//! ```
//! use rvp_isa::{ProgramBuilder, Reg};
//! use rvp_emu::Emulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r = Reg::int(1);
//! let mut b = ProgramBuilder::new();
//! b.li(r, 2);
//! b.add(r, r, 40);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut emu = Emulator::new(&program);
//! while let Some(c) = emu.step()? {
//!     if c.dst == Some(r) {
//!         println!("r1: {} -> {}", c.old_value, c.new_value);
//!     }
//! }
//! assert_eq!(emu.reg(r), 42);
//! # Ok(())
//! # }
//! ```

mod emulator;
mod memory;

pub use emulator::{Committed, EmuError, Emulator, RunSummary, STACK_TOP};
pub use memory::Memory;
