//! `rvp-serve`: the RVP simulator as a long-running service.
//!
//! A dependency-free HTTP/1.1 + JSON daemon that accepts sweep
//! requests (workload × scheme × recovery × budget overrides),
//! validates them, and schedules their cells on a worker pool using
//! the grid runner's cost-model (longest-cell-first) scheduling and
//! containment stack. Three properties define the design:
//!
//! * **Durability** — a sweep is journaled (checksummed, fsynced)
//!   before it is acknowledged; a killed daemon resumes in-flight
//!   sweeps on restart ([`journal`]).
//! * **Content addressing** — every cell result is cached under the
//!   same config fingerprint the grid manifest uses, so repeat queries
//!   are answered without simulating and a resumed sweep re-runs only
//!   what the kill interrupted ([`cache`]).
//! * **Containment** — cells run behind `catch_unwind`, retries and
//!   the source-degradation ladder; failures surface as structured
//!   JSON in the affected response, never as a dead daemon
//!   ([`server`]).
//!
//! The load-test harness (`rvp-serve-bench`) drives the daemon with
//! concurrent clients and gates latency/throughput in
//! `BENCH_serve.json`.

pub mod cache;
pub mod http;
pub mod journal;
pub mod server;
pub mod spec;

pub use cache::ResultCache;
pub use journal::JobJournal;
pub use server::{start, CellOutcome, Job, ServeConfig, ServerHandle};
pub use spec::SweepSpec;
