//! Durable job log.
//!
//! Every admitted sweep is appended (checksummed, fsynced) to
//! `serve_journal.jsonl` before the client hears "accepted"; a `done`
//! record is appended when its last cell lands. On startup the journal
//! is replayed — jobs with no `done` record are re-submitted, where
//! their already-simulated cells hit the result cache and only the
//! interrupted remainder re-runs. The replay then compacts the file to
//! just the still-pending jobs, so the journal stays proportional to
//! in-flight work, not daemon lifetime.
//!
//! Lines use the shared `rvp_core` journal format (`<fnv1a:016x>
//! <json>`): a torn tail from a crash mid-append is detected by
//! checksum and ignored, exactly like the grid manifest.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rvp_core::{journal_line, parse_journal_line, write_atomic};
use rvp_json::Json;
use rvp_obs::log;

/// Journal file name within the daemon state dir.
pub const JOURNAL_FILE: &str = "serve_journal.jsonl";

/// Failpoint consulted before every journal append.
pub const JOURNAL_APPEND_SITE: &str = "serve.journal.append";

const VERSION: u64 = 1;

/// Append-only job log with startup replay/compaction.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl JobJournal {
    /// Opens the journal under `state_dir`, replaying any previous
    /// incarnation first. Returns the journal and the pending (not
    /// `done`) jobs of the previous run as `(id, spec_json)`, in id
    /// order; the caller re-submits them.
    pub fn open(state_dir: &Path) -> io::Result<(JobJournal, Vec<(u64, Json)>)> {
        let path = state_dir.join(JOURNAL_FILE);
        let pending = replay(&path);

        // Compact: rewrite header + still-pending jobs, atomically, so
        // a crash during startup leaves either the old journal or the
        // compacted one.
        let mut text =
            journal_line(&Json::obj([("kind", "header".into()), ("version", VERSION.into())]));
        for (id, spec) in &pending {
            text.push_str(&job_record(*id, spec));
        }
        write_atomic(&path, text.as_bytes())?;

        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((JobJournal { path, file: Mutex::new(file) }, pending))
    }

    /// Durably records an admitted job. Called *before* the job is
    /// scheduled; an error here fails the submission (503) — a job the
    /// daemon could forget on restart is never accepted.
    pub fn append_job(&self, id: u64, spec: &Json) -> io::Result<()> {
        self.append(&job_record(id, spec))
    }

    /// Records a finished job. Best-effort by contract: if this append
    /// is lost, restart re-submits a fully-cached job, which completes
    /// instantly without re-simulation.
    pub fn append_done(&self, id: u64) {
        let record = journal_line(&Json::obj([("kind", "done".into()), ("id", id.into())]));
        if let Err(e) = self.append(&record) {
            log::warn(
                "rvp-serve",
                "could not journal job completion; job will be re-checked on restart",
                &[("id", id.into()), ("error", e.to_string().into())],
            );
        }
    }

    fn append(&self, record: &str) -> io::Result<()> {
        rvp_fail::io_at(JOURNAL_APPEND_SITE)?;
        let mut file = self.file.lock().unwrap();
        file.write_all(record.as_bytes())?;
        file.sync_data()
    }

    /// Journal path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn job_record(id: u64, spec: &Json) -> String {
    journal_line(&Json::obj([("kind", "job".into()), ("id", id.into()), ("spec", spec.clone())]))
}

/// Reads a previous journal, tolerating a missing file, a torn tail
/// and unknown records. Returns the jobs without a `done` record.
fn replay(path: &Path) -> Vec<(u64, Json)> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            if f.read_to_string(&mut text).is_err() {
                return Vec::new();
            }
        }
        Err(_) => return Vec::new(),
    }
    let mut jobs: Vec<(u64, Json)> = Vec::new();
    let mut saw_header = false;
    for line in text.lines() {
        let Some(record) = parse_journal_line(line) else { continue };
        match record.get("kind").and_then(Json::as_str) {
            Some("header") => {
                saw_header = record.get("version").and_then(Json::as_u64) == Some(VERSION);
            }
            Some("job") if saw_header => {
                if let (Some(id), Some(spec)) =
                    (record.get("id").and_then(Json::as_u64), record.get("spec"))
                {
                    jobs.retain(|(existing, _)| *existing != id);
                    jobs.push((id, spec.clone()));
                }
            }
            Some("done") if saw_header => {
                if let Some(id) = record.get("id").and_then(Json::as_u64) {
                    jobs.retain(|(existing, _)| *existing != id);
                }
            }
            _ => {}
        }
    }
    jobs.sort_by_key(|(id, _)| *id);
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rvp-serve-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(n: u64) -> Json {
        Json::obj([("workloads", Json::arr([Json::from("li")])), ("n", n.into())])
    }

    #[test]
    fn journal_replays_pending_jobs_and_compacts_done_ones() {
        let dir = tmp("replay");
        {
            let (journal, pending) = JobJournal::open(&dir).unwrap();
            assert!(pending.is_empty());
            journal.append_job(1, &spec(1)).unwrap();
            journal.append_job(2, &spec(2)).unwrap();
            journal.append_done(1);
        }
        // Simulate a torn tail from a crash mid-append.
        {
            let mut f = OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
            f.write_all(b"0123456789abcdef {\"kind\":\"done\",\"id\":2}\n").unwrap();
        }
        let (_journal, pending) = JobJournal::open(&dir).unwrap();
        assert_eq!(pending.len(), 1, "job 1 is done, job 2 pending, torn line ignored");
        assert_eq!(pending[0].0, 2);
        assert_eq!(pending[0].1.get("n").and_then(Json::as_u64), Some(2));
        // Compaction dropped the done job: a third open sees the same
        // single pending job even though the file was rewritten.
        let (_journal, pending) = JobJournal::open(&dir).unwrap();
        assert_eq!(pending.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_without_header_is_ignored() {
        let dir = tmp("noheader");
        std::fs::write(
            dir.join(JOURNAL_FILE),
            journal_line(&Json::obj([
                ("kind", "job".into()),
                ("id", 5u64.into()),
                ("spec", spec(5)),
            ])),
        )
        .unwrap();
        let (_journal, pending) = JobJournal::open(&dir).unwrap();
        assert!(pending.is_empty(), "records before a valid header are untrusted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
