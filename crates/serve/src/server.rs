//! The daemon: listener, handler threads, durable job queue, sim
//! worker pool and the HTTP API.
//!
//! # Request lifecycle
//!
//! ```text
//! POST /sweep
//!   parse + validate          -> 400 on anything malformed
//!   per-cell cache lookup     -> hits answered without simulating
//!   admission check           -> 429 + Retry-After when the queue is full
//!   journal append (fsync)    -> 503 if the job cannot be made durable
//!   schedule misses           -> longest-estimated-cell-first, single-flight
//!   wait=true  -> block until done, 200 with per-cell results
//!   wait=false -> 202 {"job": id}, poll GET /jobs/<id>
//! ```
//!
//! A killed daemon restarts by replaying the journal: pending jobs are
//! re-submitted, their finished cells hit the content-addressed cache
//! (bit-identical bytes), and only the interrupted remainder
//! re-simulates.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rvp_bench::grid::{run_one_cell, CellOptions, GridCell};
use rvp_core::Runner;
use rvp_json::{Json, ToJson};
use rvp_obs::{log, span, Clock, Metric, MetricsRegistry, ServeMetrics};
use rvp_trace::TraceStore;

use crate::cache::ResultCache;
use crate::http::{read_request, write_json_response, write_text_response, HttpError, Request};
use crate::journal::JobJournal;
use crate::spec::SweepSpec;

/// Daemon configuration (CLI flags map 1:1 onto these).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7341` (`:0` picks a free port).
    pub addr: String,
    /// State directory: journal, result cache, cell files, trace store.
    pub state_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Admission bound: maximum queued-or-running cells. A sweep whose
    /// misses would push past this is rejected with 429.
    pub max_queue: usize,
    /// Maximum concurrent connections; beyond it, accepts are answered
    /// 503 immediately instead of piling up handler threads.
    pub max_connections: usize,
    /// Per-cell transient-failure retries (see [`CellOptions`]).
    pub retries: u32,
}

impl ServeConfig {
    /// Defaults for everything but the address and state directory.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            state_dir: state_dir.into(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_queue: 1024,
            max_connections: 2048,
            retries: 2,
        }
    }
}

/// How one cell of a job ended.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Result JSON (one line, trailing newline), and whether it came
    /// from the cache rather than a fresh simulation.
    Done {
        /// The cell JSON bytes, shared with the cache.
        text: Arc<str>,
        /// Served from the result cache.
        cached: bool,
    },
    /// The cell failed every containment rung; the error is reported
    /// in-band and the rest of the sweep is unaffected.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
}

#[derive(Debug)]
struct CellSlot {
    label: String,
    fingerprint: u64,
    outcome: Option<CellOutcome>,
}

#[derive(Debug)]
struct JobState {
    cells: Vec<CellSlot>,
    remaining: usize,
}

/// One admitted sweep.
#[derive(Debug)]
pub struct Job {
    /// Stable id, also across daemon restarts (journaled).
    pub id: u64,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl Job {
    fn new(id: u64, slots: Vec<CellSlot>) -> Job {
        let remaining = slots.iter().filter(|s| s.outcome.is_none()).count();
        Job { id, state: Mutex::new(JobState { cells: slots, remaining }), cv: Condvar::new() }
    }

    /// Fills one cell; returns true when this completed the job.
    /// Deliberately does NOT wake waiters — the worker journals the
    /// completion first, so a client's 200 can never outrun the done
    /// record's fsync. Call [`Job::notify_done`] afterwards.
    fn fill(&self, idx: usize, outcome: CellOutcome) -> bool {
        let mut state = self.state.lock().unwrap();
        let slot = &mut state.cells[idx];
        if slot.outcome.is_some() {
            return false;
        }
        slot.outcome = Some(outcome);
        state.remaining -= 1;
        state.remaining == 0
    }

    /// Wakes everyone blocked in [`Job::wait`].
    fn notify_done(&self) {
        self.cv.notify_all();
    }

    /// Whether every cell has an outcome.
    pub fn is_done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }

    /// Blocks until the job completes.
    pub fn wait(&self) {
        let mut state = self.state.lock().unwrap();
        while state.remaining > 0 {
            state = self.cv.wait(state).unwrap();
        }
    }

    /// The job as the API reports it.
    pub fn to_json(&self) -> Json {
        let state = self.state.lock().unwrap();
        let mut cached = 0u64;
        let mut computed = 0u64;
        let mut failed = 0u64;
        let cells: Vec<Json> = state
            .cells
            .iter()
            .map(|slot| {
                let base = [
                    ("label", Json::from(slot.label.as_str())),
                    ("fingerprint", format!("{:016x}", slot.fingerprint).into()),
                ];
                match &slot.outcome {
                    None => Json::obj(base.into_iter().chain([("status", "pending".into())])),
                    Some(CellOutcome::Done { text, cached: was_cached }) => {
                        if *was_cached {
                            cached += 1;
                        } else {
                            computed += 1;
                        }
                        let result =
                            Json::parse(text).unwrap_or_else(|_| Json::from("unparseable"));
                        Json::obj(
                            base.into_iter()
                                .chain([("cached", (*was_cached).into()), ("result", result)]),
                        )
                    }
                    Some(CellOutcome::Failed { error }) => {
                        failed += 1;
                        Json::obj(base.into_iter().chain([("error", Json::from(error.as_str()))]))
                    }
                }
            })
            .collect();
        Json::obj([
            ("job", self.id.into()),
            ("status", if state.remaining == 0 { "done" } else { "running" }.into()),
            ("total", (state.cells.len() as u64).into()),
            ("remaining", (state.remaining as u64).into()),
            ("cached", cached.into()),
            ("computed", computed.into()),
            ("failed", failed.into()),
            ("cells", Json::arr(cells)),
        ])
    }
}

/// One schedulable unit: a (workload × scheme × config) cell.
struct CellTask {
    /// Estimated cost in arbitrary-but-consistent microseconds; the
    /// queue is a max-heap on this, so the longest cells start first
    /// and the sweep's wall clock is not hostage to a long tail.
    cost_us: u64,
    /// Admission order; earlier wins ties so equal-cost cells are FIFO.
    seq: u64,
    fingerprint: u64,
    /// Tracer timestamp at admission; the worker that dequeues this
    /// task back-fills a `serve.queue.wait` span from it.
    enqueued_us: u64,
    /// The admitting request's span id, so the worker-side exec span
    /// parents onto the request that caused it (cross-thread).
    parent_span: u64,
    /// The admitting job's id (correlation with `RVP_LOG` lines).
    job_id: u64,
    cell: GridCell,
    runner: Runner,
}

impl PartialEq for CellTask {
    fn eq(&self, other: &CellTask) -> bool {
        self.cost_us == other.cost_us && self.seq == other.seq
    }
}
impl Eq for CellTask {}
impl PartialOrd for CellTask {
    fn partial_cmp(&self, other: &CellTask) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CellTask {
    fn cmp(&self, other: &CellTask) -> std::cmp::Ordering {
        self.cost_us.cmp(&other.cost_us).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct Sched {
    queue: BinaryHeap<CellTask>,
    /// Fingerprints queued or being simulated right now (single-flight:
    /// concurrent identical requests share one simulation).
    inflight: HashSet<u64>,
    /// Cells waiting on an in-flight fingerprint: `(job, cell index)`.
    waiters: HashMap<u64, Vec<(Arc<Job>, usize)>>,
    seq: u64,
}

struct Inner {
    cfg: ServeConfig,
    base: Runner,
    cells_dir: PathBuf,
    cache: ResultCache,
    journal: JobJournal,
    metrics: Arc<ServeMetrics>,
    /// Every counter family in the process, unified for `/metrics`.
    registry: MetricsRegistry,
    /// Monotonic clock for request latency (mockable in tests).
    clock: Clock,
    /// False until the journal replay finishes; `/readyz` gates on it.
    ready: Arc<AtomicBool>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    sched: Mutex<Sched>,
    queue_cv: Condvar,
    /// Learned per-label cell cost (seconds), EWMA over completions.
    costs: Mutex<HashMap<String, f64>>,
    stop: AtomicBool,
    active_conns: AtomicUsize,
}

/// Why a sweep submission was refused.
enum SubmitError {
    /// Admission queue full; retry later.
    Busy {
        /// Cells the sweep needed to enqueue.
        misses: usize,
    },
    /// The result cache failed on the read path.
    Cache(io::Error),
    /// The job could not be made durable.
    Journal(io::Error),
}

/// A running daemon; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`], or keep it alive forever via
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side metrics, shared with the daemon.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Blocks forever serving requests (the binary's main thread).
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Graceful-enough stop for tests and benches: stop accepting,
    /// wake the workers, join them. In-flight handler threads finish
    /// their current response on their own; queued-but-unstarted cells
    /// stay journaled and resume on the next start.
    pub fn shutdown(self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.inner.queue_cv.notify_all();
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Boots the daemon: opens state, replays the journal, binds the
/// listener, and spawns the accept thread and the worker pool.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let cells_dir = cfg.state_dir.join("cells");
    std::fs::create_dir_all(&cells_dir)?;
    let cache = ResultCache::open(&cfg.state_dir)?;
    let (journal, pending) = JobJournal::open(&cfg.state_dir)?;

    let mut base = Runner::default();
    if base.traces.is_none() {
        base.traces = Some(
            TraceStore::new(cfg.state_dir.join("traces"))
                .map_err(|e| io::Error::other(format!("cannot open trace store: {e}")))?,
        );
    }

    let next_id = pending.iter().map(|(id, _)| *id).max().unwrap_or(0) + 1;
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    // The daemon always traces: the ring is bounded (drop-newest), the
    // overhead is covered by the obs_overhead gate, and `GET /trace`
    // is only useful when there is something in it.
    span::arm(span::DEFAULT_RING_CAPACITY);

    let inner = Arc::new(Inner {
        cfg,
        base,
        cells_dir,
        cache,
        journal,
        metrics: Arc::new(ServeMetrics::new()),
        registry: MetricsRegistry::new(),
        clock: Clock::monotonic(),
        ready: Arc::new(AtomicBool::new(false)),
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(next_id),
        sched: Mutex::new(Sched::default()),
        queue_cv: Condvar::new(),
        costs: Mutex::new(HashMap::new()),
        stop: AtomicBool::new(false),
        active_conns: AtomicUsize::new(0),
    });
    register_collectors(&inner);

    // Re-submit interrupted jobs on a background thread: finished cells
    // hit the cache, the rest re-simulate. The listener accepts right
    // away — `/healthz` answers (liveness) while `/readyz` returns 503
    // until the replay lands every pending job back in the queue.
    {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("serve-replay".to_owned())
            .spawn(move || {
                let _span = span!("serve.journal.replay", { pending: pending.len() });
                for (id, spec_json) in pending {
                    match SweepSpec::from_json(&spec_json, &inner.base) {
                        Ok(spec) => match submit(&inner, spec, Some(id)) {
                            Ok(job) => {
                                inner.metrics.jobs_resumed.fetch_add(1, Ordering::Relaxed);
                                log::info(
                                    "rvp-serve",
                                    "resumed journaled job",
                                    &[("id", id.into()), ("done", job.is_done().into())],
                                );
                            }
                            Err(_) => log::warn(
                                "rvp-serve",
                                "could not resume journaled job",
                                &[("id", id.into())],
                            ),
                        },
                        Err(e) => log::warn(
                            "rvp-serve",
                            "journaled job spec no longer parses; dropping it",
                            &[("id", id.into()), ("error", e.into())],
                        ),
                    }
                }
                inner.ready.store(true, Ordering::SeqCst);
            })
            .expect("spawn journal replay");
    }

    let workers = (0..inner.cfg.workers)
        .map(|i| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(&inner, listener))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle { addr, inner, accept, workers })
}

/// Wires every counter family in the process into the unified registry:
/// the daemon's own [`ServeMetrics`], the runner's per-workload source
/// tallies, the trace store's cache/quarantine counters, and
/// `rvp-fail`'s fired-site counters.
fn register_collectors(inner: &Arc<Inner>) {
    let metrics = Arc::clone(&inner.metrics);
    inner.registry.register(move || metrics.metrics());
    let sources = inner.base.source_counters.clone();
    inner.registry.register(move || sources.metrics());
    if let Some(store) = &inner.base.traces {
        let counters = Arc::clone(store.counters());
        inner.registry.register(move || counters.metrics());
    }
    inner.registry.register(|| {
        rvp_fail::snapshot()
            .into_iter()
            .map(|(site, n)| Metric::counter("rvp_fail_fired_total", n).with_label("site", site))
            .collect()
    });
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = inner.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
        if active > inner.cfg.max_connections {
            inner.active_conns.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = write_json_response(
                &mut stream,
                503,
                &[("Retry-After", "1".to_owned())],
                &Json::obj([("error", "connection limit reached".into())]),
            );
            continue;
        }
        let inner = Arc::clone(inner);
        let _ = std::thread::Builder::new().name("serve-conn".to_owned()).spawn(move || {
            handle_connection(&inner, stream);
            inner.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(120)));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(why)) => {
                inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
                respond(inner, &mut write_half, 400, &[], error_body(why));
                return;
            }
            Err(HttpError::TooLarge(why)) => {
                inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
                respond(inner, &mut write_half, 413, &[], error_body(why));
                return;
            }
        };
        inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let started_us = inner.clock.now_us();
        let mut req_span = span!("serve.request", {
            method: request.method.as_str(),
            path: request.path.as_str(),
        });
        let (status, headers, body) = route(inner, &request);
        req_span.add_field("status", u64::from(status));
        drop(req_span);
        inner.metrics.request_latency.record_us(inner.clock.now_us().saturating_sub(started_us));
        respond(inner, &mut write_half, status, &headers, body);
        if !request.keep_alive {
            return;
        }
    }
}

/// A routed response body: JSON for the API proper, plain text for the
/// Prometheus exposition and folded stacks.
enum Body {
    Json(Json),
    Text { content_type: &'static str, text: String },
}

fn respond(
    inner: &Inner,
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    body: Body,
) {
    match status {
        429 => {
            inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        }
        400..=499 => {
            inner.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        500..=599 => {
            inner.metrics.server_errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    let written = match &body {
        Body::Json(json) => write_json_response(stream, status, headers, json),
        Body::Text { content_type, text } => {
            write_text_response(stream, status, content_type, headers, text)
        }
    };
    if let Err(e) = written {
        log::debug(
            "rvp-serve",
            "client went away before the response landed",
            &[("error", e.to_string().into())],
        );
    }
}

fn error_body(message: impl std::fmt::Display) -> Body {
    Body::Json(Json::obj([("error", message.to_string().into())]))
}

type Routed = (u16, Vec<(&'static str, String)>, Body);

fn route(inner: &Arc<Inner>, request: &Request) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/sweep") => sweep_endpoint(inner, &request.body),
        ("GET", "/metrics") => {
            if request.query_param("format") == Some("prom") {
                let text = inner.registry.to_prometheus();
                (200, Vec::new(), Body::Text { content_type: "text/plain; version=0.0.4", text })
            } else {
                (200, Vec::new(), Body::Json(inner.metrics.to_json()))
            }
        }
        ("GET", "/healthz") => {
            // Liveness only: the process is up and routing requests.
            // Readiness (journal replayed, safe to submit) is `/readyz`.
            let body = Json::obj([
                ("ok", true.into()),
                ("jobs", (inner.jobs.lock().unwrap().len() as u64).into()),
                ("cache_resident", (inner.cache.resident() as u64).into()),
            ]);
            (200, Vec::new(), Body::Json(body))
        }
        ("GET", "/readyz") => {
            if inner.ready.load(Ordering::SeqCst) {
                (200, Vec::new(), Body::Json(Json::obj([("ready", true.into())])))
            } else {
                let body = Json::obj([
                    ("ready", false.into()),
                    ("reason", "journal replay in progress".into()),
                ]);
                (503, vec![("Retry-After", "1".to_owned())], Body::Json(body))
            }
        }
        ("GET", "/trace") => {
            let data = span::snapshot();
            if request.query_param("format") == Some("folded") {
                let text = span::folded_stacks(&data);
                (200, Vec::new(), Body::Text { content_type: "text/plain", text })
            } else {
                (200, Vec::new(), Body::Json(span::chrome_trace_json(&data)))
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            match path["/jobs/".len()..].parse::<u64>() {
                Err(_) => (400, Vec::new(), error_body("job id must be an integer")),
                Ok(id) => match inner.jobs.lock().unwrap().get(&id) {
                    None => (404, Vec::new(), error_body(format!("no such job: {id}"))),
                    Some(job) => (200, Vec::new(), Body::Json(job.to_json())),
                },
            }
        }
        (_, "/sweep" | "/metrics" | "/healthz" | "/readyz" | "/trace") => {
            (405, Vec::new(), error_body("method not allowed"))
        }
        _ => (404, Vec::new(), error_body(format!("no such endpoint: {}", request.path))),
    }
}

fn sweep_endpoint(inner: &Arc<Inner>, body: &[u8]) -> Routed {
    let parse_span = span!("serve.parse", { bytes: body.len() });
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, Vec::new(), error_body("body is not UTF-8")),
    };
    let parsed = match Json::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => return (400, Vec::new(), error_body(format!("bad JSON: {e}"))),
    };
    let spec = match SweepSpec::from_json(&parsed, &inner.base) {
        Ok(spec) => spec,
        Err(e) => return (400, Vec::new(), error_body(e)),
    };
    drop(parse_span);
    let wait = parsed.get("wait").and_then(Json::as_bool).unwrap_or(false);

    let job = match submit(inner, spec, None) {
        Ok(job) => job,
        Err(SubmitError::Busy { misses }) => {
            let body = Json::obj([
                ("error", "admission queue full".into()),
                ("needed", (misses as u64).into()),
                ("max_queue", (inner.cfg.max_queue as u64).into()),
            ]);
            return (429, vec![("Retry-After", "1".to_owned())], Body::Json(body));
        }
        Err(SubmitError::Cache(e)) => {
            return (500, Vec::new(), error_body(format!("result cache read failed: {e}")));
        }
        Err(SubmitError::Journal(e)) => {
            return (503, Vec::new(), error_body(format!("job journal append failed: {e}")));
        }
    };
    if wait {
        job.wait();
    }
    if job.is_done() {
        (200, Vec::new(), Body::Json(job.to_json()))
    } else {
        let body = Json::obj([
            ("job", job.id.into()),
            ("status", "queued".into()),
            ("poll", format!("/jobs/{}", job.id).into()),
        ]);
        (202, Vec::new(), Body::Json(body))
    }
}

/// Admits one sweep: cache lookups, admission control, durable journal
/// append, scheduling. `resume_id` marks a journal replay — the job
/// keeps its id, skips re-journaling (the compacted journal already
/// has it) and treats cache-read trouble as a miss instead of refusing
/// the job it must not lose.
fn submit(
    inner: &Arc<Inner>,
    spec: SweepSpec,
    resume_id: Option<u64>,
) -> Result<Arc<Job>, SubmitError> {
    let resumed = resume_id.is_some();
    // The enclosing request span (or replay span); queue-wait and
    // worker-side exec spans parent onto it across threads.
    let request_span = span::current();
    let admission_span = span!("serve.admission", { cells: spec.cells().len() });
    let cells = spec.cells();
    let mut slots = Vec::with_capacity(cells.len());
    let mut misses: Vec<usize> = Vec::new();
    for (idx, cell) in cells.iter().enumerate() {
        let fingerprint = spec.cell_fingerprint(&inner.base, cell);
        let outcome = match inner.cache.get(fingerprint) {
            Ok(Some(text)) => {
                inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                Some(CellOutcome::Done { text, cached: true })
            }
            Ok(None) => None,
            Err(e) if resumed => {
                log::warn(
                    "rvp-serve",
                    "cache read failed during resume; re-simulating the cell",
                    &[("error", e.to_string().into())],
                );
                None
            }
            Err(e) => return Err(SubmitError::Cache(e)),
        };
        if outcome.is_none() {
            inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            misses.push(idx);
        }
        slots.push(CellSlot { label: cell.label(), fingerprint, outcome });
    }

    if !misses.is_empty() {
        let depth = inner.metrics.queue_depth.load(Ordering::Relaxed) as usize;
        if depth + misses.len() > inner.cfg.max_queue {
            return Err(SubmitError::Busy { misses: misses.len() });
        }
    }
    drop(admission_span);

    let id = resume_id.unwrap_or_else(|| inner.next_id.fetch_add(1, Ordering::SeqCst));
    if !misses.is_empty() && !resumed {
        // Durable before acknowledged: a job the daemon accepted must
        // survive a kill from this point on.
        let _span = span!("serve.journal.append", { job: id });
        let record = Json::obj([("spec", spec.to_json())]);
        inner.journal.append_job(id, record.get("spec").unwrap()).map_err(SubmitError::Journal)?;
    }

    let job = Arc::new(Job::new(id, slots));
    inner.jobs.lock().unwrap().insert(id, Arc::clone(&job));
    inner.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);

    if misses.is_empty() {
        inner.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if resumed {
            // The journal still lists this job; close it out.
            inner.journal.append_done(id);
        }
        return Ok(job);
    }

    let runner = spec.runner_for(&inner.base);
    let mut enqueued = 0u64;
    {
        let mut sched = inner.sched.lock().unwrap();
        for idx in misses {
            let fingerprint = {
                let state = job.state.lock().unwrap();
                state.cells[idx].fingerprint
            };
            sched.waiters.entry(fingerprint).or_default().push((Arc::clone(&job), idx));
            if !sched.inflight.insert(fingerprint) {
                // Single-flight: ride the simulation already queued.
                continue;
            }
            let cell = GridCell {
                workload: cells[idx].workload.clone(),
                scheme: cells[idx].scheme.clone(),
            };
            let cost_us = estimate_us(inner, &cell, &runner);
            sched.seq += 1;
            let seq = sched.seq;
            sched.queue.push(CellTask {
                cost_us,
                seq,
                fingerprint,
                enqueued_us: span::now_us(),
                parent_span: request_span,
                job_id: id,
                cell,
                runner: runner.clone(),
            });
            enqueued += 1;
        }
    }
    if enqueued > 0 {
        inner.metrics.queue_enter(enqueued);
        inner.queue_cv.notify_all();
    }
    Ok(job)
}

/// Estimated cell cost in scheduler microseconds: the learned per-label
/// EWMA when one exists, otherwise proportional to the instruction
/// budgets (the same heuristic the grid scheduler starts from).
fn estimate_us(inner: &Inner, cell: &GridCell, runner: &Runner) -> u64 {
    let label = cell.label();
    if let Some(seconds) = inner.costs.lock().unwrap().get(&label) {
        return (seconds * 1e6) as u64;
    }
    (runner.measure_insts + runner.profile_insts) / 5
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let task = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(task) = sched.queue.pop() {
                    break task;
                }
                sched = inner.queue_cv.wait(sched).unwrap();
            }
        };
        if span::armed() {
            // The time this cell sat in the queue, attributed back to
            // the request (or replay) that admitted it.
            span::record(
                "serve.queue.wait",
                task.parent_span,
                task.enqueued_us,
                span::now_us(),
                vec![("cell".into(), task.cell.label().into()), ("job".into(), task.job_id.into())],
            );
        }
        let outcome = {
            let _exec = span::child_of(task.parent_span, "serve.cell.exec", || {
                vec![("cell".into(), task.cell.label().into()), ("job".into(), task.job_id.into())]
            });
            execute(inner, &task)
        };
        let waiters = {
            let mut sched = inner.sched.lock().unwrap();
            sched.inflight.remove(&task.fingerprint);
            sched.waiters.remove(&task.fingerprint).unwrap_or_default()
        };
        for (job, idx) in waiters {
            if job.fill(idx, outcome.clone()) {
                // Durable before observable: the done record lands
                // before any `wait=true` handler can send its 200.
                inner.journal.append_done(job.id);
                inner.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                job.notify_done();
            }
        }
        inner.metrics.queue_exit(1);
    }
}

/// Runs one cell with the grid's full containment stack (panic
/// catching, transient retries, source-degradation ladder) and caches
/// the result. Failures come back as data, never as a dead worker.
fn execute(inner: &Arc<Inner>, task: &CellTask) -> CellOutcome {
    let opts = CellOptions { retries: inner.cfg.retries, timeout_secs: 0 };
    let started = Instant::now();
    match run_one_cell(&task.runner, &task.cell, opts, &inner.cells_dir) {
        Ok(success) => {
            let seconds = started.elapsed().as_secs_f64();
            let mut costs = inner.costs.lock().unwrap();
            let est = costs.entry(task.cell.label()).or_insert(seconds);
            *est = 0.5 * *est + 0.5 * seconds;
            drop(costs);
            inner.metrics.cells_computed.fetch_add(1, Ordering::Relaxed);
            let text = match success.result {
                Some(result) => format!("{}\n", result.to_json()),
                // Unreachable for freshly-run cells, but stay graceful.
                None => "{}\n".to_owned(),
            };
            if let Err(e) = inner.cache.put(task.fingerprint, &text) {
                log::warn(
                    "rvp-serve",
                    "cell computed but cache write failed; serving from memory only",
                    &[
                        ("fingerprint", format!("{:016x}", task.fingerprint).into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
            CellOutcome::Done { text: text.into(), cached: false }
        }
        Err(poisoned) => {
            inner.metrics.cells_failed.fetch_add(1, Ordering::Relaxed);
            CellOutcome::Failed {
                error: format!(
                    "cell {} poisoned at stage {} after {} attempts: {}",
                    poisoned.label, poisoned.stage, poisoned.attempts, poisoned.error
                ),
            }
        }
    }
}
