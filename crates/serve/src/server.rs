//! The daemon: listener, handler threads, durable job queue, sim
//! worker pool and the HTTP API.
//!
//! # Request lifecycle
//!
//! ```text
//! POST /sweep
//!   parse + validate          -> 400 on anything malformed
//!   per-cell cache lookup     -> hits answered without simulating
//!   admission check           -> 429 + Retry-After when the queue is full
//!   journal append (fsync)    -> 503 if the job cannot be made durable
//!   schedule misses           -> longest-estimated-cell-first, single-flight
//!   wait=true  -> block until done, 200 with per-cell results
//!   wait=false -> 202 {"job": id}, poll GET /jobs/<id>
//! ```
//!
//! A killed daemon restarts by replaying the journal: pending jobs are
//! re-submitted, their finished cells hit the content-addressed cache
//! (bit-identical bytes), and only the interrupted remainder
//! re-simulates.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rvp_bench::grid::{run_one_cell, CellOptions, GridCell};
use rvp_core::Runner;
use rvp_json::{Json, ToJson};
use rvp_obs::{log, span, CancelToken, Clock, Metric, MetricsRegistry, ServeMetrics};
use rvp_trace::TraceStore;

use crate::cache::ResultCache;
use crate::http::{read_request, write_json_response, write_text_response, HttpError, Request};
use crate::journal::JobJournal;
use crate::spec::SweepSpec;

/// Daemon configuration (CLI flags map 1:1 onto these).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7341` (`:0` picks a free port).
    pub addr: String,
    /// State directory: journal, result cache, cell files, trace store.
    pub state_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Admission bound: maximum queued-or-running cells. A sweep whose
    /// misses would push past this is rejected with 429.
    pub max_queue: usize,
    /// Maximum concurrent connections; beyond it, accepts are answered
    /// 503 immediately instead of piling up handler threads.
    pub max_connections: usize,
    /// Per-cell transient-failure retries (see [`CellOptions`]).
    pub retries: u32,
    /// Default per-job deadline in seconds (`0` = none). A request can
    /// only tighten it (`deadline_ms` in the sweep body); a job over
    /// deadline has its in-flight cells cooperatively squashed.
    pub deadline_secs: u64,
    /// Graceful-drain window in seconds: how long SIGTERM or
    /// `POST /shutdown` lets in-flight jobs finish before squashing
    /// the survivors (their journal records stay pending for resume).
    pub drain_secs: u64,
    /// Overload shedding threshold: when the queue-wait EWMA exceeds
    /// this many milliseconds *and* the queue is deeper than the worker
    /// pool, new sweeps are shed with 429 (`0` = disabled).
    pub shed_delay_ms: u64,
    /// Result-cache disk budget in bytes (`0` = unlimited); beyond it,
    /// least-recently-used entries are evicted after each write.
    pub cache_budget_bytes: u64,
    /// Trace-store disk budget in bytes (`0` = unlimited).
    pub trace_budget_bytes: u64,
    /// Socket read timeout in seconds: a client that stalls mid-request
    /// this long gets a 408; an idle keep-alive connection is reaped
    /// silently (the slowloris guard).
    pub read_timeout_secs: u64,
}

impl ServeConfig {
    /// Defaults for everything but the address and state directory.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            state_dir: state_dir.into(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_queue: 1024,
            max_connections: 2048,
            retries: 2,
            deadline_secs: 0,
            drain_secs: 30,
            shed_delay_ms: 0,
            cache_budget_bytes: 0,
            trace_budget_bytes: 0,
            read_timeout_secs: 10,
        }
    }
}

/// How one cell of a job ended.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Result JSON (one line, trailing newline), and whether it came
    /// from the cache rather than a fresh simulation.
    Done {
        /// The cell JSON bytes, shared with the cache.
        text: Arc<str>,
        /// Served from the result cache.
        cached: bool,
    },
    /// The cell failed every containment rung; the error is reported
    /// in-band and the rest of the sweep is unaffected.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
}

#[derive(Debug)]
struct CellSlot {
    label: String,
    fingerprint: u64,
    outcome: Option<CellOutcome>,
}

#[derive(Debug)]
struct JobState {
    cells: Vec<CellSlot>,
    remaining: usize,
}

/// One admitted sweep.
#[derive(Debug)]
pub struct Job {
    /// Stable id, also across daemon restarts (journaled).
    pub id: u64,
    /// Fired when the job is aborted (`DELETE /jobs/<id>`, client
    /// disconnect, deadline, drain squash); sticky, first reason wins.
    pub cancel: CancelToken,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl Job {
    fn new(id: u64, slots: Vec<CellSlot>) -> Job {
        let remaining = slots.iter().filter(|s| s.outcome.is_none()).count();
        Job {
            id,
            cancel: CancelToken::new(),
            state: Mutex::new(JobState { cells: slots, remaining }),
            cv: Condvar::new(),
        }
    }

    /// Fills one cell; returns true when this completed the job.
    /// Deliberately does NOT wake waiters — the worker journals the
    /// completion first, so a client's 200 can never outrun the done
    /// record's fsync. Call [`Job::notify_done`] afterwards.
    fn fill(&self, idx: usize, outcome: CellOutcome) -> bool {
        let mut state = self.state.lock().unwrap();
        let slot = &mut state.cells[idx];
        if slot.outcome.is_some() {
            return false;
        }
        slot.outcome = Some(outcome);
        state.remaining -= 1;
        state.remaining == 0
    }

    /// Wakes everyone blocked in [`Job::wait`].
    fn notify_done(&self) {
        self.cv.notify_all();
    }

    /// Whether every cell has an outcome.
    pub fn is_done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }

    /// Blocks until the job completes.
    pub fn wait(&self) {
        let mut state = self.state.lock().unwrap();
        while state.remaining > 0 {
            state = self.cv.wait(state).unwrap();
        }
    }

    /// Blocks for at most `timeout`; returns whether the job is done.
    /// Handlers use short slices of this so they can interleave
    /// client-disconnect and drain checks with the wait.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let state = self.state.lock().unwrap();
        if state.remaining == 0 {
            return true;
        }
        let (state, _timed_out) = self.cv.wait_timeout(state, timeout).unwrap();
        state.remaining == 0
    }

    /// The job as the API reports it.
    pub fn to_json(&self) -> Json {
        let state = self.state.lock().unwrap();
        let mut cached = 0u64;
        let mut computed = 0u64;
        let mut failed = 0u64;
        let cells: Vec<Json> = state
            .cells
            .iter()
            .map(|slot| {
                let base = [
                    ("label", Json::from(slot.label.as_str())),
                    ("fingerprint", format!("{:016x}", slot.fingerprint).into()),
                ];
                match &slot.outcome {
                    None => Json::obj(base.into_iter().chain([("status", "pending".into())])),
                    Some(CellOutcome::Done { text, cached: was_cached }) => {
                        if *was_cached {
                            cached += 1;
                        } else {
                            computed += 1;
                        }
                        let result =
                            Json::parse(text).unwrap_or_else(|_| Json::from("unparseable"));
                        Json::obj(
                            base.into_iter()
                                .chain([("cached", (*was_cached).into()), ("result", result)]),
                        )
                    }
                    Some(CellOutcome::Failed { error }) => {
                        failed += 1;
                        Json::obj(base.into_iter().chain([("error", Json::from(error.as_str()))]))
                    }
                }
            })
            .collect();
        Json::obj([
            ("job", self.id.into()),
            ("status", if state.remaining == 0 { "done" } else { "running" }.into()),
            ("cancelled", self.cancel.is_cancelled().into()),
            ("total", (state.cells.len() as u64).into()),
            ("remaining", (state.remaining as u64).into()),
            ("cached", cached.into()),
            ("computed", computed.into()),
            ("failed", failed.into()),
            ("cells", Json::arr(cells)),
        ])
    }
}

/// One schedulable unit: a (workload × scheme × config) cell.
struct CellTask {
    /// Estimated cost in arbitrary-but-consistent microseconds; the
    /// queue is a max-heap on this, so the longest cells start first
    /// and the sweep's wall clock is not hostage to a long tail.
    cost_us: u64,
    /// Admission order; earlier wins ties so equal-cost cells are FIFO.
    seq: u64,
    fingerprint: u64,
    /// Tracer timestamp at admission; the worker that dequeues this
    /// task back-fills a `serve.queue.wait` span from it.
    enqueued_us: u64,
    /// The admitting request's span id, so the worker-side exec span
    /// parents onto the request that caused it (cross-thread).
    parent_span: u64,
    /// The admitting job's id (correlation with `RVP_LOG` lines).
    job_id: u64,
    /// The task's cancel token; also installed on `runner` so the sim
    /// loop polls it. Fired by job abort, deadline expiry or drain.
    cancel: CancelToken,
    cell: GridCell,
    runner: Runner,
}

impl PartialEq for CellTask {
    fn eq(&self, other: &CellTask) -> bool {
        self.cost_us == other.cost_us && self.seq == other.seq
    }
}
impl Eq for CellTask {}
impl PartialOrd for CellTask {
    fn partial_cmp(&self, other: &CellTask) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CellTask {
    fn cmp(&self, other: &CellTask) -> std::cmp::Ordering {
        self.cost_us.cmp(&other.cost_us).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct Sched {
    queue: BinaryHeap<CellTask>,
    /// Fingerprints queued or being simulated right now (single-flight:
    /// concurrent identical requests share one simulation).
    inflight: HashSet<u64>,
    /// Cells waiting on an in-flight fingerprint: `(job, cell index)`.
    waiters: HashMap<u64, Vec<(Arc<Job>, usize)>>,
    /// Cancel token per in-flight fingerprint. A job abort only fires
    /// a task token once the fingerprint's waiter list is empty, so
    /// cancelling one job never squashes a cell another job shares.
    tokens: HashMap<u64, CancelToken>,
    seq: u64,
}

struct Inner {
    cfg: ServeConfig,
    base: Runner,
    cells_dir: PathBuf,
    cache: ResultCache,
    journal: JobJournal,
    metrics: Arc<ServeMetrics>,
    /// Every counter family in the process, unified for `/metrics`.
    registry: MetricsRegistry,
    /// Monotonic clock for request latency (mockable in tests).
    clock: Clock,
    /// False until the journal replay finishes; `/readyz` gates on it.
    ready: Arc<AtomicBool>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    sched: Mutex<Sched>,
    queue_cv: Condvar,
    /// Learned per-label cell cost (seconds), EWMA over completions.
    costs: Mutex<HashMap<String, f64>>,
    stop: AtomicBool,
    /// Set by SIGTERM / `POST /shutdown`: new sweeps get 503, workers
    /// finish or squash, then the daemon stops.
    draining: AtomicBool,
    /// The bound address; the drain sequence pokes it to unblock the
    /// accept loop.
    addr: SocketAddr,
    active_conns: AtomicUsize,
}

/// Why a sweep submission was refused.
enum SubmitError {
    /// Admission queue full; retry later.
    Busy {
        /// Cells the sweep needed to enqueue.
        misses: usize,
    },
    /// The result cache failed on the read path.
    Cache(io::Error),
    /// The job could not be made durable.
    Journal(io::Error),
    /// The daemon is draining; nothing new is admitted.
    Draining,
    /// The overload governor shed the sweep: measured queue delay over
    /// the configured target with the queue backed up.
    Shed {
        /// The queue-wait EWMA that triggered the shed, milliseconds.
        delay_ms: u64,
    },
}

/// A running daemon; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`], or keep it alive forever via
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side metrics, shared with the daemon.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Blocks forever serving requests (the binary's main thread).
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Graceful-enough stop for tests and benches: stop accepting,
    /// wake the workers, join them. In-flight handler threads finish
    /// their current response on their own; queued-but-unstarted cells
    /// stay journaled and resume on the next start.
    pub fn shutdown(self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.inner.queue_cv.notify_all();
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Whether a stop (drain completion or [`ServerHandle::shutdown`])
    /// has been requested; the binary's main loop polls this.
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Graceful drain (the SIGTERM path): refuse new sweeps with 503,
    /// let in-flight jobs finish within the configured window, squash
    /// the survivors cooperatively (their journal records stay pending
    /// for resume on the next start), then stop and join every thread.
    /// Idempotent with a concurrent `POST /shutdown`.
    pub fn drain(self) {
        drain(&self.inner);
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Boots the daemon: opens state, replays the journal, binds the
/// listener, and spawns the accept thread and the worker pool.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let cells_dir = cfg.state_dir.join("cells");
    std::fs::create_dir_all(&cells_dir)?;
    let cache = ResultCache::open_with_budget(&cfg.state_dir, cfg.cache_budget_bytes)?;
    let (journal, pending) = JobJournal::open(&cfg.state_dir)?;

    let mut base = Runner::default();
    if base.traces.is_none() {
        base.traces = Some(
            TraceStore::with_budget(cfg.state_dir.join("traces"), cfg.trace_budget_bytes)
                .map_err(|e| io::Error::other(format!("cannot open trace store: {e}")))?,
        );
    }
    if cfg.trace_budget_bytes > 0 {
        // One budget governs both trace tiers: the on-disk store above
        // and the decoded in-memory copies the workers share.
        base.shared_traces.set_budget_bytes(cfg.trace_budget_bytes);
    }

    let next_id = pending.iter().map(|(id, _)| *id).max().unwrap_or(0) + 1;
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    // The daemon always traces: the ring is bounded (drop-newest), the
    // overhead is covered by the obs_overhead gate, and `GET /trace`
    // is only useful when there is something in it.
    span::arm(span::DEFAULT_RING_CAPACITY);

    let inner = Arc::new(Inner {
        cfg,
        base,
        cells_dir,
        cache,
        journal,
        metrics: Arc::new(ServeMetrics::new()),
        registry: MetricsRegistry::new(),
        clock: Clock::monotonic(),
        ready: Arc::new(AtomicBool::new(false)),
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(next_id),
        sched: Mutex::new(Sched::default()),
        queue_cv: Condvar::new(),
        costs: Mutex::new(HashMap::new()),
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        addr,
        active_conns: AtomicUsize::new(0),
    });
    register_collectors(&inner);

    // Re-submit interrupted jobs on a background thread: finished cells
    // hit the cache, the rest re-simulate. The listener accepts right
    // away — `/healthz` answers (liveness) while `/readyz` returns 503
    // until the replay lands every pending job back in the queue.
    {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("serve-replay".to_owned())
            .spawn(move || {
                let _span = span!("serve.journal.replay", { pending: pending.len() });
                for (id, spec_json) in pending {
                    match SweepSpec::from_json(&spec_json, &inner.base) {
                        Ok(spec) => match submit(&inner, spec, Some(id), None) {
                            Ok(job) => {
                                inner.metrics.jobs_resumed.fetch_add(1, Ordering::Relaxed);
                                log::info(
                                    "rvp-serve",
                                    "resumed journaled job",
                                    &[("id", id.into()), ("done", job.is_done().into())],
                                );
                            }
                            Err(_) => log::warn(
                                "rvp-serve",
                                "could not resume journaled job",
                                &[("id", id.into())],
                            ),
                        },
                        Err(e) => log::warn(
                            "rvp-serve",
                            "journaled job spec no longer parses; dropping it",
                            &[("id", id.into()), ("error", e.into())],
                        ),
                    }
                }
                inner.ready.store(true, Ordering::SeqCst);
            })
            .expect("spawn journal replay");
    }

    let workers = (0..inner.cfg.workers)
        .map(|i| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(&inner, listener))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle { addr, inner, accept, workers })
}

/// Wires every counter family in the process into the unified registry:
/// the daemon's own [`ServeMetrics`], the runner's per-workload source
/// tallies, the trace store's cache/quarantine counters, and
/// `rvp-fail`'s fired-site counters.
fn register_collectors(inner: &Arc<Inner>) {
    let metrics = Arc::clone(&inner.metrics);
    inner.registry.register(move || metrics.metrics());
    let sources = inner.base.source_counters.clone();
    inner.registry.register(move || sources.metrics());
    if let Some(store) = &inner.base.traces {
        let counters = Arc::clone(store.counters());
        inner.registry.register(move || counters.metrics());
    }
    inner.registry.register(|| {
        rvp_fail::snapshot()
            .into_iter()
            .map(|(site, n)| Metric::counter("rvp_fail_fired_total", n).with_label("site", site))
            .collect()
    });
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = inner.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
        if active > inner.cfg.max_connections {
            inner.active_conns.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = write_json_response(
                &mut stream,
                503,
                &[("Retry-After", "1".to_owned())],
                &Json::obj([("error", "connection limit reached".into())]),
            );
            continue;
        }
        let inner = Arc::clone(inner);
        let _ = std::thread::Builder::new().name("serve-conn".to_owned()).spawn(move || {
            handle_connection(&inner, stream);
            inner.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    // The read timeout doubles as the slowloris guard: a client that
    // stalls mid-request gets a 408 below, one idling between
    // keep-alive requests is reaped silently.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(inner.cfg.read_timeout_secs.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(120)));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(why)) => {
                inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
                respond(inner, &mut write_half, 400, &[], error_body(why));
                return;
            }
            Err(HttpError::TooLarge(why)) => {
                inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
                respond(inner, &mut write_half, 413, &[], error_body(why));
                return;
            }
            Err(HttpError::Timeout(why)) => {
                inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
                inner.metrics.request_timeouts.fetch_add(1, Ordering::Relaxed);
                respond(inner, &mut write_half, 408, &[], error_body(why));
                return;
            }
        };
        inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let started_us = inner.clock.now_us();
        let mut req_span = span!("serve.request", {
            method: request.method.as_str(),
            path: request.path.as_str(),
        });
        let (status, headers, body) = route(inner, &request, &write_half);
        req_span.add_field("status", u64::from(status));
        drop(req_span);
        inner.metrics.request_latency.record_us(inner.clock.now_us().saturating_sub(started_us));
        respond(inner, &mut write_half, status, &headers, body);
        if !request.keep_alive {
            return;
        }
    }
}

/// A routed response body: JSON for the API proper, plain text for the
/// Prometheus exposition and folded stacks.
enum Body {
    Json(Json),
    Text { content_type: &'static str, text: String },
}

fn respond(
    inner: &Inner,
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    body: Body,
) {
    match status {
        429 => {
            inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        }
        400..=499 => {
            inner.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        500..=599 => {
            inner.metrics.server_errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    let written = match &body {
        Body::Json(json) => write_json_response(stream, status, headers, json),
        Body::Text { content_type, text } => {
            write_text_response(stream, status, content_type, headers, text)
        }
    };
    if let Err(e) = written {
        log::debug(
            "rvp-serve",
            "client went away before the response landed",
            &[("error", e.to_string().into())],
        );
    }
}

fn error_body(message: impl std::fmt::Display) -> Body {
    Body::Json(Json::obj([("error", message.to_string().into())]))
}

type Routed = (u16, Vec<(&'static str, String)>, Body);

fn route(inner: &Arc<Inner>, request: &Request, stream: &TcpStream) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/sweep") => sweep_endpoint(inner, request, stream),
        ("POST", "/shutdown") => {
            let window = inner.cfg.drain_secs;
            let drainer = Arc::clone(inner);
            let _ = std::thread::Builder::new()
                .name("serve-drain".to_owned())
                .spawn(move || drain(&drainer));
            let body =
                Json::obj([("draining", true.into()), ("window_secs", window.into())]);
            (202, Vec::new(), Body::Json(body))
        }
        ("GET", "/metrics") => {
            // The eviction counter lives on the cache; mirror it into
            // the snapshot the endpoint renders.
            inner
                .metrics
                .cache_evictions
                .store(inner.cache.evictions().load(Ordering::Relaxed), Ordering::Relaxed);
            if request.query_param("format") == Some("prom") {
                let text = inner.registry.to_prometheus();
                (200, Vec::new(), Body::Text { content_type: "text/plain; version=0.0.4", text })
            } else {
                (200, Vec::new(), Body::Json(inner.metrics.to_json()))
            }
        }
        ("GET", "/healthz") => {
            // Liveness only: the process is up and routing requests.
            // Readiness (journal replayed, safe to submit) is `/readyz`.
            let body = Json::obj([
                ("ok", true.into()),
                ("jobs", (inner.jobs.lock().unwrap().len() as u64).into()),
                ("cache_resident", (inner.cache.resident() as u64).into()),
            ]);
            (200, Vec::new(), Body::Json(body))
        }
        ("GET", "/readyz") => {
            if inner.ready.load(Ordering::SeqCst) {
                (200, Vec::new(), Body::Json(Json::obj([("ready", true.into())])))
            } else {
                let body = Json::obj([
                    ("ready", false.into()),
                    ("reason", "journal replay in progress".into()),
                ]);
                (503, vec![("Retry-After", "1".to_owned())], Body::Json(body))
            }
        }
        ("GET", "/trace") => {
            let data = span::snapshot();
            if request.query_param("format") == Some("folded") {
                let text = span::folded_stacks(&data);
                (200, Vec::new(), Body::Text { content_type: "text/plain", text })
            } else {
                (200, Vec::new(), Body::Json(span::chrome_trace_json(&data)))
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            match path["/jobs/".len()..].parse::<u64>() {
                Err(_) => (400, Vec::new(), error_body("job id must be an integer")),
                Ok(id) => match inner.jobs.lock().unwrap().get(&id) {
                    None => (404, Vec::new(), error_body(format!("no such job: {id}"))),
                    Some(job) => (200, Vec::new(), Body::Json(job.to_json())),
                },
            }
        }
        ("DELETE", path) if path.starts_with("/jobs/") => {
            match path["/jobs/".len()..].parse::<u64>() {
                Err(_) => (400, Vec::new(), error_body("job id must be an integer")),
                Ok(id) => match cancel_job(inner, id, "client abort (DELETE)") {
                    None => (404, Vec::new(), error_body(format!("no such job: {id}"))),
                    Some(cancelled) => {
                        let body = Json::obj([
                            ("job", id.into()),
                            ("cancelled", cancelled.into()),
                            ("status", if cancelled { "cancelled" } else { "done" }.into()),
                        ]);
                        (200, Vec::new(), Body::Json(body))
                    }
                },
            }
        }
        (_, "/sweep" | "/shutdown" | "/metrics" | "/healthz" | "/readyz" | "/trace") => {
            (405, Vec::new(), error_body("method not allowed"))
        }
        _ => (404, Vec::new(), error_body(format!("no such endpoint: {}", request.path))),
    }
}

fn sweep_endpoint(inner: &Arc<Inner>, request: &Request, stream: &TcpStream) -> Routed {
    let body = &request.body;
    let parse_span = span!("serve.parse", { bytes: body.len() });
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, Vec::new(), error_body("body is not UTF-8")),
    };
    let parsed = match Json::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => return (400, Vec::new(), error_body(format!("bad JSON: {e}"))),
    };
    let spec = match SweepSpec::from_json(&parsed, &inner.base) {
        Ok(spec) => spec,
        Err(e) => return (400, Vec::new(), error_body(e)),
    };
    drop(parse_span);
    let wait = parsed.get("wait").and_then(Json::as_bool).unwrap_or(false);
    // The effective deadline is the server default tightened by the
    // request (`deadline_ms`). It governs cancellation, not identity:
    // it never enters the cell fingerprint, so a deadlined request
    // still hits the cache entries of an undeadlined one.
    let requested_ms = parsed.get("deadline_ms").and_then(Json::as_u64).filter(|ms| *ms > 0);
    let default_ms = Some(inner.cfg.deadline_secs * 1000).filter(|ms| *ms > 0);
    let deadline = match (requested_ms, default_ms) {
        (Some(a), Some(b)) => Some(Duration::from_millis(a.min(b))),
        (Some(ms), None) | (None, Some(ms)) => Some(Duration::from_millis(ms)),
        (None, None) => None,
    };

    let job = match submit(inner, spec, None, deadline) {
        Ok(job) => job,
        Err(SubmitError::Busy { misses }) => {
            let body = Json::obj([
                ("error", "admission queue full".into()),
                ("needed", (misses as u64).into()),
                ("max_queue", (inner.cfg.max_queue as u64).into()),
            ]);
            return (429, vec![("Retry-After", "1".to_owned())], Body::Json(body));
        }
        Err(SubmitError::Shed { delay_ms }) => {
            let retry = (delay_ms / 1000).clamp(1, 30);
            let body = Json::obj([
                ("error", "overloaded; shedding load".into()),
                ("queue_delay_ms", delay_ms.into()),
            ]);
            return (429, vec![("Retry-After", retry.to_string())], Body::Json(body));
        }
        Err(SubmitError::Draining) => {
            let body = Json::obj([("error", "draining; retry against the restarted daemon".into())]);
            return (503, vec![("Retry-After", "5".to_owned())], Body::Json(body));
        }
        Err(SubmitError::Cache(e)) => {
            return (500, Vec::new(), error_body(format!("result cache read failed: {e}")));
        }
        Err(SubmitError::Journal(e)) => {
            return (503, Vec::new(), error_body(format!("job journal append failed: {e}")));
        }
    };
    if wait {
        // Short wait slices so a vanished client or a drain is noticed
        // within ~250ms instead of holding a handler thread forever.
        loop {
            if job.wait_timeout(Duration::from_millis(250)) {
                break;
            }
            if inner.draining.load(Ordering::SeqCst) {
                let body = job.to_json();
                return (503, vec![("Retry-After", "5".to_owned())], Body::Json(body));
            }
            if client_gone(stream) {
                inner.metrics.client_disconnects.fetch_add(1, Ordering::Relaxed);
                cancel_job(inner, job.id, "client disconnected");
                break;
            }
        }
    }
    if job.is_done() {
        (200, Vec::new(), Body::Json(job.to_json()))
    } else {
        let body = Json::obj([
            ("job", job.id.into()),
            ("status", "queued".into()),
            ("poll", format!("/jobs/{}", job.id).into()),
        ]);
        (202, Vec::new(), Body::Json(body))
    }
}

/// Whether the peer of a waiting `wait=true` connection has gone away:
/// a non-blocking peek that returns EOF (or a hard error) means the
/// client hung up and nobody will read the response.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Admits one sweep: cache lookups, admission control, durable journal
/// append, scheduling. `resume_id` marks a journal replay — the job
/// keeps its id, skips re-journaling (the compacted journal already
/// has it) and treats cache-read trouble as a miss instead of refusing
/// the job it must not lose.
fn submit(
    inner: &Arc<Inner>,
    spec: SweepSpec,
    resume_id: Option<u64>,
    deadline: Option<Duration>,
) -> Result<Arc<Job>, SubmitError> {
    let resumed = resume_id.is_some();
    // A draining daemon admits nothing new; journal replays are the
    // exception — those jobs were admitted before and must not be lost.
    if !resumed && inner.draining.load(Ordering::SeqCst) {
        return Err(SubmitError::Draining);
    }
    // The enclosing request span (or replay span); queue-wait and
    // worker-side exec spans parent onto it across threads.
    let request_span = span::current();
    let admission_span = span!("serve.admission", { cells: spec.cells().len() });
    let cells = spec.cells();
    let mut slots = Vec::with_capacity(cells.len());
    let mut misses: Vec<usize> = Vec::new();
    for (idx, cell) in cells.iter().enumerate() {
        let fingerprint = spec.cell_fingerprint(&inner.base, cell);
        let outcome = match inner.cache.get(fingerprint) {
            Ok(Some(text)) => {
                inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                Some(CellOutcome::Done { text, cached: true })
            }
            Ok(None) => None,
            Err(e) if resumed => {
                log::warn(
                    "rvp-serve",
                    "cache read failed during resume; re-simulating the cell",
                    &[("error", e.to_string().into())],
                );
                None
            }
            Err(e) => return Err(SubmitError::Cache(e)),
        };
        if outcome.is_none() {
            inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            misses.push(idx);
        }
        slots.push(CellSlot { label: cell.label(), fingerprint, outcome });
    }

    if !misses.is_empty() {
        let depth = inner.metrics.queue_depth.load(Ordering::Relaxed) as usize;
        if depth + misses.len() > inner.cfg.max_queue {
            return Err(SubmitError::Busy { misses: misses.len() });
        }
        // Adaptive shedding: the hard queue bound above caps memory,
        // but a queue of slow cells can be "not full" and still hours
        // deep. When the measured queue wait says new work would sit
        // past the target, shed at admission instead of timing out
        // after the client already waited. Resumed jobs are exempt.
        if !resumed && inner.cfg.shed_delay_ms > 0 && depth > inner.cfg.workers {
            let delay_ms = inner.metrics.queue_delay_ewma_us.load(Ordering::Relaxed) / 1000;
            if delay_ms > inner.cfg.shed_delay_ms {
                inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Shed { delay_ms });
            }
        }
    }
    drop(admission_span);

    let id = resume_id.unwrap_or_else(|| inner.next_id.fetch_add(1, Ordering::SeqCst));
    if !misses.is_empty() && !resumed {
        // Durable before acknowledged: a job the daemon accepted must
        // survive a kill from this point on.
        let _span = span!("serve.journal.append", { job: id });
        let record = Json::obj([("spec", spec.to_json())]);
        inner.journal.append_job(id, record.get("spec").unwrap()).map_err(SubmitError::Journal)?;
    }

    let job = Arc::new(Job::new(id, slots));
    if let Some(d) = deadline {
        job.cancel.set_deadline(d);
    }
    inner.jobs.lock().unwrap().insert(id, Arc::clone(&job));
    inner.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);

    if misses.is_empty() {
        inner.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if resumed {
            // The journal still lists this job; close it out.
            inner.journal.append_done(id);
        }
        return Ok(job);
    }

    let runner = spec.runner_for(&inner.base);
    let mut enqueued = 0u64;
    {
        let mut sched = inner.sched.lock().unwrap();
        for idx in misses {
            let fingerprint = {
                let state = job.state.lock().unwrap();
                state.cells[idx].fingerprint
            };
            sched.waiters.entry(fingerprint).or_default().push((Arc::clone(&job), idx));
            if !sched.inflight.insert(fingerprint) {
                // Single-flight: ride the simulation already queued.
                // Deadlines only tighten, so a shared cell squashes at
                // its earliest sharer's deadline.
                if let (Some(d), Some(token)) = (deadline, sched.tokens.get(&fingerprint)) {
                    token.set_deadline(d);
                }
                continue;
            }
            let token = match deadline {
                Some(d) => CancelToken::with_deadline(d),
                None => CancelToken::new(),
            };
            sched.tokens.insert(fingerprint, token.clone());
            let cell = GridCell {
                workload: cells[idx].workload.clone(),
                scheme: cells[idx].scheme.clone(),
            };
            let cost_us = estimate_us(inner, &cell, &runner);
            sched.seq += 1;
            let seq = sched.seq;
            let mut cell_runner = runner.clone();
            cell_runner.cancel = Some(token.clone());
            sched.queue.push(CellTask {
                cost_us,
                seq,
                fingerprint,
                enqueued_us: span::now_us(),
                parent_span: request_span,
                job_id: id,
                cancel: token,
                cell,
                runner: cell_runner,
            });
            enqueued += 1;
        }
    }
    if enqueued > 0 {
        inner.metrics.queue_enter(enqueued);
        inner.queue_cv.notify_all();
    }
    Ok(job)
}

/// Estimated cell cost in scheduler microseconds: the learned per-label
/// EWMA when one exists, otherwise proportional to the instruction
/// budgets (the same heuristic the grid scheduler starts from).
fn estimate_us(inner: &Inner, cell: &GridCell, runner: &Runner) -> u64 {
    let label = cell.label();
    if let Some(seconds) = inner.costs.lock().unwrap().get(&label) {
        return (seconds * 1e6) as u64;
    }
    (runner.measure_insts + runner.profile_insts) / 5
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let task = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(task) = sched.queue.pop() {
                    break task;
                }
                sched = inner.queue_cv.wait(sched).unwrap();
            }
        };
        let dequeued_us = span::now_us();
        inner.metrics.observe_queue_delay(dequeued_us.saturating_sub(task.enqueued_us));
        if span::armed() {
            // The time this cell sat in the queue, attributed back to
            // the request (or replay) that admitted it.
            span::record(
                "serve.queue.wait",
                task.parent_span,
                task.enqueued_us,
                dequeued_us,
                vec![("cell".into(), task.cell.label().into()), ("job".into(), task.job_id.into())],
            );
        }
        let exec_start_us = span::now_us();
        let (outcome, cancelled) = {
            let _exec = span::child_of(task.parent_span, "serve.cell.exec", || {
                vec![("cell".into(), task.cell.label().into()), ("job".into(), task.job_id.into())]
            });
            execute(inner, &task)
        };
        let waiters = {
            let mut sched = inner.sched.lock().unwrap();
            sched.inflight.remove(&task.fingerprint);
            sched.tokens.remove(&task.fingerprint);
            sched.waiters.remove(&task.fingerprint).unwrap_or_default()
        };
        if cancelled {
            inner.metrics.cells_cancelled.fetch_add(1, Ordering::Relaxed);
            if span::armed() {
                span::record(
                    "cancel.squash",
                    task.parent_span,
                    exec_start_us,
                    span::now_us(),
                    vec![
                        ("cell".into(), task.cell.label().into()),
                        ("job".into(), task.job_id.into()),
                        (
                            "reason".into(),
                            task.cancel.detail().unwrap_or_else(|| "cancelled".to_owned()).into(),
                        ),
                    ],
                );
            }
        }
        if cancelled && inner.draining.load(Ordering::SeqCst) {
            // Drain squash: the cell's jobs stay *pending* — no fill,
            // no done record — so the journal resumes them, and their
            // finished cells re-serve from the cache, on the next
            // start. Nothing admitted is ever lost.
            inner.metrics.queue_exit(1);
            continue;
        }
        for (job, idx) in waiters {
            if job.fill(idx, outcome.clone()) {
                // Durable before observable: the done record lands
                // before any `wait=true` handler can send its 200.
                inner.journal.append_done(job.id);
                inner.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                job.notify_done();
            }
        }
        inner.metrics.queue_exit(1);
    }
}

/// Runs one cell with the grid's full containment stack (panic
/// catching, transient retries, source-degradation ladder) and caches
/// the result. Failures come back as data, never as a dead worker; the
/// second return value is whether the cell was cooperatively squashed
/// (the task token fired) rather than genuinely failing.
fn execute(inner: &Arc<Inner>, task: &CellTask) -> (CellOutcome, bool) {
    let opts = CellOptions { retries: inner.cfg.retries, timeout_secs: 0 };
    let started = Instant::now();
    match run_one_cell(&task.runner, &task.cell, opts, &inner.cells_dir) {
        Ok(success) => {
            let seconds = started.elapsed().as_secs_f64();
            let mut costs = inner.costs.lock().unwrap();
            let est = costs.entry(task.cell.label()).or_insert(seconds);
            *est = 0.5 * *est + 0.5 * seconds;
            drop(costs);
            inner.metrics.cells_computed.fetch_add(1, Ordering::Relaxed);
            let text = match success.result {
                Some(result) => format!("{}\n", result.to_json()),
                // Unreachable for freshly-run cells, but stay graceful.
                None => "{}\n".to_owned(),
            };
            if let Err(e) = inner.cache.put(task.fingerprint, &text) {
                log::warn(
                    "rvp-serve",
                    "cell computed but cache write failed; serving from memory only",
                    &[
                        ("fingerprint", format!("{:016x}", task.fingerprint).into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
            (CellOutcome::Done { text: text.into(), cached: false }, false)
        }
        Err(poisoned) => {
            if !poisoned.cancelled {
                inner.metrics.cells_failed.fetch_add(1, Ordering::Relaxed);
            }
            let outcome = CellOutcome::Failed {
                error: format!(
                    "cell {} poisoned at stage {} after {} attempts: {}",
                    poisoned.label, poisoned.stage, poisoned.attempts, poisoned.error
                ),
            };
            (outcome, poisoned.cancelled)
        }
    }
}

/// Aborts a job: fires its token, detaches it from the scheduler
/// (cancelling a shared cell's task token only when no other job still
/// waits on it), fails its pending cells so waiters wake, and closes
/// its journal record. Returns `None` for an unknown id, `Some(false)`
/// for a job that had already finished, `Some(true)` on a real abort.
fn cancel_job(inner: &Arc<Inner>, id: u64, why: &str) -> Option<bool> {
    let job = inner.jobs.lock().unwrap().get(&id).cloned()?;
    if job.is_done() {
        return Some(false);
    }
    job.cancel.cancel(why);
    inner.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    {
        let mut sched = inner.sched.lock().unwrap();
        let mut orphaned: Vec<u64> = Vec::new();
        for (fingerprint, list) in sched.waiters.iter_mut() {
            list.retain(|(waiter, _)| waiter.id != id);
            if list.is_empty() {
                orphaned.push(*fingerprint);
            }
        }
        for fingerprint in orphaned {
            sched.waiters.remove(&fingerprint);
            // Nobody wants this cell anymore: squash it. The queued or
            // running worker notices within one poll mask and frees up.
            if let Some(token) = sched.tokens.get(&fingerprint) {
                token.cancel(why);
            }
        }
    }
    let completed = {
        let mut state = job.state.lock().unwrap();
        let JobState { cells, remaining } = &mut *state;
        for slot in cells.iter_mut() {
            if slot.outcome.is_none() {
                slot.outcome = Some(CellOutcome::Failed { error: format!("job cancelled: {why}") });
                *remaining -= 1;
            }
        }
        *remaining == 0
    };
    if completed {
        // The abort is final: close the journal record so a restart
        // does not resurrect work the client explicitly killed.
        inner.journal.append_done(id);
        job.notify_done();
    }
    log::info("rvp-serve", "job cancelled", &[("id", id.into()), ("why", why.into())]);
    Some(true)
}

/// The drain window in 25ms polls: let in-flight jobs finish, then
/// cooperatively squash the stragglers (their journal records stay
/// pending, so the next start resumes them), then stop every thread.
/// Idempotent: SIGTERM and `POST /shutdown` can race freely.
fn drain(inner: &Arc<Inner>) {
    if inner.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    inner.metrics.drains.fetch_add(1, Ordering::Relaxed);
    let start_us = span::now_us();
    let window = Duration::from_secs(inner.cfg.drain_secs.max(1));
    log::info(
        "rvp-serve",
        "draining: refusing new sweeps, finishing in-flight jobs",
        &[("window_secs", inner.cfg.drain_secs.into())],
    );
    let deadline = Instant::now() + window;
    let mut squashed = false;
    loop {
        let all_done = inner.jobs.lock().unwrap().values().all(|job| job.is_done());
        if all_done {
            break;
        }
        if Instant::now() >= deadline {
            squashed = true;
            log::warn(
                "rvp-serve",
                "drain window expired; squashing in-flight cells (journal preserves them)",
                &[],
            );
            {
                let sched = inner.sched.lock().unwrap();
                for token in sched.tokens.values() {
                    token.cancel("drain window expired");
                }
            }
            for job in inner.jobs.lock().unwrap().values() {
                if !job.is_done() {
                    job.cancel.cancel("drain window expired");
                }
            }
            // Bounded grace for the workers to squash out of their
            // cells; a cooperative squash takes milliseconds, so this
            // only runs long if a cell is wedged below the poll mask.
            let grace = Instant::now() + Duration::from_secs(10);
            while inner.metrics.queue_depth.load(Ordering::Relaxed) > 0 && Instant::now() < grace {
                std::thread::sleep(Duration::from_millis(25));
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if span::armed() {
        span::record(
            "serve.drain",
            0,
            start_us,
            span::now_us(),
            vec![
                ("squashed".into(), u64::from(squashed).into()),
                ("jobs".into(), (inner.jobs.lock().unwrap().len() as u64).into()),
            ],
        );
    }
    log::info("rvp-serve", "drain complete; stopping", &[("squashed", squashed.into())]);
    inner.stop.store(true, Ordering::SeqCst);
    // Unblock the accept loop and the idle workers.
    let _ = TcpStream::connect(inner.addr);
    inner.queue_cv.notify_all();
}
