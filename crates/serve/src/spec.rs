//! Sweep request model: parse, validate, and map onto the simulation
//! grid's cell space.

use rvp_bench::grid::GridCell;
use rvp_core::{
    by_name_or_err, grid_config_fnv, parse_recovery, recovery_name, Recovery, Runner, SampleSpec,
    SchemeSpec, Workload,
};
use rvp_json::Json;

/// Largest committed-instruction budget a request may ask for, per run.
/// Admission control bounds how many cells queue up; this bounds how
/// much work one cell can be.
pub const MAX_INSTS: u64 = 100_000_000;

/// Largest workload scale factor a request may ask for. Combined with
/// [`MAX_INSTS`] this bounds both how long a program is and how much of
/// it one cell may simulate.
pub const MAX_SCALE: u64 = 4_096;

/// A validated sweep request: the cross product of workloads and
/// schemes under one recovery model and one set of budget knobs.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workloads to sweep (validated against the workload registry).
    pub workloads: Vec<Workload>,
    /// Schemes to sweep (validated against the scheme registry,
    /// [`rvp_core::list_schemes`], predictor parameters included).
    pub schemes: Vec<SchemeSpec>,
    /// Value-misprediction recovery model.
    pub recovery: Recovery,
    /// Profile threshold for candidate selection.
    pub threshold: f64,
    /// Committed-instruction budget for measurement runs.
    pub measure_insts: u64,
    /// Committed-instruction budget for profiling runs.
    pub profile_insts: u64,
    /// Sampled-measurement knobs (`"sample"`, a [`SampleSpec::parse`]
    /// string); `None` measures every committed instruction in detail.
    pub sampling: Option<SampleSpec>,
    /// Workload outer-pass scale factor (`"scale"`); 1 is the seed-era
    /// program.
    pub workload_scale: u64,
}

impl SweepSpec {
    /// Parses and validates a request body. Unknown names, bad types
    /// and out-of-range knobs are reported as a client error string
    /// (they become a 400, never a panic). Missing knobs default to
    /// `base`'s values; missing workload/scheme lists are an error —
    /// an accidental "sweep everything" is too expensive to imply.
    pub fn from_json(body: &Json, base: &Runner) -> Result<SweepSpec, String> {
        let workloads = match body.get("workloads").and_then(Json::as_arr) {
            None => return Err("missing \"workloads\" (array of workload names)".to_owned()),
            Some(names) => {
                let mut workloads = Vec::with_capacity(names.len());
                for name in names {
                    let name = name.as_str().ok_or("workload names must be strings")?;
                    // The registry error lists every known workload;
                    // forward it verbatim into the 400 body.
                    workloads.push(by_name_or_err(name)?);
                }
                workloads
            }
        };
        let schemes = match body.get("schemes").and_then(Json::as_arr) {
            None => return Err("missing \"schemes\" (array of scheme labels)".to_owned()),
            Some(labels) => {
                let mut schemes = Vec::with_capacity(labels.len());
                for label in labels {
                    let label = label.as_str().ok_or("scheme labels must be strings")?;
                    // The registry error already lists every known
                    // scheme; forward it verbatim into the 400 body.
                    schemes.push(SchemeSpec::parse(label)?);
                }
                schemes
            }
        };
        if workloads.is_empty() || schemes.is_empty() {
            return Err("\"workloads\" and \"schemes\" must be non-empty".to_owned());
        }
        let recovery = match body.get("recovery") {
            None => base.recovery,
            Some(v) => {
                let name = v.as_str().ok_or("\"recovery\" must be a string")?;
                parse_recovery(name).ok_or_else(|| {
                    format!("unknown recovery {name:?} (known: refetch, reissue, selective)")
                })?
            }
        };
        let threshold = match body.get("threshold") {
            None => base.threshold,
            Some(v) => v.as_f64().ok_or("\"threshold\" must be a number")?,
        };
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(format!("\"threshold\" must be in (0, 1], got {threshold}"));
        }
        let measure_insts = budget(body, "measure_insts", base.measure_insts)?;
        let profile_insts = budget(body, "profile_insts", base.profile_insts)?;
        let sampling = match body.get("sample") {
            None => base.sampling,
            Some(v) => {
                let text = v.as_str().ok_or("\"sample\" must be a spec string or \"auto\"")?;
                Some(SampleSpec::parse(text)?)
            }
        };
        let workload_scale = match body.get("scale") {
            None => base.workload_scale,
            Some(v) => {
                let n = v.as_u64().ok_or("\"scale\" must be a positive integer")?;
                if n == 0 || n > MAX_SCALE {
                    return Err(format!("\"scale\" must be in [1, {MAX_SCALE}], got {n}"));
                }
                n
            }
        };
        Ok(SweepSpec {
            workloads,
            schemes,
            recovery,
            threshold,
            measure_insts,
            profile_insts,
            sampling,
            workload_scale,
        })
    }

    /// Journal form; [`SweepSpec::from_json`] on the result round-trips.
    /// The sampling/scale knobs are emitted only when active, so
    /// journals written before they existed still round-trip.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workloads", Json::arr(self.workloads.iter().map(|w| Json::from(w.name())))),
            ("schemes", Json::arr(self.schemes.iter().map(|s| Json::from(s.label())))),
            ("recovery", recovery_name(self.recovery).into()),
            ("threshold", self.threshold.into()),
            ("measure_insts", self.measure_insts.into()),
            ("profile_insts", self.profile_insts.into()),
        ];
        if let Some(spec) = &self.sampling {
            fields.push(("sample", spec.to_spec_string().into()));
        }
        if self.workload_scale > 1 {
            fields.push(("scale", self.workload_scale.into()));
        }
        Json::obj(fields)
    }

    /// The cells of this sweep, in stable (workload-major) order.
    pub fn cells(&self) -> Vec<GridCell> {
        self.workloads
            .iter()
            .flat_map(|wl| {
                self.schemes
                    .iter()
                    .map(|scheme| GridCell { workload: wl.clone(), scheme: scheme.clone() })
            })
            .collect()
    }

    /// A runner for this sweep: `base`'s shared caches (profiles,
    /// in-memory traces, trace store — this is what makes the daemon
    /// multi-tenant) with this spec's knobs layered on top.
    pub fn runner_for(&self, base: &Runner) -> Runner {
        let mut runner = base.clone();
        runner.recovery = self.recovery;
        runner.threshold = self.threshold;
        runner.measure_insts = self.measure_insts;
        runner.profile_insts = self.profile_insts;
        runner.sampling = self.sampling;
        runner.workload_scale = self.workload_scale;
        runner
    }

    /// Content address of one cell's result: the same config
    /// fingerprint the grid manifest journals, specialized to a single
    /// (workload × scheme) cell. Two requests that would produce
    /// bit-identical cell JSON get the same key.
    pub fn cell_fingerprint(&self, base: &Runner, cell: &GridCell) -> u64 {
        grid_config_fnv(
            std::slice::from_ref(&cell.workload),
            std::slice::from_ref(&cell.scheme),
            &self.runner_for(base),
        )
    }
}

fn budget(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    let insts = match body.get(key) {
        None => default,
        Some(v) => v.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer"))?,
    };
    if insts == 0 || insts > MAX_INSTS {
        return Err(format!("{key:?} must be in [1, {MAX_INSTS}], got {insts}"));
    }
    Ok(insts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Runner {
        Runner { traces: None, ..Runner::default() }
    }

    fn parse(text: &str) -> Result<SweepSpec, String> {
        SweepSpec::from_json(&Json::parse(text).unwrap(), &base())
    }

    #[test]
    fn spec_roundtrips_through_journal_json() {
        let spec = parse(
            r#"{"workloads":["li","go"],"schemes":["lvp","no_predict"],
                "recovery":"refetch","threshold":0.9,
                "measure_insts":50000,"profile_insts":80000}"#,
        )
        .unwrap();
        let again = SweepSpec::from_json(&spec.to_json(), &base()).unwrap();
        assert_eq!(again.to_json().to_string(), spec.to_json().to_string());
        assert_eq!(again.cells().len(), 4);
        // Identical specs address identical cells.
        let cell = &spec.cells()[0];
        assert_eq!(spec.cell_fingerprint(&base(), cell), again.cell_fingerprint(&base(), cell));
        // A different knob re-addresses every cell.
        let mut other = spec.clone();
        other.measure_insts += 1;
        assert_ne!(spec.cell_fingerprint(&base(), cell), other.cell_fingerprint(&base(), cell));
    }

    #[test]
    fn unknown_scheme_error_lists_the_whole_registry() {
        let err = parse(r#"{"workloads":["li"],"schemes":["nope"]}"#).unwrap_err();
        assert!(err.contains("unknown scheme \"nope\""), "{err}");
        for info in rvp_core::list_schemes() {
            assert!(err.contains(info.name), "400 body must name {:?}: {err}", info.name);
        }
    }

    #[test]
    fn parameterized_schemes_are_accepted_and_readdress_cells() {
        let plain = parse(r#"{"workloads":["li"],"schemes":["drvp_all"]}"#).unwrap();
        let tuned = parse(r#"{"workloads":["li"],"schemes":["drvp_all:entries=4096"]}"#).unwrap();
        assert_eq!(tuned.schemes[0].label(), "drvp_all:entries=4096");
        // The parameter tail is part of the cell's content address.
        assert_ne!(
            plain.cell_fingerprint(&base(), &plain.cells()[0]),
            tuned.cell_fingerprint(&base(), &tuned.cells()[0]),
        );
        // Invalid parameters are a 400, same as unknown names.
        assert!(parse(r#"{"workloads":["li"],"schemes":["drvp_all:bogus=1"]}"#).is_err());
        assert!(parse(r#"{"workloads":["li"],"schemes":["no_predict:entries=4"]}"#).is_err());
    }

    #[test]
    fn sampled_and_scaled_sweeps_round_trip_and_readdress_cells() {
        let plain = parse(r#"{"workloads":["li"],"schemes":["lvp"]}"#).unwrap();
        let sampled =
            parse(r#"{"workloads":["li"],"schemes":["lvp"],"sample":"interval=30000","scale":16}"#)
                .unwrap();
        assert_eq!(sampled.sampling.unwrap().interval_insts, 30_000);
        assert_eq!(sampled.workload_scale, 16);
        // Journal round trip preserves both knobs exactly.
        let again = SweepSpec::from_json(&sampled.to_json(), &base()).unwrap();
        assert_eq!(again.to_json().to_string(), sampled.to_json().to_string());
        // Sampled and detailed results of the same cell are distinct
        // entries in the content-addressed result cache.
        let cell = &plain.cells()[0];
        assert_ne!(plain.cell_fingerprint(&base(), cell), sampled.cell_fingerprint(&base(), cell));
        assert_eq!(
            sampled.cell_fingerprint(&base(), cell),
            again.cell_fingerprint(&base(), &again.cells()[0])
        );
        // `"sample":"auto"` is valid and distinct from no sampling.
        let auto = parse(r#"{"workloads":["li"],"schemes":["lvp"],"sample":"auto"}"#).unwrap();
        assert_ne!(plain.cell_fingerprint(&base(), cell), auto.cell_fingerprint(&base(), cell));
        // Bad specs and out-of-range scales are 400s, not panics.
        assert!(parse(r#"{"workloads":["li"],"schemes":["lvp"],"sample":"bogus=1"}"#).is_err());
        assert!(parse(r#"{"workloads":["li"],"schemes":["lvp"],"scale":0}"#).is_err());
        assert!(parse(r#"{"workloads":["li"],"schemes":["lvp"],"scale":99999}"#).is_err());
    }

    #[test]
    fn spec_validation_is_an_error_not_a_panic() {
        for bad in [
            r#"{}"#,
            r#"{"workloads":["li"],"schemes":[]}"#,
            r#"{"workloads":["nope"],"schemes":["lvp"]}"#,
            r#"{"workloads":["li"],"schemes":["nope"]}"#,
            r#"{"workloads":["li"],"schemes":["lvp"],"recovery":"nope"}"#,
            r#"{"workloads":["li"],"schemes":["lvp"],"threshold":1.5}"#,
            r#"{"workloads":["li"],"schemes":["lvp"],"measure_insts":0}"#,
            r#"{"workloads":["li"],"schemes":["lvp"],"measure_insts":999999999999}"#,
            r#"{"workloads":[1],"schemes":["lvp"]}"#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad}");
        }
    }
}
