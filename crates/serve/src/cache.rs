//! Content-addressed result cache.
//!
//! One entry per simulated cell, keyed by the cell's config
//! fingerprint ([`crate::spec::SweepSpec::cell_fingerprint`]) and
//! stored as `cache/<key:016x>.json` — the exact bytes `rvp-grid`
//! would have written for that cell. Entries are written atomically
//! (temp + fsync + rename) so a killed daemon leaves either a complete
//! entry or none; a repeat request after restart hits disk instead of
//! re-simulating.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rvp_core::write_atomic;
use rvp_json::Json;
use rvp_obs::log;

/// Subdirectory of the daemon state dir holding cache entries.
pub const CACHE_SUBDIR: &str = "cache";

/// Failpoint consulted on every disk read of a cache entry.
pub const CACHE_READ_SITE: &str = "serve.cache.read";

/// Disk-backed result cache with a write-through in-memory map.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    mem: Mutex<HashMap<u64, Arc<str>>>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `state_dir`.
    pub fn open(state_dir: &Path) -> io::Result<ResultCache> {
        let dir = state_dir.join(CACHE_SUBDIR);
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir, mem: Mutex::new(HashMap::new()) })
    }

    /// Cache directory (entries are `<key:016x>.json`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of an entry.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Looks a key up: memory first, then disk (the `serve.cache.read`
    /// failpoint guards the disk path). A disk entry that no longer
    /// parses as JSON is deleted and reported as a miss — the cell
    /// simply gets re-simulated — so one corrupt file can never pin a
    /// bad result. An I/O error (injected or real) propagates; the
    /// caller turns it into a structured 5xx.
    pub fn get(&self, key: u64) -> io::Result<Option<Arc<str>>> {
        if let Some(hit) = self.mem.lock().unwrap().get(&key) {
            return Ok(Some(Arc::clone(hit)));
        }
        rvp_fail::io_at(CACHE_READ_SITE)?;
        let path = self.path_for(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if Json::parse(&text).is_err() {
            log::warn(
                "rvp-serve",
                "corrupt cache entry; deleting and re-simulating",
                &[("path", path.display().to_string().into())],
            );
            let _ = std::fs::remove_file(&path);
            return Ok(None);
        }
        let text: Arc<str> = text.into();
        self.mem.lock().unwrap().insert(key, Arc::clone(&text));
        Ok(Some(text))
    }

    /// Write-through insert. The disk write is atomic; on failure the
    /// entry still serves from memory for this daemon's lifetime and
    /// the error is reported for logging (a later identical request
    /// re-simulates instead of reading a torn file).
    pub fn put(&self, key: u64, text: &str) -> io::Result<()> {
        self.mem.lock().unwrap().insert(key, text.into());
        write_atomic(&self.path_for(key), text.as_bytes())
    }

    /// Entries currently resident in memory.
    pub fn resident(&self) -> usize {
        self.mem.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rvp-serve-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_roundtrips_and_survives_reopen() {
        let dir = tmp("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.get(7).unwrap().is_none());
        cache.put(7, "{\"x\":1}\n").unwrap();
        assert_eq!(cache.get(7).unwrap().as_deref(), Some("{\"x\":1}\n"));
        // A fresh instance (daemon restart) reads the same bytes back
        // from disk.
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.resident(), 0);
        assert_eq!(reopened.get(7).unwrap().as_deref(), Some("{\"x\":1}\n"));
        assert_eq!(reopened.resident(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_deleted_and_reported_as_miss() {
        let dir = tmp("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        std::fs::write(cache.path_for(9), b"{\"torn\":").unwrap();
        assert!(cache.get(9).unwrap().is_none());
        assert!(!cache.path_for(9).exists(), "corrupt entry must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
