//! Content-addressed result cache.
//!
//! One entry per simulated cell, keyed by the cell's config
//! fingerprint ([`crate::spec::SweepSpec::cell_fingerprint`]) and
//! stored as `cache/<key:016x>.json` — the exact bytes `rvp-grid`
//! would have written for that cell. Entries are written atomically
//! (temp + fsync + rename) so a killed daemon leaves either a complete
//! entry or none; a repeat request after restart hits disk instead of
//! re-simulating.
//!
//! When a byte budget is configured the cache is *governed*: every
//! disk hit touches the entry's mtime, and after every write the
//! least-recently-used entries are evicted until the directory is back
//! under budget. Eviction is loss of a cache, never loss of data — an
//! evicted cell simply re-simulates on its next request.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use rvp_core::write_atomic;
use rvp_json::Json;
use rvp_obs::log;

/// Subdirectory of the daemon state dir holding cache entries.
pub const CACHE_SUBDIR: &str = "cache";

/// Failpoint consulted on every disk read of a cache entry.
pub const CACHE_READ_SITE: &str = "serve.cache.read";

/// Failpoint consulted on every disk write of a cache entry — the
/// disk-full drill. An injected fault here behaves exactly like a full
/// disk: the write fails, the entry serves from memory for this
/// daemon's lifetime, and (when a budget is set) an eviction sweep
/// frees space for the next write.
pub const DISK_FULL_SITE: &str = "store.disk.full";

/// Disk-backed result cache with a write-through in-memory map.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    mem: Mutex<HashMap<u64, Arc<str>>>,
    /// Disk budget in bytes; 0 means ungoverned (never evict).
    budget_bytes: u64,
    evictions: Arc<AtomicU64>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `state_dir`.
    pub fn open(state_dir: &Path) -> io::Result<ResultCache> {
        ResultCache::open_with_budget(state_dir, 0)
    }

    /// Opens the cache with a disk budget in bytes (`0` = unlimited).
    pub fn open_with_budget(state_dir: &Path, budget_bytes: u64) -> io::Result<ResultCache> {
        let dir = state_dir.join(CACHE_SUBDIR);
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            mem: Mutex::new(HashMap::new()),
            budget_bytes,
            evictions: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Cache directory (entries are `<key:016x>.json`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of an entry.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Entries evicted so far; shared so a metrics collector can read
    /// it without holding the cache.
    pub fn evictions(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.evictions)
    }

    /// Looks a key up: memory first, then disk (the `serve.cache.read`
    /// failpoint guards the disk path). A disk entry that no longer
    /// parses as JSON is deleted and reported as a miss — the cell
    /// simply gets re-simulated — so one corrupt file can never pin a
    /// bad result. An I/O error (injected or real) propagates; the
    /// caller turns it into a structured 5xx.
    pub fn get(&self, key: u64) -> io::Result<Option<Arc<str>>> {
        if let Some(hit) = self.mem.lock().unwrap().get(&key) {
            return Ok(Some(Arc::clone(hit)));
        }
        rvp_fail::io_at(CACHE_READ_SITE)?;
        let path = self.path_for(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if Json::parse(&text).is_err() {
            log::warn(
                "rvp-serve",
                "corrupt cache entry; deleting and re-simulating",
                &[("path", path.display().to_string().into())],
            );
            let _ = std::fs::remove_file(&path);
            return Ok(None);
        }
        if self.budget_bytes > 0 {
            // Touch-on-hit keeps eviction order LRU rather than FIFO.
            if let Ok(f) = std::fs::File::open(&path) {
                let _ = f.set_modified(SystemTime::now());
            }
        }
        let text: Arc<str> = text.into();
        self.mem.lock().unwrap().insert(key, Arc::clone(&text));
        Ok(Some(text))
    }

    /// Write-through insert. The disk write is atomic; on failure the
    /// entry still serves from memory for this daemon's lifetime and
    /// the error is reported for logging (a later identical request
    /// re-simulates instead of reading a torn file). A configured
    /// budget is enforced after every write; a failed write (disk
    /// full, injected at `store.disk.full`) also runs the sweep so the
    /// *next* write has room.
    pub fn put(&self, key: u64, text: &str) -> io::Result<()> {
        self.mem.lock().unwrap().insert(key, text.into());
        let written = rvp_fail::io_at(DISK_FULL_SITE)
            .and_then(|()| write_atomic(&self.path_for(key), text.as_bytes()));
        if self.budget_bytes > 0 {
            self.evict_to_budget(Some(key));
        }
        written
    }

    /// Entries currently resident in memory.
    pub fn resident(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Total bytes of cache entries on disk.
    pub fn disk_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return 0 };
        entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Evicts least-recently-used entries (by mtime; hits touch) until
    /// the directory is back under budget, never evicting `keep` (the
    /// entry just written). Evicted keys leave the in-memory map too,
    /// so memory stays proportional to the governed disk set.
    fn evict_to_budget(&self, keep: Option<u64>) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        let mut files: Vec<(SystemTime, PathBuf, u64, Option<u64>)> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .filter_map(|p| {
                let meta = std::fs::metadata(&p).ok()?;
                let key = p
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| u64::from_str_radix(s, 16).ok());
                Some((meta.modified().ok()?, p, meta.len(), key))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len, _)| len).sum();
        if total <= self.budget_bytes {
            return;
        }
        files.sort_by_key(|(mtime, _, _, _)| *mtime);
        let over = total.saturating_sub(self.budget_bytes);
        let start_us = rvp_obs::span::now_us();
        let mut evicted = 0u64;
        for (_, path, len, key) in files {
            if total <= self.budget_bytes {
                break;
            }
            if key.is_some() && key == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                evicted += 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(key) = key {
                    self.mem.lock().unwrap().remove(&key);
                }
            }
        }
        if evicted > 0 && rvp_obs::span::armed() {
            rvp_obs::span::record(
                "cache.evict",
                rvp_obs::span::current(),
                start_us,
                rvp_obs::span::now_us(),
                vec![
                    ("cache".into(), "serve.results".into()),
                    ("evicted".into(), evicted.into()),
                    ("over_bytes".into(), over.into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rvp-serve-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_roundtrips_and_survives_reopen() {
        let dir = tmp("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.get(7).unwrap().is_none());
        cache.put(7, "{\"x\":1}\n").unwrap();
        assert_eq!(cache.get(7).unwrap().as_deref(), Some("{\"x\":1}\n"));
        // A fresh instance (daemon restart) reads the same bytes back
        // from disk.
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.resident(), 0);
        assert_eq!(reopened.get(7).unwrap().as_deref(), Some("{\"x\":1}\n"));
        assert_eq!(reopened.resident(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_deleted_and_reported_as_miss() {
        let dir = tmp("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        std::fs::write(cache.path_for(9), b"{\"torn\":").unwrap();
        assert!(cache.get(9).unwrap().is_none());
        assert!(!cache.path_for(9).exists(), "corrupt entry must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_evicts_lru_and_never_the_fresh_entry() {
        let dir = tmp("budget");
        let entry = "{\"n\":0}\n"; // 8 bytes
        let budget = 3 * entry.len() as u64;
        let cache = ResultCache::open_with_budget(&dir, budget).unwrap();
        for key in 1..=3u64 {
            cache.put(key, entry).unwrap();
            // mtime granularity can be coarse; space the writes out so
            // LRU order is unambiguous.
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(cache.disk_bytes() <= budget);
        // Touch entry 1 (the oldest) via a disk hit from a cold map,
        // then overflow: entry 2 is now the least recently used.
        let warm = ResultCache::open_with_budget(&dir, budget).unwrap();
        assert!(warm.get(1).unwrap().is_some());
        std::thread::sleep(std::time::Duration::from_millis(25));
        warm.put(4, entry).unwrap();
        assert!(warm.disk_bytes() <= budget, "budget enforced after put");
        assert!(warm.path_for(4).exists(), "the fresh entry survives its own sweep");
        assert!(warm.path_for(1).exists(), "the touched entry was most recently used");
        assert!(!warm.path_for(2).exists(), "the LRU entry is the one evicted");
        assert_eq!(warm.evictions().load(Ordering::Relaxed), 1);
        // The evicted key is gone from memory too: a get re-reports miss.
        assert!(warm.get(2).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_fault_still_serves_from_memory() {
        let dir = tmp("diskfull");
        let cache = ResultCache::open(&dir).unwrap();
        rvp_fail::configure(&format!(
            "seed=3;{DISK_FULL_SITE}=io@1,thread=disk_full_fault_still_serves"
        ))
        .expect("valid spec");
        let first = cache.put(5, "{\"x\":5}\n");
        let second = cache.put(6, "{\"x\":6}\n");
        rvp_fail::disable();
        first.expect_err("first write hits the injected disk-full fault");
        second.expect("the fault only arms the first write");
        // The failed write still serves from memory and left no torn
        // file on disk.
        assert_eq!(cache.get(5).unwrap().as_deref(), Some("{\"x\":5}\n"));
        assert!(!cache.path_for(5).exists());
        assert!(cache.path_for(6).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
