//! A deliberately small HTTP/1.1 layer over `std::net` — just enough
//! protocol for a JSON API on loopback or a trusted LAN: request-line +
//! headers + `Content-Length` bodies, keep-alive, and nothing else (no
//! TLS, no chunked bodies, no multipart).
//!
//! Both sides live here: the server-side reader/writer used by the
//! daemon, and a tiny one-shot client used by `rvp-serve-bench` and the
//! integration tests.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rvp_json::Json;

/// Whether an I/O error is a socket read timeout (either kind the
/// platform may report for `SO_RCVTIMEO`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Upper bound on the request line plus all headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body, in bytes. Sweep requests are a few
/// hundred bytes; anything near this limit is hostile or broken.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed off the wire.
#[derive(Debug)]
pub enum HttpError {
    /// Protocol violation; the connection gets a 400 and is closed.
    Malformed(&'static str),
    /// Head or body over the fixed limits; 431/413 and close.
    TooLarge(&'static str),
    /// The peer stalled *mid-request* past the socket read timeout
    /// (slowloris): the connection gets a structured 408 and is closed.
    /// An idle keep-alive connection that times out *between* requests
    /// is reaped silently instead (reported as [`HttpError::Io`]).
    Timeout(&'static str),
    /// The socket itself failed mid-request.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the sender, not normalized).
    pub method: String,
    /// Path component only; any `?query` is split off into `query`.
    pub path: String,
    /// Raw query string after the `?` (empty when none was sent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Reads one request off a connection. `Ok(None)` means the peer
/// closed cleanly between requests (normal end of a keep-alive
/// conversation).
///
/// Generic over any [`BufRead`] so the property tests can drive the
/// parser from in-memory byte vectors; the daemon passes a
/// `BufReader<TcpStream>`, whose read timeout turns a stalled client
/// into [`HttpError::Timeout`] (mid-request) or a silent idle reap
/// (between requests).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    let first = match read_head_line(reader, &mut line, &mut head_bytes) {
        Ok(n) => n,
        // Timed out with nothing read: an idle keep-alive connection,
        // reaped without a response. Partial bytes then a stall is a
        // slowloris request head — that one gets the structured 408.
        Err(HttpError::Io(e)) if is_timeout(&e) => {
            return if line.is_empty() {
                Err(HttpError::Io(e))
            } else {
                Err(HttpError::Timeout("timed out reading request line"))
            };
        }
        Err(e) => return Err(e),
    };
    if first == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_owned();
    let target = parts.next().ok_or(HttpError::Malformed("request line missing target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("request line missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        line.clear();
        let n = match read_head_line(reader, &mut line, &mut head_bytes) {
            Ok(n) => n,
            Err(HttpError::Io(e)) if is_timeout(&e) => {
                return Err(HttpError::Timeout("timed out reading headers"));
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Err(HttpError::Malformed("connection closed inside headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("unparseable content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge("body over limit"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed("transfer-encoding not supported"));
        }
    }

    let mut body = vec![0u8; content_length];
    match reader.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => return Err(HttpError::Timeout("timed out reading body")),
        Err(e) => return Err(HttpError::Io(e)),
    }
    Ok(Some(Request { method, path, query, body, keep_alive }))
}

impl Request {
    /// Value of a `key=value` pair in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Reads one CRLF-terminated head line, charging it against the shared
/// head budget. Returns the number of bytes read (0 at EOF).
fn read_head_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, HttpError> {
    let n = reader.read_line(line)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge("request head over limit"));
    }
    Ok(n)
}

/// Writes a JSON response. The body is streamed into the buffered
/// socket writer via [`Json::to_writer`] after a buffered length pass,
/// so large result payloads never materialize as one `String`.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Json,
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(256);
    body.to_writer(&mut payload)?;
    payload.push(b'\n');
    let mut out = io::BufWriter::new(stream);
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        payload.len(),
    )?;
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(&payload)?;
    out.flush()
}

/// Writes a plain-text response (Prometheus exposition, folded stacks).
pub fn write_text_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    let mut out = io::BufWriter::new(stream);
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    )?;
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// Canonical reason phrase for the handful of statuses the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

// ---------------------------------------------------------------------
// One-shot client (bench + tests).

/// A parsed client-side response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header lines, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Option<Json> {
        Json::parse(std::str::from_utf8(&self.body).ok()?).ok()
    }
}

/// Issues one request over a fresh connection (`Connection: close`) and
/// reads the full response. `timeout` bounds connect and each socket
/// read/write.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut payload = Vec::new();
    if let Some(json) = body {
        json.to_writer(&mut payload)?;
    }
    {
        let mut out = io::BufWriter::new(&stream);
        write!(
            out,
            "{method} {path} HTTP/1.1\r\nHost: rvp-serve\r\nConnection: close\r\nContent-Length: {}\r\n",
            payload.len(),
        )?;
        if !payload.is_empty() {
            out.write_all(b"Content-Type: application/json\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&payload)?;
        out.flush()?;
    }

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line: {line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::other("connection closed inside response headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse { status, headers, body })
}
