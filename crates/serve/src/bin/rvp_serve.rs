//! `rvp-serve`: the simulator as a daemon.
//!
//! ```text
//! rvp-serve [--addr HOST:PORT] [--state-dir DIR] [--workers N]
//!           [--max-queue N] [--max-connections N] [--retries N]
//!           [--deadline-secs N] [--drain-secs N] [--shed-delay-ms N]
//!           [--cache-budget-mb N] [--trace-budget-mb N]
//!           [--read-timeout-secs N]
//! ```
//!
//! Boots the HTTP/1.1 + JSON service of `rvp_serve::server` and runs
//! until stopped. On startup the job journal in the state directory is
//! replayed, so a killed daemon picks its in-flight sweeps back up.
//! SIGTERM (and `POST /shutdown`) triggers a graceful drain: new sweeps
//! get 503, in-flight jobs finish within `--drain-secs`, stragglers are
//! cooperatively squashed with their journal records kept pending for
//! the next start, and the process exits 0.
//!
//! Endpoints:
//!
//! * `POST /sweep` — submit a sweep; `{"wait":true}` blocks for the
//!   results, otherwise a 202 with a job id to poll. `{"deadline_ms":N}`
//!   tightens the server's default job deadline.
//! * `GET /jobs/<id>` — job status and per-cell results.
//! * `DELETE /jobs/<id>` — abort a job; its in-flight cells are
//!   cooperatively squashed (unless another job shares them).
//! * `POST /shutdown` — graceful drain, then exit.
//! * `GET /metrics` — operational counters and latency histogram
//!   (`?format=prom` for Prometheus exposition).
//! * `GET /healthz` — liveness.

use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rvp_core::{fatal, Json, EXIT_IO, EXIT_USAGE};
use rvp_serve::{start, ServeConfig};

const USAGE: &str = "usage: rvp-serve [--addr HOST:PORT] [--state-dir DIR] [--workers N] \
                     [--max-queue N] [--max-connections N] [--retries N] [--deadline-secs N] \
                     [--drain-secs N] [--shed-delay-ms N] [--cache-budget-mb N] \
                     [--trace-budget-mb N] [--read-timeout-secs N]";

fn die(msg: &str, code: u8, fields: &[(&str, Json)]) -> ! {
    let _ = fatal("rvp-serve", msg, code, fields);
    std::process::exit(i32::from(code));
}

/// Set by the SIGTERM handler; the main loop polls it and drains.
static TERMINATED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    // Only an atomic store: everything else happens on the main thread.
    TERMINATED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler via the libc `signal(2)` the process
/// already links (std does), keeping the workspace dependency-free.
fn install_sigterm_handler() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::new("127.0.0.1:7341", "rvp-serve-state");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(USAGE, EXIT_USAGE, &[("missing_value_for", flag.into())]))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--state-dir" => cfg.state_dir = value("--state-dir").into(),
            "--workers" => cfg.workers = parse_count(&value("--workers"), "--workers"),
            "--max-queue" => cfg.max_queue = parse_count(&value("--max-queue"), "--max-queue"),
            "--max-connections" => {
                cfg.max_connections = parse_count(&value("--max-connections"), "--max-connections");
            }
            "--retries" => cfg.retries = parse_count(&value("--retries"), "--retries") as u32,
            "--deadline-secs" => {
                cfg.deadline_secs = parse_u64(&value("--deadline-secs"), "--deadline-secs");
            }
            "--drain-secs" => cfg.drain_secs = parse_u64(&value("--drain-secs"), "--drain-secs"),
            "--shed-delay-ms" => {
                cfg.shed_delay_ms = parse_u64(&value("--shed-delay-ms"), "--shed-delay-ms");
            }
            "--cache-budget-mb" => {
                cfg.cache_budget_bytes =
                    parse_u64(&value("--cache-budget-mb"), "--cache-budget-mb") * 1024 * 1024;
            }
            "--trace-budget-mb" => {
                cfg.trace_budget_bytes =
                    parse_u64(&value("--trace-budget-mb"), "--trace-budget-mb") * 1024 * 1024;
            }
            "--read-timeout-secs" => {
                cfg.read_timeout_secs =
                    parse_count(&value("--read-timeout-secs"), "--read-timeout-secs") as u64;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                return fatal("rvp-serve", USAGE, EXIT_USAGE, &[("unknown_flag", other.into())])
            }
        }
    }

    let state_dir = cfg.state_dir.clone();
    let handle = match start(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            return fatal(
                "rvp-serve",
                "cannot start server",
                EXIT_IO,
                &[
                    ("state_dir", state_dir.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    };
    install_sigterm_handler();
    // The tests and any supervising script parse this exact line to
    // learn the bound port; keep it first and flushed.
    println!(
        "rvp-serve: listening on http://{} (state: {})",
        handle.local_addr(),
        state_dir.display()
    );
    let _ = std::io::stdout().flush();

    // Run until SIGTERM (drain here) or a drain initiated over HTTP
    // (`POST /shutdown`; the handle reports stopping once it lands).
    while !TERMINATED.load(Ordering::SeqCst) && !handle.stopping() {
        std::thread::sleep(Duration::from_millis(50));
    }
    if TERMINATED.load(Ordering::SeqCst) {
        handle.drain();
    } else {
        handle.join();
    }
    ExitCode::SUCCESS
}

fn parse_count(text: &str, flag: &str) -> usize {
    match text.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => die(
            "flag takes a positive integer",
            EXIT_USAGE,
            &[("flag", flag.into()), ("got", text.into())],
        ),
    }
}

/// Like [`parse_count`] but 0 is meaningful ("disabled"/"unlimited").
fn parse_u64(text: &str, flag: &str) -> u64 {
    match text.parse::<u64>() {
        Ok(n) => n,
        Err(_) => die(
            "flag takes a non-negative integer",
            EXIT_USAGE,
            &[("flag", flag.into()), ("got", text.into())],
        ),
    }
}
