//! `rvp-serve`: the simulator as a daemon.
//!
//! ```text
//! rvp-serve [--addr HOST:PORT] [--state-dir DIR] [--workers N]
//!           [--max-queue N] [--max-connections N] [--retries N]
//! ```
//!
//! Boots the HTTP/1.1 + JSON service of `rvp_serve::server` and runs
//! until killed. On startup the job journal in the state directory is
//! replayed, so a killed daemon picks its in-flight sweeps back up.
//!
//! Endpoints:
//!
//! * `POST /sweep` — submit a sweep; `{"wait":true}` blocks for the
//!   results, otherwise a 202 with a job id to poll.
//! * `GET /jobs/<id>` — job status and per-cell results.
//! * `GET /metrics` — operational counters and latency histogram.
//! * `GET /healthz` — liveness.

use std::io::Write;
use std::process::ExitCode;

use rvp_core::{fatal, Json, EXIT_IO, EXIT_USAGE};
use rvp_serve::{start, ServeConfig};

const USAGE: &str = "usage: rvp-serve [--addr HOST:PORT] [--state-dir DIR] [--workers N] \
                     [--max-queue N] [--max-connections N] [--retries N]";

fn die(msg: &str, code: u8, fields: &[(&str, Json)]) -> ! {
    let _ = fatal("rvp-serve", msg, code, fields);
    std::process::exit(i32::from(code));
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::new("127.0.0.1:7341", "rvp-serve-state");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(USAGE, EXIT_USAGE, &[("missing_value_for", flag.into())]))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--state-dir" => cfg.state_dir = value("--state-dir").into(),
            "--workers" => cfg.workers = parse_count(&value("--workers"), "--workers"),
            "--max-queue" => cfg.max_queue = parse_count(&value("--max-queue"), "--max-queue"),
            "--max-connections" => {
                cfg.max_connections = parse_count(&value("--max-connections"), "--max-connections");
            }
            "--retries" => cfg.retries = parse_count(&value("--retries"), "--retries") as u32,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                return fatal("rvp-serve", USAGE, EXIT_USAGE, &[("unknown_flag", other.into())])
            }
        }
    }

    let state_dir = cfg.state_dir.clone();
    let handle = match start(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            return fatal(
                "rvp-serve",
                "cannot start server",
                EXIT_IO,
                &[
                    ("state_dir", state_dir.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    };
    // The tests and any supervising script parse this exact line to
    // learn the bound port; keep it first and flushed.
    println!(
        "rvp-serve: listening on http://{} (state: {})",
        handle.local_addr(),
        state_dir.display()
    );
    let _ = std::io::stdout().flush();
    handle.join();
    ExitCode::SUCCESS
}

fn parse_count(text: &str, flag: &str) -> usize {
    match text.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => die(
            "flag takes a positive integer",
            EXIT_USAGE,
            &[("flag", flag.into()), ("got", text.into())],
        ),
    }
}
