//! `rvp-serve-bench`: load-test harness and performance gate for the
//! serve daemon.
//!
//! ```text
//! rvp-serve-bench [--addr HOST:PORT] [--out FILE] [--clients N]
//!                 [--requests N] [--workers N]
//! ```
//!
//! Without `--addr` the daemon is booted in-process on a loopback port
//! with a throwaway state directory; with it, an externally booted
//! `rvp-serve` is driven instead (the CI job does this). Three phases:
//!
//! 1. **Cold** — one `wait:true` sweep that must actually simulate;
//!    its wall time is the baseline.
//! 2. **Warm** — the identical sweep again; it must be answered 100%
//!    from the result cache, and the cold/warm ratio is the
//!    cache-speedup gate (default ≥10x, `RVP_SERVE_SPEEDUP`).
//! 3. **Load** — `--clients` concurrent connections each issuing
//!    `--requests` cache-hit sweeps; per-request latency lands in a
//!    shared histogram and p99 is gated (default ≤2000 ms,
//!    `RVP_SERVE_P99_MS`). Any non-200 fails the run.
//!
//! Results (and the daemon's own `/metrics` snapshot) are written to
//! `BENCH_serve.json`; a failed gate exits non-zero so CI fails.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rvp_core::{fatal, write_atomic, Json, ToJson, EXIT_CONFIG, EXIT_IO, EXIT_USAGE};
use rvp_obs::LatencyHistogram;
use rvp_serve::http;
use rvp_serve::{start, ServeConfig};

const TIMEOUT: Duration = Duration::from_secs(60);

fn die(msg: &str, code: u8, fields: &[(&str, Json)]) -> ! {
    let _ = fatal("rvp-serve-bench", msg, code, fields);
    std::process::exit(i32::from(code));
}

struct Options {
    addr: Option<SocketAddr>,
    out: String,
    clients: usize,
    requests: usize,
    workers: Option<usize>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(text) => text
            .parse()
            .unwrap_or_else(|_| die("bad env var", EXIT_USAGE, &[(("var"), name.into())])),
        Err(_) => default,
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: None,
        out: "BENCH_serve.json".to_owned(),
        clients: env_u64("RVP_SERVE_CLIENTS", 1000) as usize,
        requests: env_u64("RVP_SERVE_REQS", 3) as usize,
        workers: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| die("missing flag value", EXIT_USAGE, &[("flag", flag.into())]))
        };
        match arg.as_str() {
            "--addr" => {
                let text = value("--addr");
                opts.addr = Some(text.parse().unwrap_or_else(|_| {
                    die("unparseable --addr", EXIT_USAGE, &[("got", text.as_str().into())])
                }));
            }
            "--out" => opts.out = value("--out"),
            "--clients" => opts.clients = parse_count(&value("--clients"), "--clients"),
            "--requests" => opts.requests = parse_count(&value("--requests"), "--requests"),
            "--workers" => opts.workers = Some(parse_count(&value("--workers"), "--workers")),
            other => die("unknown flag", EXIT_USAGE, &[("flag", other.into())]),
        }
    }
    opts
}

fn parse_count(text: &str, flag: &str) -> usize {
    match text.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => die(
            "flag takes a positive integer",
            EXIT_USAGE,
            &[("flag", flag.into()), ("got", text.into())],
        ),
    }
}

/// The sweep every phase submits: two schemes over one workload, with
/// small-but-real budgets so the cold phase simulates for a measurable
/// interval and a cache hit is decisively cheaper.
fn sweep_body() -> Json {
    Json::obj([
        ("workloads", Json::arr([Json::from("li")])),
        ("schemes", Json::arr([Json::from("no_predict"), Json::from("lvp")])),
        ("measure_insts", env_u64("RVP_SERVE_BENCH_MEASURE", 80_000).into()),
        ("profile_insts", env_u64("RVP_SERVE_BENCH_PROFILE", 150_000).into()),
        ("wait", true.into()),
    ])
}

fn timed_sweep(addr: SocketAddr, what: &str) -> (f64, Json) {
    let body = sweep_body();
    let started = Instant::now();
    let response =
        http::request(addr, "POST", "/sweep", Some(&body), TIMEOUT).unwrap_or_else(|e| {
            die(
                "sweep request failed",
                EXIT_IO,
                &[("phase", what.into()), ("error", e.to_string().into())],
            )
        });
    let seconds = started.elapsed().as_secs_f64();
    if response.status != 200 {
        die(
            "sweep not answered with 200",
            EXIT_CONFIG,
            &[
                ("phase", what.into()),
                ("status", u64::from(response.status).into()),
                ("body", String::from_utf8_lossy(&response.body).into_owned().into()),
            ],
        );
    }
    let json = response.json().unwrap_or_else(|| {
        die("sweep response is not JSON", EXIT_CONFIG, &[("phase", what.into())])
    });
    if json.get("failed").and_then(Json::as_u64) != Some(0) {
        die(
            "sweep contains failed cells",
            EXIT_CONFIG,
            &[("phase", what.into()), ("body", json.to_string().into())],
        );
    }
    (seconds, json)
}

fn main() -> ExitCode {
    let opts = parse_args();

    // Boot in-process unless we were pointed at a live daemon.
    let mut local = None;
    let state_dir = std::env::temp_dir().join(format!("rvp-serve-bench-{}", std::process::id()));
    let addr = match opts.addr {
        Some(addr) => addr,
        None => {
            let _ = std::fs::remove_dir_all(&state_dir);
            let mut cfg = ServeConfig::new("127.0.0.1:0", &state_dir);
            if let Some(workers) = opts.workers {
                cfg.workers = workers;
            }
            let handle = start(cfg).unwrap_or_else(|e| {
                die("cannot boot in-process daemon", EXIT_IO, &[("error", e.to_string().into())])
            });
            let addr = handle.local_addr();
            local = Some(handle);
            addr
        }
    };

    // Phase 1: cold (must simulate).
    let (cold_seconds, cold) = timed_sweep(addr, "cold");
    let total_cells = cold.get("total").and_then(Json::as_u64).unwrap_or(0);
    println!(
        "rvp-serve-bench: cold sweep {total_cells} cells in {cold_seconds:.3}s \
         (computed {}, cached {})",
        cold.get("computed").and_then(Json::as_u64).unwrap_or(0),
        cold.get("cached").and_then(Json::as_u64).unwrap_or(0),
    );

    // Phase 2: warm (must be answered fully from the cache).
    let (warm_seconds, warm) = timed_sweep(addr, "warm");
    let warm_cached = warm.get("cached").and_then(Json::as_u64).unwrap_or(0);
    let fully_cached = warm_cached == total_cells && total_cells > 0;
    let speedup = if warm_seconds > 0.0 { cold_seconds / warm_seconds } else { f64::INFINITY };
    println!(
        "rvp-serve-bench: warm sweep in {warm_seconds:.4}s ({warm_cached}/{total_cells} cached, \
         {speedup:.1}x vs cold)"
    );

    // Phase 3: concurrent load, all cache hits.
    let histogram = Arc::new(LatencyHistogram::new());
    let errors = Arc::new(AtomicU64::new(0));
    let load_started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.clients {
            let histogram = Arc::clone(&histogram);
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let body = sweep_body();
                for _ in 0..opts.requests {
                    let started = Instant::now();
                    match http::request(addr, "POST", "/sweep", Some(&body), TIMEOUT) {
                        Ok(response) if response.status == 200 => {
                            let us = started.elapsed().as_micros().min(u128::from(u64::MAX));
                            histogram.record_us(us as u64);
                        }
                        Ok(_) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let load_seconds = load_started.elapsed().as_secs_f64();
    let total_requests = (opts.clients * opts.requests) as u64;
    let error_count = errors.load(Ordering::Relaxed);
    let throughput = if load_seconds > 0.0 { total_requests as f64 / load_seconds } else { 0.0 };
    println!(
        "rvp-serve-bench: {} clients x {} requests in {load_seconds:.3}s \
         ({throughput:.0} req/s, {error_count} errors, p50 {}us, p99 {}us)",
        opts.clients,
        opts.requests,
        histogram.quantile_us(0.50),
        histogram.quantile_us(0.99),
    );

    // Daemon-side view, for the artifact.
    let server_metrics = http::request(addr, "GET", "/metrics", None, TIMEOUT)
        .ok()
        .and_then(|r| r.json())
        .unwrap_or_else(|| Json::obj([("error", "metrics unavailable".into())]));

    // Gates.
    let min_speedup = env_u64("RVP_SERVE_SPEEDUP", 10) as f64;
    let max_p99_ms = env_u64("RVP_SERVE_P99_MS", 2000);
    let p99_us = histogram.quantile_us(0.99);
    let pass_speedup = fully_cached && speedup >= min_speedup;
    let pass_p99 = p99_us <= max_p99_ms * 1000;
    let pass_errors = error_count == 0;
    let pass = pass_speedup && pass_p99 && pass_errors;

    let report = Json::obj([
        ("clients", (opts.clients as u64).into()),
        ("requests_per_client", (opts.requests as u64).into()),
        ("total_requests", total_requests.into()),
        ("errors", error_count.into()),
        ("cold_seconds", cold_seconds.into()),
        ("warm_seconds", warm_seconds.into()),
        ("warm_fully_cached", fully_cached.into()),
        ("cache_speedup", speedup.into()),
        ("load_seconds", load_seconds.into()),
        ("throughput_rps", throughput.into()),
        ("latency", histogram.to_json()),
        (
            "gates",
            Json::obj([
                ("min_cache_speedup", min_speedup.into()),
                ("max_p99_ms", max_p99_ms.into()),
                ("pass_speedup", pass_speedup.into()),
                ("pass_p99", pass_p99.into()),
                ("pass_errors", pass_errors.into()),
            ]),
        ),
        ("pass", pass.into()),
        ("server_metrics", server_metrics),
    ]);
    let text = format!("{report}\n");
    if let Err(e) = write_atomic(std::path::Path::new(&opts.out), text.as_bytes()) {
        die(
            "cannot write bench report",
            EXIT_IO,
            &[("path", opts.out.as_str().into()), ("error", e.to_string().into())],
        );
    }
    println!("rvp-serve-bench: report -> {}", opts.out);

    if let Some(handle) = local {
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rvp-serve-bench: GATE FAILURE (speedup {speedup:.1} >= {min_speedup}? {pass_speedup}; \
             p99 {p99_us}us <= {}us? {pass_p99}; errors {error_count} == 0? {pass_errors})",
            max_p99_ms * 1000,
        );
        ExitCode::FAILURE
    }
}
