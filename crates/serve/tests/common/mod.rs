//! Shared scaffolding for the serve daemon integration tests: a
//! scratch directory, a daemon process wrapper with hermetic
//! environment, and small HTTP/JSON helpers.
//!
//! Each test binary compiles its own copy, so not every helper is
//! used from every binary.
#![allow(dead_code)]

use std::collections::BTreeMap;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rvp_core::Json;
use rvp_serve::http::{self, ClientResponse};

/// A scratch directory unique to one test, removed on drop.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(test: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("rvp-serve-test-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned `rvp-serve` process bound to an ephemeral port.
pub struct Daemon {
    child: Child,
    pub addr: SocketAddr,
}

impl Daemon {
    /// Spawns the daemon on `127.0.0.1:0` with a hermetic environment,
    /// parsing the bound port off its first stdout line.
    pub fn spawn(state_dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_rvp-serve"));
        cmd.args(["--addr", "127.0.0.1:0", "--state-dir"])
            .arg(state_dir)
            .args(extra_args)
            .env_remove("RVP_FAIL")
            .env_remove("RVP_TRACE_DIR")
            .env_remove("RVP_SOURCE")
            .env_remove("RVP_JSON_DIR")
            .env_remove("RVP_LOG")
            .env_remove("RVP_LOG_FILE")
            .env_remove("RVP_MEASURE_INSTS")
            .env_remove("RVP_PROFILE_INSTS")
            .env_remove("RVP_THREADS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn rvp-serve");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("read listen line");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable listen line: {line:?}"));
        Daemon { child, addr }
    }

    /// SIGKILL — the crash the journal must survive.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// SIGTERM — the graceful-drain signal. The daemon keeps running;
    /// follow with [`Daemon::wait_exit`] to observe the drain finish.
    pub fn sigterm(&self) {
        let status = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
    }

    /// Waits for the daemon to exit on its own, panicking after
    /// `timeout`. Returns the exit status.
    pub fn wait_exit(&mut self, timeout: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < deadline, "daemon did not exit within {timeout:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

pub const TIMEOUT: Duration = Duration::from_secs(60);

/// One HTTP request against the daemon, panicking on transport errors.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> ClientResponse {
    http::request(addr, method, path, body, TIMEOUT).expect("http request")
}

/// The standard 2-cell test sweep (small but real budgets).
pub fn sweep_body(wait: bool) -> Json {
    Json::obj([
        ("workloads", Json::arr([Json::from("li")])),
        ("schemes", Json::arr([Json::from("no_predict"), Json::from("lvp")])),
        ("measure_insts", 30_000u64.into()),
        ("profile_insts", 60_000u64.into()),
        ("wait", wait.into()),
    ])
}

/// Polls `probe` until it returns true or `timeout` elapses.
pub fn wait_for(what: &str, timeout: Duration, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

/// All result-cache entries under a daemon state dir (name -> bytes).
pub fn cache_files(state_dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let dir = state_dir.join("cache");
    let Ok(entries) = std::fs::read_dir(&dir) else { return BTreeMap::new() };
    entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| {
            let name = p.file_name().expect("file name").to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("read cache file"))
        })
        .collect()
}
