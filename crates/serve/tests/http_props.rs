//! Property tests for the two parsers that face untrusted bytes: the
//! HTTP head/body reader and the sweep-spec JSON validator. The
//! invariant under fuzz is the containment contract — *never panic*;
//! every rejection is a structured error the daemon turns into a 400
//! (or 431/413), not a crash that takes a worker or the accept loop
//! down with it.

use std::io::Cursor;

use proptest::prelude::*;
use rvp_core::Runner;
use rvp_json::Json;
use rvp_serve::http::{read_request, HttpError, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use rvp_serve::SweepSpec;

/// Arbitrary raw bytes, biased toward HTTP-ish octets so the fuzzer
/// spends its cases past the first byte of the request line.
fn wire_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512).prop_map(|mut bytes| {
        for b in bytes.iter_mut() {
            // Fold half the space into printable ASCII + CR/LF so
            // request lines, header separators and bodies all occur.
            if *b & 1 == 0 {
                *b = match *b % 6 {
                    0 => b'\r',
                    1 => b'\n',
                    2 => b' ',
                    3 => b':',
                    4 => b'/',
                    _ => b'A' + (*b % 26),
                };
            }
        }
        bytes
    })
}

/// Structured near-miss requests: a valid shape with one knob bent
/// (method casing, huge Content-Length, missing CRLF, stray NULs).
fn near_http() -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<u32>(),
        any::<u8>(),
    )
        .prop_map(|(body, clen, variant)| {
            let clen = match variant % 5 {
                0 => body.len() as u64,
                1 => u64::from(clen),
                2 => MAX_BODY_BYTES as u64 + 1,
                3 => u64::MAX,
                _ => 0,
            };
            let sep = if variant & 0x20 != 0 { "\r\n" } else { "\n" };
            let mut req = format!(
                "POST /sweep HTTP/1.1{sep}Host: x{sep}Content-Length: {clen}{sep}{sep}"
            )
            .into_bytes();
            if variant & 0x40 != 0 {
                req.insert(0, 0); // leading NUL: not a token char
            }
            req.extend_from_slice(&body);
            req
        })
}

/// Every parse of arbitrary bytes must land in the structured error
/// space (or succeed, or report clean EOF) — no panics, no unclassified
/// states. Exercised via `Cursor` so no sockets are involved.
fn assert_contained(bytes: &[u8]) {
    let mut cursor = Cursor::new(bytes);
    match read_request(&mut cursor) {
        Ok(Some(req)) => {
            // A parsed request obeyed both limits on the way in.
            assert!(req.body.len() <= MAX_BODY_BYTES);
            assert!(req.method.len() + req.path.len() + req.query.len() <= MAX_HEAD_BYTES);
        }
        Ok(None) => {} // clean EOF between requests
        Err(HttpError::Malformed(why)) | Err(HttpError::TooLarge(why))
        | Err(HttpError::Timeout(why)) => {
            assert!(!why.is_empty(), "structured errors must carry a reason");
        }
        Err(HttpError::Io(_)) => {} // truncated mid-request: connection-level
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn head_parser_never_panics_on_arbitrary_bytes(bytes in wire_bytes()) {
        assert_contained(&bytes);
    }

    #[test]
    fn head_parser_never_panics_on_near_miss_requests(bytes in near_http()) {
        assert_contained(&bytes);
    }

    #[test]
    fn oversized_heads_are_rejected_as_too_large(pad in 0usize..4096) {
        let mut req = b"GET /".to_vec();
        req.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + pad));
        req.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let mut cursor = Cursor::new(&req[..]);
        prop_assert!(matches!(
            read_request(&mut cursor),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn sweep_spec_never_panics_on_arbitrary_json_text(bytes in wire_bytes()) {
        let base = Runner { traces: None, ..Runner::default() };
        let text = String::from_utf8_lossy(&bytes);
        // Json::parse rejecting the text IS the 400 path; only a parsed
        // document reaches the spec validator.
        if let Ok(body) = Json::parse(&text) {
            match SweepSpec::from_json(&body, &base) {
                Ok(spec) => prop_assert!(!spec.workloads.is_empty()),
                Err(msg) => prop_assert!(!msg.is_empty()),
            }
        }
    }

    #[test]
    fn sweep_spec_never_panics_on_structured_documents(
        workloads in proptest::collection::vec(any::<u16>(), 0..4),
        schemes in proptest::collection::vec(any::<u16>(), 0..4),
        threshold in any::<u64>(),
        insts in any::<u64>(),
        scale in any::<u64>(),
    ) {
        let base = Runner { traces: None, ..Runner::default() };
        // Names drawn from a pool of valid, near-valid and junk tokens,
        // so both registry hits and 400s occur in the same document.
        let name = |n: u16| match n % 5 {
            0 => "li".to_owned(),
            1 => "lvp".to_owned(),
            2 => "drvp_all:entries=4096".to_owned(),
            3 => String::new(),
            _ => format!("junk_{n}"),
        };
        let body = Json::obj(vec![
            ("workloads", Json::arr(workloads.into_iter().map(|n| Json::from(name(n))))),
            ("schemes", Json::arr(schemes.into_iter().map(|n| Json::from(name(n))))),
            ("threshold", (threshold as f64 / u64::MAX as f64).into()),
            ("measure_insts", insts.into()),
            ("scale", scale.into()),
        ]);
        match SweepSpec::from_json(&body, &base) {
            Ok(spec) => {
                // Whatever validated must be within admission bounds.
                prop_assert!(spec.measure_insts <= rvp_serve::spec::MAX_INSTS);
                prop_assert!(spec.workload_scale <= rvp_serve::spec::MAX_SCALE);
            }
            Err(msg) => prop_assert!(!msg.is_empty()),
        }
    }
}
