//! End-to-end tests for the serve daemon over real loopback HTTP: the
//! API surface, the content-addressed cache, admission control, and
//! the kill-SIGKILL-restart-resume contract.

mod common;

use std::time::Duration;

use common::{cache_files, request, sweep_body, wait_for, Daemon, TempDir};
use rvp_core::Json;

#[test]
fn sweep_computes_then_repeat_is_all_cache_hits() {
    let dir = TempDir::new("api");
    let daemon = Daemon::spawn(dir.path(), &["--workers", "2"], &[]);

    // Readiness: a fresh daemon has an empty journal to replay, so
    // `/readyz` flips to 200 almost immediately — but it is a distinct
    // endpoint from `/healthz` and reports `ready: true`.
    wait_for("daemon readiness", Duration::from_secs(30), || {
        request(daemon.addr, "GET", "/readyz", None).status == 200
    });
    let ready = request(daemon.addr, "GET", "/readyz", None).json().expect("readyz json");
    assert_eq!(ready.get("ready").and_then(Json::as_bool), Some(true));

    // Cold: both cells simulate.
    let cold = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(true)));
    assert_eq!(cold.status, 200, "{:?}", String::from_utf8_lossy(&cold.body));
    let cold = cold.json().expect("cold json");
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(cold.get("computed").and_then(Json::as_u64), Some(2));
    assert_eq!(cold.get("cached").and_then(Json::as_u64), Some(0));
    assert_eq!(cold.get("failed").and_then(Json::as_u64), Some(0));
    let cells = cold.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(cells.len(), 2);
    for cell in cells {
        let result = cell.get("result").expect("cell result");
        assert!(result.get("stats").is_some(), "cell carries full RunResult JSON");
    }

    // Warm: the identical sweep is answered entirely from the cache.
    let warm = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(true)));
    let warm = warm.json().expect("warm json");
    assert_eq!(warm.get("cached").and_then(Json::as_u64), Some(2));
    assert_eq!(warm.get("computed").and_then(Json::as_u64), Some(0));

    // A different knob is a different content address: it simulates.
    let mut other = sweep_body(true);
    if let Json::Obj(pairs) = &mut other {
        for (k, v) in pairs.iter_mut() {
            if k == "measure_insts" {
                *v = 31_000u64.into();
            }
        }
    }
    let other = request(daemon.addr, "POST", "/sweep", Some(&other)).json().expect("json");
    assert_eq!(other.get("computed").and_then(Json::as_u64), Some(2));

    // Metrics reflect all of the above.
    let metrics = request(daemon.addr, "GET", "/metrics", None).json().expect("metrics json");
    assert!(metrics.get("cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 2);
    assert!(metrics.get("cells_computed").and_then(Json::as_u64).unwrap_or(0) >= 4);
    assert!(
        metrics
            .get("request_latency")
            .and_then(|l| l.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 3
    );

    // The unified registry speaks Prometheus text exposition.
    let prom = request(daemon.addr, "GET", "/metrics?format=prom", None);
    assert_eq!(prom.status, 200);
    assert!(prom.header("content-type").unwrap_or("").starts_with("text/plain"));
    let prom = String::from_utf8(prom.body).expect("prometheus text is UTF-8");
    assert!(prom.contains("# TYPE rvp_serve_requests_total counter"), "{prom}");
    assert!(prom.contains("rvp_serve_cells_computed_total"), "{prom}");
    assert!(prom.contains("rvp_source_captures_total{workload=\"li\"}"), "{prom}");

    // The span tracer saw the whole request lifecycle: the exported
    // Chrome trace parses, and the serve → grid → sim span chain links
    // up through parent ids, across the handler/worker thread handoff.
    let trace = request(daemon.addr, "GET", "/trace", None).json().expect("trace json");
    let events = trace.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert!(!events.is_empty(), "daemon trace has spans");
    let span_ids = |name: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .filter_map(|e| e.get("args").and_then(|a| a.get("span_id")).and_then(Json::as_u64))
            .collect()
    };
    let parent_ids = |name: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .filter_map(|e| e.get("args").and_then(|a| a.get("parent_id")).and_then(Json::as_u64))
            .collect()
    };
    for name in ["serve.request", "serve.admission", "serve.cell.exec", "grid.cell.run", "sim.run"]
    {
        assert!(!span_ids(name).is_empty(), "trace has {name} spans");
    }
    let requests = span_ids("serve.request");
    assert!(
        parent_ids("serve.cell.exec").iter().any(|p| requests.contains(p)),
        "worker-side exec spans parent onto a request span"
    );
    let execs = span_ids("serve.cell.exec");
    assert!(
        parent_ids("grid.cell.run").iter().any(|p| execs.contains(p)),
        "grid cell spans nest under the exec span"
    );
    assert!(
        parent_ids("serve.queue.wait").iter().any(|p| requests.contains(p)),
        "queue-wait spans attribute back to the admitting request"
    );
    let folded = request(daemon.addr, "GET", "/trace?format=folded", None);
    assert_eq!(folded.status, 200);
    let folded = String::from_utf8(folded.body).expect("folded text is UTF-8");
    assert!(folded.lines().any(|l| l.contains("serve.request")), "{folded}");

    // API edges: health, unknown job, bad bodies, wrong methods.
    let health = request(daemon.addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(request(daemon.addr, "GET", "/jobs/999999", None).status, 404);
    assert_eq!(request(daemon.addr, "GET", "/nope", None).status, 404);
    assert_eq!(request(daemon.addr, "GET", "/sweep", None).status, 405);
    let bad =
        request(daemon.addr, "POST", "/sweep", Some(&Json::obj([("workloads", 7u64.into())])));
    assert_eq!(bad.status, 400);
    assert!(bad.json().expect("error json").get("error").is_some());
    let unknown = request(
        daemon.addr,
        "POST",
        "/sweep",
        Some(&Json::obj([
            ("workloads", Json::arr([Json::from("nope")])),
            ("schemes", Json::arr([Json::from("lvp")])),
        ])),
    );
    assert_eq!(unknown.status, 400);
}

#[test]
fn sigkill_mid_sweep_then_restart_resumes_bit_identical() {
    // Reference: the same sweep run to completion without interruption.
    let dir_ref = TempDir::new("resume-ref");
    let mut reference = Daemon::spawn(dir_ref.path(), &["--workers", "1"], &[]);
    let done = request(reference.addr, "POST", "/sweep", Some(&big_sweep(true)));
    assert_eq!(done.status, 200);
    let done = done.json().expect("reference json");
    assert_eq!(done.get("failed").and_then(Json::as_u64), Some(0));
    let want = cache_files(dir_ref.path());
    assert_eq!(want.len(), 6, "reference run caches every cell");
    reference.kill();

    // Victim: submit asynchronously, SIGKILL once at least one cell has
    // landed, restart on the same state dir.
    let dir = TempDir::new("resume-victim");
    let mut victim = Daemon::spawn(dir.path(), &["--workers", "1"], &[]);
    let accepted = request(victim.addr, "POST", "/sweep", Some(&big_sweep(false)));
    assert_eq!(accepted.status, 202, "{:?}", String::from_utf8_lossy(&accepted.body));
    let job_id = accepted.json().expect("json").get("job").and_then(Json::as_u64).expect("job id");
    wait_for("first cell result on disk", Duration::from_secs(120), || {
        !cache_files(dir.path()).is_empty()
    });
    victim.kill();
    let partial = cache_files(dir.path());
    assert!(partial.len() < 6, "kill landed after the whole sweep finished; budgets too small");

    // Restart: the journal re-submits the job under its original id;
    // finished cells come from the cache, the rest re-simulate.
    let revived = Daemon::spawn(dir.path(), &["--workers", "1"], &[]);
    wait_for("resumed job to finish", Duration::from_secs(240), || {
        let response = request(revived.addr, "GET", &format!("/jobs/{job_id}"), None);
        assert_ne!(response.status, 404, "resumed daemon must remember job {job_id}");
        response.json().and_then(|j| j.get("status").map(|s| s.as_str() == Some("done")))
            == Some(true)
    });
    let job = request(revived.addr, "GET", &format!("/jobs/{job_id}"), None).json().expect("json");
    assert_eq!(job.get("failed").and_then(Json::as_u64), Some(0));
    assert_eq!(job.get("total").and_then(Json::as_u64), Some(6));

    // The merged results are bit-identical with the uninterrupted run.
    let got = cache_files(dir.path());
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "same content addresses"
    );
    for (name, bytes) in &want {
        assert_eq!(&got[name], bytes, "cache entry {name} differs from uninterrupted run");
    }

    // Resubmitting the whole sweep is now a 100% cache hit.
    let repeat = request(revived.addr, "POST", "/sweep", Some(&big_sweep(true)));
    let repeat = repeat.json().expect("repeat json");
    assert_eq!(repeat.get("cached").and_then(Json::as_u64), Some(6));
    assert_eq!(repeat.get("computed").and_then(Json::as_u64), Some(0));
    let metrics = request(revived.addr, "GET", "/metrics", None).json().expect("metrics");
    assert!(metrics.get("jobs_resumed").and_then(Json::as_u64).unwrap_or(0) >= 1);
}

/// 2 workloads x 3 schemes with budgets big enough that a single
/// debug-build worker takes a while — room to SIGKILL mid-sweep.
fn big_sweep(wait: bool) -> Json {
    Json::obj([
        ("workloads", Json::arr([Json::from("li"), Json::from("go")])),
        (
            "schemes",
            Json::arr([Json::from("no_predict"), Json::from("lvp"), Json::from("drvp_all")]),
        ),
        ("measure_insts", 250_000u64.into()),
        ("profile_insts", 400_000u64.into()),
        ("wait", wait.into()),
    ])
}

#[test]
fn full_admission_queue_rejects_with_retry_after() {
    let dir = TempDir::new("backpressure");
    let daemon = Daemon::spawn(dir.path(), &["--workers", "1", "--max-queue", "1"], &[]);

    // Two misses against a one-slot queue: rejected up front, with a
    // Retry-After hint and a structured body.
    let rejected = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(false)));
    assert_eq!(rejected.status, 429, "{:?}", String::from_utf8_lossy(&rejected.body));
    assert_eq!(rejected.header("retry-after"), Some("1"));
    let body = rejected.json().expect("429 body json");
    assert!(body.get("error").is_some());
    assert_eq!(body.get("needed").and_then(Json::as_u64), Some(2));

    // A sweep that fits is admitted and completes.
    let small = Json::obj([
        ("workloads", Json::arr([Json::from("li")])),
        ("schemes", Json::arr([Json::from("no_predict")])),
        ("measure_insts", 20_000u64.into()),
        ("profile_insts", 40_000u64.into()),
        ("wait", true.into()),
    ]);
    let ok = request(daemon.addr, "POST", "/sweep", Some(&small));
    assert_eq!(ok.status, 200);
    let metrics = request(daemon.addr, "GET", "/metrics", None).json().expect("metrics");
    assert!(metrics.get("rejected").and_then(Json::as_u64).unwrap_or(0) >= 1);
}
