//! Runtime-governance end-to-end tests: slowloris defence, cooperative
//! job cancellation (DELETE), request deadlines, graceful drain under
//! load (SIGTERM → exit 0 with zero lost jobs), adaptive overload
//! shedding, and byte-budgeted cache eviction — all over real loopback
//! HTTP against the spawned daemon (or, for the budget test, an
//! in-process server).

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

use common::{cache_files, request, wait_for, Daemon, TempDir};
use rvp_core::Json;

/// A one-cell sweep (li × no_predict) whose content address is made
/// unique by `threshold` — 500 distinct thresholds are 500 distinct
/// cells in the result cache.
fn one_cell(threshold: f64, wait: bool) -> Json {
    Json::obj([
        ("workloads", Json::arr([Json::from("li")])),
        ("schemes", Json::arr([Json::from("no_predict")])),
        ("measure_insts", 4_000u64.into()),
        ("profile_insts", 4_000u64.into()),
        ("threshold", threshold.into()),
        ("wait", wait.into()),
    ])
}

/// A deliberately long sampled cell: a heavily scaled workload with a
/// large measurement budget keeps the worker in the (cancel-polled)
/// sampling planner for seconds of debug-build wall time.
fn long_sampled_cell(extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("workloads", Json::arr([Json::from("li")])),
        ("schemes", Json::arr([Json::from("no_predict")])),
        ("measure_insts", 20_000_000u64.into()),
        ("profile_insts", 4_000u64.into()),
        ("sample", "interval=30000".into()),
        ("scale", 512u64.into()),
    ];
    for (k, v) in extra {
        fields.push((k, v.clone()));
    }
    Json::obj(fields)
}

fn metrics_json(daemon: &Daemon) -> Json {
    request(daemon.addr, "GET", "/metrics", None).json().expect("metrics json")
}

fn metric(daemon: &Daemon, key: &str) -> u64 {
    metrics_json(daemon).get(key).and_then(Json::as_u64).unwrap_or(0)
}

#[test]
fn slowloris_gets_408_and_idle_keepalive_is_reaped_silently() {
    let dir = TempDir::new("slowloris");
    let daemon = Daemon::spawn(dir.path(), &["--workers", "1", "--read-timeout-secs", "1"], &[]);
    wait_for("readiness", Duration::from_secs(30), || {
        request(daemon.addr, "GET", "/readyz", None).status == 200
    });

    // A client that stalls mid-request-line holds a handler hostage
    // only until the read timeout, then gets a structured 408.
    let mut stalled = TcpStream::connect(daemon.addr).expect("connect");
    stalled.write_all(b"POST /sweep HTTP/1.1\r\nContent-Len").expect("partial write");
    stalled.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut reply = Vec::new();
    stalled.read_to_end(&mut reply).expect("read 408 then close");
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 408"), "stalled client reply: {reply:?}");
    assert!(reply.contains("error"), "408 carries a structured body: {reply:?}");

    // An idle keep-alive connection *between* requests is reaped
    // silently: the first request is answered, then the socket closes
    // with no 408 on the wire.
    let mut idle = TcpStream::connect(daemon.addr).expect("connect");
    idle.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
    idle.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut wire = Vec::new();
    idle.read_to_end(&mut wire).expect("read until idle reap closes the socket");
    let wire = String::from_utf8_lossy(&wire);
    assert!(wire.starts_with("HTTP/1.1 200"), "healthz answered first: {wire:?}");
    assert!(!wire.contains("408"), "idle reap must be silent, got: {wire:?}");

    assert!(metric(&daemon, "request_timeouts") >= 1, "slowloris counted");
}

#[test]
fn delete_aborts_a_long_cell_and_frees_its_worker_within_250ms() {
    let dir = TempDir::new("cancel");
    let daemon = Daemon::spawn(dir.path(), &["--workers", "1"], &[]);
    wait_for("readiness", Duration::from_secs(30), || {
        request(daemon.addr, "GET", "/readyz", None).status == 200
    });

    let accepted = request(daemon.addr, "POST", "/sweep", Some(&long_sampled_cell(&[])));
    assert_eq!(accepted.status, 202, "{:?}", String::from_utf8_lossy(&accepted.body));
    let id = accepted.json().expect("json").get("job").and_then(Json::as_u64).expect("job id");

    // Let the sole worker sink into the sampling planner (it polls the
    // cancel token every few thousand committed instructions). The
    // queue-delay EWMA is observed at *dequeue* — `queue_depth` only
    // drops at completion, which is exactly what we must not wait for.
    wait_for("cell dequeued", Duration::from_secs(30), || {
        metric(&daemon, "queue_delay_ewma_us") > 0
    });
    std::thread::sleep(Duration::from_secs(1));

    let gone = request(daemon.addr, "DELETE", &format!("/jobs/{id}"), None);
    assert_eq!(gone.status, 200, "{:?}", String::from_utf8_lossy(&gone.body));
    let gone = gone.json().expect("delete json");
    assert_eq!(gone.get("cancelled").and_then(Json::as_bool), Some(true));

    // The acceptance bar: the worker observes the squash within 250ms.
    let t0 = Instant::now();
    while metric(&daemon, "cells_cancelled") < 1 {
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "worker still busy {:?} after DELETE",
            t0.elapsed()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The job is terminally failed (not lost, not still running) and
    // the freed worker immediately serves new work.
    let job = request(daemon.addr, "GET", &format!("/jobs/{id}"), None).json().expect("job json");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(job.get("failed").and_then(Json::as_u64), Some(1));
    let quick = request(daemon.addr, "POST", "/sweep", Some(&one_cell(0.9, true)));
    assert_eq!(quick.status, 200);
    assert!(metric(&daemon, "jobs_cancelled") >= 1);
}

#[test]
fn deadline_ms_squashes_an_overrunning_job_into_a_structured_failure() {
    let dir = TempDir::new("deadline");
    let daemon = Daemon::spawn(dir.path(), &["--workers", "1"], &[]);
    wait_for("readiness", Duration::from_secs(30), || {
        request(daemon.addr, "GET", "/readyz", None).status == 200
    });

    let body = long_sampled_cell(&[("deadline_ms", 300u64.into()), ("wait", true.into())]);
    let done = request(daemon.addr, "POST", "/sweep", Some(&body));
    assert_eq!(done.status, 200, "{:?}", String::from_utf8_lossy(&done.body));
    let done = done.json().expect("json");
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(done.get("failed").and_then(Json::as_u64), Some(1));
    let cell = &done.get("cells").and_then(Json::as_arr).expect("cells")[0];
    let error = cell.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(error.contains("deadline"), "cell error names the deadline: {error:?}");
    assert!(metric(&daemon, "cells_cancelled") >= 1);
}

#[test]
fn overload_shedding_rejects_with_429_before_the_queue_cap() {
    let dir = TempDir::new("shed");
    let daemon = Daemon::spawn(
        dir.path(),
        &["--workers", "1", "--max-queue", "1000", "--shed-delay-ms", "1"],
        &[],
    );
    wait_for("readiness", Duration::from_secs(30), || {
        request(daemon.addr, "GET", "/readyz", None).status == 200
    });

    // Seed the queue-delay EWMA: a burst, then a pause so the single
    // worker dequeues a few cells that waited measurably.
    for i in 0..10 {
        let r = request(daemon.addr, "POST", "/sweep", Some(&one_cell(0.5 + i as f64 * 1e-4, false)));
        assert!(r.status == 202, "seed burst admitted, got {}", r.status);
    }
    std::thread::sleep(Duration::from_millis(500));

    // Keep flooding: well before the 1000-cell cap, the governor sheds.
    let mut shed = None;
    for i in 10..200 {
        let r = request(daemon.addr, "POST", "/sweep", Some(&one_cell(0.5 + i as f64 * 1e-4, false)));
        if r.status == 429 {
            shed = Some(r);
            break;
        }
        assert_eq!(r.status, 202);
    }
    let shed = shed.expect("governor shed a request well before the queue cap");
    assert!(shed.header("retry-after").is_some());
    let body = shed.json().expect("shed body json");
    let error = body.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(error.contains("overloaded"), "shed, not queue-full: {error:?}");
    assert!(body.get("queue_delay_ms").is_some());
    assert!(metric(&daemon, "shed") >= 1);
}

#[test]
fn sigterm_drain_exits_zero_and_loses_none_of_500_admitted_jobs() {
    let dir = TempDir::new("drain");
    let args =
        ["--workers", "2", "--max-queue", "4000", "--drain-secs", "1", "--retries", "1"];
    let mut daemon = Daemon::spawn(dir.path(), &args, &[]);
    wait_for("readiness", Duration::from_secs(30), || {
        request(daemon.addr, "GET", "/readyz", None).status == 200
    });

    // Admit 500 unique one-cell jobs (unique threshold ⇒ unique content
    // address); the two workers chew concurrently while we submit.
    const JOBS: usize = 500;
    let thresholds: Vec<f64> = (0..JOBS).map(|i| 0.5 + i as f64 * 1e-4).collect();
    for &t in &thresholds {
        let r = request(daemon.addr, "POST", "/sweep", Some(&one_cell(t, false)));
        assert_eq!(r.status, 202, "admission failed: {:?}", String::from_utf8_lossy(&r.body));
        r.json().expect("json").get("job").and_then(Json::as_u64).expect("job id");
    }

    // SIGTERM mid-load. While the drain window is open the daemon must
    // refuse new work with 503 + Retry-After (replays are exempt).
    let t0 = Instant::now();
    daemon.sigterm();
    let mut saw_503 = false;
    for _ in 0..100 {
        let Ok(r) = rvp_serve::http::request(
            daemon.addr,
            "POST",
            "/sweep",
            Some(&one_cell(thresholds[0], false)),
            Duration::from_secs(5),
        ) else {
            break; // daemon already exited
        };
        if r.status == 503 {
            assert!(r.header("retry-after").is_some(), "503 carries Retry-After");
            saw_503 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_503, "draining daemon refused new sweeps with 503");

    // Bounded, clean exit: drain window (1s) + squash + grace, well
    // under 30s, with status 0.
    let status = daemon.wait_exit(Duration::from_secs(30));
    assert!(status.success(), "drain exit status: {status:?}");
    assert!(t0.elapsed() < Duration::from_secs(30));

    // Whatever completed before the squash is already content-addressed
    // on disk; the rest must be journaled, not lost.
    let at_exit = cache_files(dir.path());
    assert!(at_exit.len() < JOBS, "all {JOBS} jobs finished before SIGTERM; grow the load");

    // Restart on the same state dir: the journal replays every pending
    // job. Eventually all 500 unique cells are cached.
    let revived = Daemon::spawn(dir.path(), &args, &[]);
    wait_for("replayed jobs to finish", Duration::from_secs(300), || {
        cache_files(dir.path()).len() >= JOBS
    });
    let finished = cache_files(dir.path());
    assert_eq!(finished.len(), JOBS, "exactly one cache entry per admitted job");

    // Bit-identical across the drain: entries finished before SIGTERM
    // are byte-for-byte unchanged after the resume completes.
    for (name, bytes) in &at_exit {
        assert_eq!(
            finished.get(name),
            Some(bytes),
            "cache entry {name} changed across drain/restart"
        );
    }

    // Re-sweeping the whole load is now pure cache hits — nothing lost,
    // nothing recomputed.
    for &t in thresholds.iter().take(5) {
        let warm = request(revived.addr, "POST", "/sweep", Some(&one_cell(t, true)));
        let warm = warm.json().expect("warm json");
        assert_eq!(warm.get("cached").and_then(Json::as_u64), Some(1), "threshold {t}");
    }
    assert!(metric(&revived, "jobs_resumed") >= 1);
}

/// Sums the bytes of the files the trace-store budget governs.
fn governed_trace_bytes(state_dir: &Path) -> u64 {
    let mut total = 0;
    for sub in ["traces", "traces/plans"] {
        let Ok(entries) = std::fs::read_dir(state_dir.join(sub)) else { continue };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let governed = path.extension().is_some_and(|x| x == "rvpt")
                || (sub.ends_with("plans") && path.extension().is_some_and(|x| x == "json"));
            if governed {
                total += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries.filter_map(Result::ok).filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum()
}

#[test]
fn cache_budgets_hold_under_a_sustained_sweep() {
    use rvp_serve::{start, ServeConfig};

    // Each sweep uses a distinct measurement budget, so each records a
    // distinct (growing) trace file — real accumulation for the trace
    // store's byte budget to push back on. (Scaling the workload would
    // instead *replace* one same-named trace sweep after sweep.)
    const BUDGETS: [u64; 4] = [20_000, 28_000, 36_000, 44_000];

    // Phase 1 — probe: unbudgeted in-process server, four sweeps to
    // learn real entry/trace sizes.
    let probe_dir = TempDir::new("budget-probe");
    let cfg = ServeConfig::new("127.0.0.1:0", probe_dir.path().to_str().expect("utf8 dir"));
    let handle = start(cfg).expect("start probe server");
    let addr = handle.local_addr();
    let sweep = |addr, measure_insts: u64| {
        let body = Json::obj([
            ("workloads", Json::arr([Json::from("li")])),
            ("schemes", Json::arr([Json::from("no_predict")])),
            ("measure_insts", measure_insts.into()),
            ("profile_insts", 4_000u64.into()),
            ("wait", true.into()),
        ]);
        let r = request(addr, "POST", "/sweep", Some(&body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    };
    let mut trace_sizes = Vec::new();
    let mut before = 0;
    for insts in BUDGETS {
        sweep(addr, insts);
        let after = governed_trace_bytes(probe_dir.path());
        trace_sizes.push(after - before);
        before = after;
    }
    assert!(trace_sizes.iter().all(|&s| s > 0), "each sweep added a trace: {trace_sizes:?}");
    let cache_total = dir_bytes(&probe_dir.path().join("cache"));
    let entry_bytes = cache_total / 4;
    assert!(entry_bytes > 0, "probe produced cache entries");
    handle.drain();

    // Phase 2 — enforce: budgets sized to hold ~2 entries / the two
    // largest traces, so a four-sweep sustained load must evict.
    let dir = TempDir::new("budget-enforce");
    let mut cfg = ServeConfig::new("127.0.0.1:0", dir.path().to_str().expect("utf8 dir"));
    cfg.cache_budget_bytes = entry_bytes * 5 / 2;
    let trace_budget = trace_sizes[3] + trace_sizes[2] + trace_sizes[2] / 2;
    cfg.trace_budget_bytes = trace_budget;
    let handle = start(cfg).expect("start budgeted server");
    let addr = handle.local_addr();
    for insts in BUDGETS {
        sweep(addr, insts);
        assert!(
            dir_bytes(&dir.path().join("cache")) <= entry_bytes * 5 / 2,
            "result cache over budget after measure_insts {insts}"
        );
        assert!(
            governed_trace_bytes(dir.path()) <= trace_budget,
            "trace store over budget after measure_insts {insts}"
        );
    }

    // Both evictors ran and are observable: the serve counter in the
    // JSON metrics, the trace counter in the Prometheus exposition.
    let metrics = request(addr, "GET", "/metrics", None).json().expect("metrics json");
    assert!(metrics.get("cache_evictions").and_then(Json::as_u64).unwrap_or(0) >= 1);
    let prom = request(addr, "GET", "/metrics?format=prom", None);
    let prom = String::from_utf8(prom.body).expect("prom utf8");
    let evicted = prom
        .lines()
        .find_map(|l| l.strip_prefix("rvp_trace_evicted_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(evicted >= 1, "trace store evicted under budget pressure:\n{prom}");
    assert!(prom.contains("rvp_serve_cache_evictions_total"), "{prom}");
    handle.drain();
}
