//! Chaos tests for the serve daemon: seeded faults at the
//! `serve.journal.append` and `serve.cache.read` failpoints must
//! surface as structured 5xx JSON on the affected request while the
//! daemon — and every surviving request — carries on unharmed.

mod common;

use common::{request, sweep_body, Daemon, TempDir};
use rvp_core::Json;

#[test]
fn journal_append_fault_is_a_structured_503_and_daemon_survives() {
    let dir = TempDir::new("chaos-journal");
    // First append fails; everything after succeeds.
    let daemon = Daemon::spawn(
        dir.path(),
        &["--workers", "1"],
        &[("RVP_FAIL", "seed=7;serve.journal.append=io@1")],
    );

    let hit = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(true)));
    assert_eq!(hit.status, 503, "{:?}", String::from_utf8_lossy(&hit.body));
    let body = hit.json().expect("503 body is JSON");
    let error = body.get("error").and_then(Json::as_str).expect("structured error field");
    assert!(error.contains("journal"), "error names the failing subsystem: {error}");

    // The daemon is alive and the next identical request goes through
    // end to end (the failpoint armed only the first hit).
    assert_eq!(request(daemon.addr, "GET", "/healthz", None).status, 200);
    let retry = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(true)));
    assert_eq!(retry.status, 200);
    let retry = retry.json().expect("retry json");
    assert_eq!(retry.get("computed").and_then(Json::as_u64), Some(2));
    assert_eq!(retry.get("failed").and_then(Json::as_u64), Some(0));

    let metrics = request(daemon.addr, "GET", "/metrics", None).json().expect("metrics");
    assert!(metrics.get("server_errors").and_then(Json::as_u64).unwrap_or(0) >= 1);
}

#[test]
fn cache_read_fault_is_a_structured_500_and_disk_stays_good() {
    let dir = TempDir::new("chaos-cache");
    // Prime the cache with a clean daemon, then SIGKILL it.
    let mut primer = Daemon::spawn(dir.path(), &["--workers", "1"], &[]);
    let primed = request(primer.addr, "POST", "/sweep", Some(&sweep_body(true)));
    assert_eq!(primed.status, 200);
    primer.kill();

    // Restart with the first disk read of a cache entry armed to fail.
    let daemon = Daemon::spawn(
        dir.path(),
        &["--workers", "1"],
        &[("RVP_FAIL", "seed=7;serve.cache.read=io@1")],
    );
    let hit = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(true)));
    assert_eq!(hit.status, 500, "{:?}", String::from_utf8_lossy(&hit.body));
    let body = hit.json().expect("500 body is JSON");
    let error = body.get("error").and_then(Json::as_str).expect("structured error field");
    assert!(error.contains("cache"), "error names the failing subsystem: {error}");

    // Surviving requests are unaffected: the entries on disk are
    // intact, so the retry is a 100% cache hit with zero re-simulation.
    let retry = request(daemon.addr, "POST", "/sweep", Some(&sweep_body(true)));
    assert_eq!(retry.status, 200);
    let retry = retry.json().expect("retry json");
    assert_eq!(retry.get("cached").and_then(Json::as_u64), Some(2));
    assert_eq!(retry.get("computed").and_then(Json::as_u64), Some(0));

    let metrics = request(daemon.addr, "GET", "/metrics", None).json().expect("metrics");
    assert!(metrics.get("server_errors").and_then(Json::as_u64).unwrap_or(0) >= 1);
    assert_eq!(metrics.get("cells_computed").and_then(Json::as_u64), Some(0));
}
