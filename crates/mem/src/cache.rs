/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub assoc: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`Cache::new`]).
    pub fn num_sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc > 0, "associativity must be positive");
        let sets = self.size_bytes / (self.line_bytes * self.assoc);
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a positive power of two");
        sets
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { size_bytes: 32 * 1024, assoc: 4, line_bytes: 64 }
    }
}

/// Access/miss counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (line not present).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 if there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl rvp_json::ToJson for CacheStats {
    fn to_json(&self) -> rvp_json::Json {
        rvp_json::Json::obj([
            ("accesses", self.accesses.into()),
            ("misses", self.misses.into()),
            ("miss_rate", self.miss_rate().into()),
        ])
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp for LRU.
    last_use: u64,
}

/// A set-associative, write-back/write-allocate cache with LRU
/// replacement. Tags only — data contents live in the emulator.
///
/// # Examples
///
/// ```
/// use rvp_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64 });
/// assert!(!c.access(0, false)); // cold miss
/// assert!(c.access(8, false));  // same 64-byte line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
}

impl Cache {
    /// Creates a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size
    /// or set count, zero associativity).
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.num_sets();
        Cache {
            config,
            sets: vec![vec![Line::default(); config.assoc as usize]; sets as usize],
            clock: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let sets = self.sets.len() as u64;
        ((line % sets) as usize, line / sets)
    }

    /// Accesses the line containing `addr`; returns `true` on hit. On a
    /// miss the line is filled (evicting LRU). `write` marks the line
    /// dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.clock += 1;
        let (set, tag) = self.index_and_tag(addr);
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.clock;
            line.dirty |= write;
            return true;
        }
        // Miss: fill into the invalid or least-recently-used way.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("associativity is positive");
        *victim = Line { tag, valid: true, dirty: write, last_use: self.clock };
        false
    }

    /// Checks for presence without updating any state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64-byte lines.
        Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64 })
    }

    #[test]
    fn hit_within_line() {
        let mut c = small();
        assert!(!c.access(0, false));
        assert!(c.access(63, false));
        assert!(!c.access(64, false)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines 0, 2, 4, ... (even line numbers).
        c.access(0, false); // line 0
        c.access(128, false); // line 2, same set
        c.access(0, false); // touch line 0: line 2 becomes LRU
        c.access(256, false); // line 4 evicts line 2
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        c.access(0, false); // set 0
        c.access(64, false); // set 1
        c.access(192, false); // set 1
        c.access(320, false); // set 1: evicts line 1 (addr 64)
        assert!(c.probe(0));
        assert!(!c.probe(64));
    }

    #[test]
    fn probe_does_not_fill() {
        let c = small();
        assert!(!c.probe(0));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig { size_bytes: 128, assoc: 1, line_bytes: 64 });
        assert!(!c.access(0, false));
        assert!(!c.access(128, false)); // conflicts with 0
        assert!(!c.access(0, false)); // and back
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 100, assoc: 3, line_bytes: 60 });
    }

    #[test]
    fn miss_rate() {
        let s = CacheStats { accesses: 8, misses: 2 };
        assert_eq!(s.miss_rate(), 0.25);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
