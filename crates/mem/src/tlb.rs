/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig { entries: 64, page_bytes: 8 * 1024 }
    }
}

/// A fully-associative TLB with LRU replacement. Translation itself is a
/// no-op (the emulator uses physical addresses); the TLB exists to charge
/// refill latency on first touch of each page.
///
/// # Examples
///
/// ```
/// use rvp_mem::{Tlb, TlbConfig};
///
/// let mut t = Tlb::new(TlbConfig { entries: 2, page_bytes: 4096 });
/// assert!(!t.access(0));      // cold
/// assert!(t.access(100));     // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// (page number, last-use timestamp)
    entries: Vec<(u64, u64)>,
    clock: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `entries` is zero.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(config.entries > 0, "TLB must have at least one entry");
        Tlb { config, entries: Vec::with_capacity(config.entries), clock: 0 }
    }

    /// Looks up the page containing `addr`; returns `true` on hit. Misses
    /// install the translation (evicting LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / self.config.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            return true;
        }
        if self.entries.len() == self.config.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("TLB is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(TlbConfig { entries: 4, page_bytes: 4096 });
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(TlbConfig { entries: 2, page_bytes: 4096 });
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // touch page 0
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096));
    }

    #[test]
    #[should_panic]
    fn zero_entries_panics() {
        let _ = Tlb::new(TlbConfig { entries: 0, page_bytes: 4096 });
    }
}
