//! Memory-hierarchy substrate: set-associative caches and TLBs.
//!
//! Implements the hierarchy of the paper's Table 1: 32 KiB 4-way L1
//! instruction and data caches with 64-byte lines and a 20-cycle miss
//! penalty, backed by a shared 512 KiB 2-way L2 with an 80-cycle miss
//! penalty. Caches are write-back/write-allocate with LRU replacement.
//!
//! The caches model *timing only*: data values live in the emulator's
//! memory, so cache lines track tags and state, not contents.
//!
//! # Examples
//!
//! ```
//! use rvp_mem::{CacheConfig, Hierarchy, MemConfig};
//!
//! let mut h = Hierarchy::new(MemConfig::table1());
//! let cold = h.access_data(0x1000, false);
//! let warm = h.access_data(0x1000, false);
//! assert!(cold > warm);
//! assert_eq!(warm, 0); // L1 hit adds no cycles on top of load latency
//! # let _ = CacheConfig::default();
//! ```

mod cache;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use tlb::{Tlb, TlbConfig};

/// Configuration for the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Cycles added by an L1 miss that hits in L2.
    pub l1_miss_penalty: u64,
    /// Cycles added by an L2 miss (on top of the L1 penalty).
    pub l2_miss_penalty: u64,
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
    /// Cycles added by a TLB miss (software refill).
    pub tlb_miss_penalty: u64,
}

impl MemConfig {
    /// The paper's Table 1 hierarchy. TLB parameters are not given in the
    /// paper; 48-entry I / 64-entry D fully-associative TLBs with 8 KiB
    /// pages and a 30-cycle refill match Alpha 21264-era hardware.
    pub fn table1() -> MemConfig {
        MemConfig {
            l1i: CacheConfig { size_bytes: 32 * 1024, assoc: 4, line_bytes: 64 },
            l1d: CacheConfig { size_bytes: 32 * 1024, assoc: 4, line_bytes: 64 },
            l2: CacheConfig { size_bytes: 512 * 1024, assoc: 2, line_bytes: 64 },
            l1_miss_penalty: 20,
            l2_miss_penalty: 80,
            itlb: TlbConfig { entries: 48, page_bytes: 8 * 1024 },
            dtlb: TlbConfig { entries: 64, page_bytes: 8 * 1024 },
            tlb_miss_penalty: 30,
        }
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::table1()
    }
}

/// Aggregate statistics for the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierarchyStats {
    /// L1 I-cache accesses / misses.
    pub l1i: CacheStats,
    /// L1 D-cache accesses / misses.
    pub l1d: CacheStats,
    /// L2 accesses / misses.
    pub l2: CacheStats,
    /// ITLB misses.
    pub itlb_misses: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
}

impl rvp_json::ToJson for HierarchyStats {
    fn to_json(&self) -> rvp_json::Json {
        rvp_json::Json::obj([
            ("l1i", self.l1i.to_json()),
            ("l1d", self.l1d.to_json()),
            ("l2", self.l2.to_json()),
            ("itlb_misses", self.itlb_misses.into()),
            ("dtlb_misses", self.dtlb_misses.into()),
        ])
    }
}

/// A two-level cache hierarchy with TLBs, returning *added* latency per
/// access (0 for an L1 hit with TLB hit).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: MemConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            stats: HierarchyStats::default(),
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn access(
        config: &MemConfig,
        l1: &mut Cache,
        l1_stats: &mut CacheStats,
        l2: &mut Cache,
        l2_stats: &mut CacheStats,
        addr: u64,
        write: bool,
    ) -> u64 {
        l1_stats.accesses += 1;
        if l1.access(addr, write) {
            return 0;
        }
        l1_stats.misses += 1;
        l2_stats.accesses += 1;
        if l2.access(addr, write) {
            return config.l1_miss_penalty;
        }
        l2_stats.misses += 1;
        config.l1_miss_penalty + config.l2_miss_penalty
    }

    /// Performs an instruction fetch of the line containing `addr`;
    /// returns added latency in cycles.
    pub fn access_inst(&mut self, addr: u64) -> u64 {
        let mut extra = 0;
        if !self.itlb.access(addr) {
            self.stats.itlb_misses += 1;
            extra += self.config.tlb_miss_penalty;
        }
        extra
            + Self::access(
                &self.config,
                &mut self.l1i,
                &mut self.stats.l1i,
                &mut self.l2,
                &mut self.stats.l2,
                addr,
                false,
            )
    }

    /// Performs a data access; returns added latency in cycles.
    pub fn access_data(&mut self, addr: u64, write: bool) -> u64 {
        let mut extra = 0;
        if !self.dtlb.access(addr) {
            self.stats.dtlb_misses += 1;
            extra += self.config.tlb_miss_penalty;
        }
        extra
            + Self::access(
                &self.config,
                &mut self.l1d,
                &mut self.stats.l1d,
                &mut self.l2,
                &mut self.stats.l2,
                addr,
                write,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hits() {
        let mut h = Hierarchy::new(MemConfig::table1());
        // Cold: TLB miss + L1 miss + L2 miss.
        assert_eq!(h.access_data(0x1000, false), 30 + 20 + 80);
        assert_eq!(h.access_data(0x1000, false), 0);
        assert_eq!(h.access_data(0x1008, false), 0); // same line
        assert_eq!(h.stats().l1d.accesses, 3);
        assert_eq!(h.stats().l1d.misses, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let cfg = MemConfig {
            l1d: CacheConfig { size_bytes: 128, assoc: 1, line_bytes: 64 },
            ..MemConfig::table1()
        };
        let mut h = Hierarchy::new(cfg);
        h.access_data(0, false);
        // Evicts line 0 from the 2-set direct-mapped L1.
        h.access_data(128, false);
        // L1 miss, but L2 still holds it: only the L1 penalty.
        assert_eq!(h.access_data(0, false), 20);
    }

    #[test]
    fn inst_and_data_l1s_are_separate() {
        let mut h = Hierarchy::new(MemConfig::table1());
        h.access_inst(0x40);
        h.access_data(0x100, false); // warm the DTLB page (different line)
                                     // Data access to the same line still misses L1D (hits shared L2).
        assert_eq!(h.access_data(0x40, false), 20);
    }

    #[test]
    fn stats_track_tlb_misses() {
        let mut h = Hierarchy::new(MemConfig::table1());
        h.access_data(0x0, false);
        h.access_data(1 << 13, false); // next 8 KiB page
        assert_eq!(h.stats().dtlb_misses, 2);
        h.access_data(0x8, false);
        assert_eq!(h.stats().dtlb_misses, 2);
    }
}
