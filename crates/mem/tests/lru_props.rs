//! Property tests: the set-associative cache matches a straightforward
//! per-set LRU reference model, and the TLB matches a fully-associative
//! one.

use proptest::prelude::*;
use rvp_mem::{Cache, CacheConfig, Tlb, TlbConfig};

/// Reference model: per set, a most-recently-used-last list of tags.
struct ModelCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line: u64,
}

impl ModelCache {
    fn new(sets: usize, assoc: usize, line: u64) -> ModelCache {
        ModelCache { sets: vec![Vec::new(); sets], assoc, line }
    }

    fn access(&mut self, addr: u64) -> bool {
        let lineno = addr / self.line;
        let si = (lineno % self.sets.len() as u64) as usize;
        let tag = lineno / self.sets.len() as u64;
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.push(tag);
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0); // evict LRU
            }
            set.push(tag);
            false
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_lru_model(
        addrs in proptest::collection::vec(0u64..4096, 1..200),
        assoc in 1u64..5,
    ) {
        let line = 64u64;
        let sets = 4u64;
        let cfg = CacheConfig { size_bytes: sets * assoc * line, assoc, line_bytes: line };
        let mut cache = Cache::new(cfg);
        let mut model = ModelCache::new(sets as usize, assoc as usize, line);
        for &a in &addrs {
            prop_assert_eq!(cache.access(a, false), model.access(a), "addr {:#x}", a);
        }
    }

    #[test]
    fn tlb_matches_fa_lru_model(addrs in proptest::collection::vec(0u64..(1 << 20), 1..200)) {
        let page = 4096u64;
        let entries = 4usize;
        let mut tlb = Tlb::new(TlbConfig { entries, page_bytes: page });
        // A fully-associative cache with one set is the same structure.
        let mut model = ModelCache::new(1, entries, page);
        for &a in &addrs {
            prop_assert_eq!(tlb.access(a), model.access(a), "addr {:#x}", a);
        }
    }

    #[test]
    fn probe_never_changes_state(addrs in proptest::collection::vec(0u64..4096, 1..100)) {
        let cfg = CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            cache.access(a, false);
        }
        // Repeated probes agree with themselves and don't perturb hits.
        for &a in &addrs {
            let p1 = cache.probe(a);
            let p2 = cache.probe(a);
            prop_assert_eq!(p1, p2);
            if p1 {
                prop_assert!(cache.access(a, false));
            }
        }
    }
}
