//! Regression tests on each workload's *value-locality character* — the
//! property the whole reproduction depends on. If an edit to a workload
//! silently destroys its namesake's reuse profile, these tests catch it
//! before the figures drift.

use rvp_profile::{Assist, PlanScope, Profile, ProfileConfig};
use rvp_workloads::{by_name, Input};

fn coverage_fractions(name: &str) -> (f64, f64) {
    // Returns (fraction of hot instructions with >=80% same-register
    // reuse, same but including dead/lv assistance).
    let wl = by_name(name).expect("workload exists");
    let p = wl.program(Input::Train);
    let prof = Profile::collect(&p, &ProfileConfig { max_insts: 300_000, min_execs: 32 }).unwrap();
    let mut hot = 0usize;
    let mut same = 0usize;
    for pc in 0..p.len() {
        let s = &prof.stats()[pc];
        if s.execs < 32 || p.insts()[pc].dst().is_none() {
            continue;
        }
        hot += 1;
        if prof.same_rate(pc) >= 0.8 {
            same += 1;
        }
    }
    let plan = prof.assist_plan(&p, 0.8, PlanScope::AllInsts, Assist::DeadLv);
    (same as f64 / hot.max(1) as f64, (same + plan.len()) as f64 / hot.max(1) as f64)
}

#[test]
fn go_has_little_reuse() {
    let (same, assisted) = coverage_fractions("go");
    assert!(same < 0.15, "go same fraction {same:.2}");
    assert!(assisted < 0.3, "go assisted fraction {assisted:.2}");
}

#[test]
fn m88ksim_reuse_is_high_and_mostly_assisted() {
    let (same, assisted) = coverage_fractions("m88ksim");
    assert!(assisted > 0.4, "m88ksim assisted fraction {assisted:.2}");
    assert!(
        assisted > same + 0.2,
        "m88ksim must gain substantially from dead/lv assistance \
         (same {same:.2}, assisted {assisted:.2})"
    );
}

#[test]
fn hydro2d_has_the_register_pressure_pattern() {
    // Both the natural stencil reuse and a meaningful assisted gain.
    let (same, assisted) = coverage_fractions("hydro2d");
    assert!(same > 0.1, "hydro2d same fraction {same:.2}");
    assert!(assisted > same + 0.1, "hydro2d assisted gain too small");
}

#[test]
fn mgrid_reuse_is_constant_locality() {
    // The zero-dominated stencil: strong natural same-register reuse,
    // little extra from assistance.
    let wl = by_name("mgrid").unwrap();
    let p = wl.program(Input::Train);
    let prof = Profile::collect(&p, &ProfileConfig { max_insts: 300_000, min_execs: 32 }).unwrap();
    // Sparsity is *regional* (zero planes), so per-static load rates are
    // the zero-fraction mix; the confidence counters exploit the runs.
    // Guard the signature: several stencil loads with a nonzero but
    // partial same-register rate.
    let zero_mixed = (0..p.len())
        .filter(|&pc| {
            p.insts()[pc].is_load()
                && prof.stats()[pc].execs > 1000
                && prof.same_rate(pc) > 0.08
                && prof.same_rate(pc) < 0.95
        })
        .count();
    assert!(zero_mixed >= 5, "mgrid zero-mixed loads: {zero_mixed}");
}

#[test]
fn li_tag_loads_are_reusable() {
    let wl = by_name("li").unwrap();
    let p = wl.program(Input::Train);
    let prof = Profile::collect(&p, &ProfileConfig { max_insts: 300_000, min_execs: 32 }).unwrap();
    // At least one hot load with >=80% same-register reuse (the tag load).
    let hot_tag = (0..p.len()).any(|pc| {
        p.insts()[pc].is_load() && prof.stats()[pc].execs > 10_000 && prof.same_rate(pc) >= 0.8
    });
    assert!(hot_tag, "li lost its hot reusable tag load");
}

#[test]
fn turb3d_twiddles_reload_constants() {
    let wl = by_name("turb3d").unwrap();
    let p = wl.program(Input::Train);
    let prof = Profile::collect(&p, &ProfileConfig { max_insts: 300_000, min_execs: 32 }).unwrap();
    // Twiddle/common-block loads: several loads with high lv rates.
    let stable_loads =
        (0..p.len()).filter(|&pc| p.insts()[pc].is_load() && prof.lv_rate(pc) >= 0.8).count();
    assert!(stable_loads >= 3, "turb3d stable loads: {stable_loads}");
}

#[test]
fn su2cor_has_two_phases() {
    // The init phase must be a meaningful fraction of the run (the
    // paper's "very long initialization period"), and the compute phase
    // must carry link-load reuse.
    let (_, assisted) = coverage_fractions("su2cor");
    assert!(assisted > 0.25, "su2cor assisted fraction {assisted:.2}");
}

#[test]
fn workload_order_of_reuse_matches_the_paper() {
    // The headline ordering: m88ksim far more reusable than go.
    let (_, go) = coverage_fractions("go");
    let (_, m88k) = coverage_fractions("m88ksim");
    assert!(m88k > go + 0.15, "m88k {m88k:.2} !>> go {go:.2}");
}
