//! `su2cor` stand-in: long initialization followed by small-matrix
//! algebra.
//!
//! SPEC's `su2cor` computes quark-gluon properties with SU(2) lattice
//! algebra. The paper singles it out for its very long initialization
//! (they simulate 3B instructions "due to a very long initialization
//! period"). This kernel mirrors both phases: an LCG-driven lattice fill
//! with almost no value reuse, then repeated 2x2 matrix-vector products
//! whose gauge links come from a tiny set (many identity-like entries),
//! giving the compute phase its dead-register / last-value reuse.

use rand::Rng;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const LATTICE: u64 = 0x20_0000;
const LINKS: u64 = 0x24_0000; // 8 matrices x 4 entries
const VECS: u64 = 0x26_0000;
const SITES: usize = 1500;

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(8, input);
    // Gauge links: half are exact identities, the rest small rotations.
    let mut links = Vec::with_capacity(8 * 4);
    for m in 0..8 {
        if m % 2 == 0 {
            links.extend_from_slice(&[1.0f64, 0.0, 0.0, 1.0]);
        } else {
            let c: f64 = r.gen_range(0.7..1.0);
            let s = (1.0 - c * c).sqrt();
            links.extend_from_slice(&[c, -s, s, c]);
        }
    }
    let vecs: Vec<f64> = (0..SITES * 2).map(|_| r.gen_range(-1.0..1.0)).collect();
    let init_iters = scale(input, factor, 2_500, 7_000);
    let compute_passes = scale(input, factor, 8, 24);

    let (lp, t, n, seed) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let (site, mp, vp, idx) = (Reg::int(5), Reg::int(6), Reg::int(7), Reg::int(8));
    let npass = Reg::int(16);
    let fv = Reg::fp(10);
    let (m00, m01, m11) = (Reg::fp(11), Reg::fp(12), Reg::fp(14));
    let (v0, v1, r0, r1, tmp) = (Reg::fp(15), Reg::fp(16), Reg::fp(17), Reg::fp(18), Reg::fp(19));

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data_f64(LINKS, &links);
    b.data_f64(VECS, &vecs);
    b.zeros(LATTICE, 4096);
    b.proc("main");

    // ---- Phase 1: initialization (LCG fill, little reuse). ----
    b.li(lp, LATTICE as i64);
    b.li(seed, 88_172_645);
    b.li(n, init_iters);
    b.label("init");
    b.mul(seed, seed, 6_364_136_223_846_793_005_i64);
    b.addi(seed, seed, 1_442_695_040_888_963_407_i64);
    b.srl(t, seed, 33);
    b.and(t, t, 0x7fff);
    b.itof(fv, t);
    b.and(t, seed, 4095 * 8);
    b.add(t, t, lp);
    b.st(fv, t, 0);
    b.subi(n, n, 1);
    b.bnez(n, "init");

    // ---- Phase 2: propagate a 2-component spinor through the gauge
    // links: v <- M(site) * v, a genuine dependence chain from site to
    // site. Where the links are identities (half the lattice, in runs of
    // 32 sites) the propagated values are bit-stable, so register value
    // prediction can break the recurrence — the paper's su2cor gains.
    b.li(npass, compute_passes);
    b.label("pass");
    b.li(site, SITES as i64);
    b.li(vp, VECS as i64);
    b.ld(v0, vp, 0);
    b.ld(v1, vp, 8);
    b.label("site_loop");
    // Pick a link matrix by lattice region: runs of 64 consecutive sites
    // share one link, so link-element loads stay stable for long runs.
    b.srl(idx, site, 6);
    b.and(idx, idx, 7);
    b.sll(idx, idx, 5); // x 32 bytes per matrix
    b.li(mp, LINKS as i64);
    b.add(mp, mp, idx);
    b.ld(m00, mp, 0); // link loads: tiny value set, many identities
    b.ld(m11, mp, 24);
    b.fmul(r0, m00, v0);
    // Register pressure: both off-diagonal elements share `m01`, with an
    // intervening multiply — the reuse-destroying pattern the dead/lv
    // reallocation recovers (su2cor's big assisted gain in the paper).
    b.ld(m01, mp, 8);
    b.fmul(tmp, m01, v1);
    b.fadd(r0, r0, tmp);
    b.ld(m01, mp, 16); // m10, clobbering m01's register
    b.fmul(tmp, m01, v0);
    b.fmul(r1, m11, v1);
    b.fadd(r1, r1, tmp);
    b.fmov(v0, r0); // carry the spinor to the next site
    b.fmov(v1, r1);
    // Record the propagated field every 16 sites.
    b.and(idx, site, 15);
    b.bnez(idx, "no_spill");
    b.st(v0, vp, 0);
    b.st(v1, vp, 8);
    b.addi(vp, vp, 16);
    b.label("no_spill");
    b.subi(site, site, 1);
    b.bnez(site, "site_loop");
    b.subi(npass, npass, 1);
    b.bnez(npass, "pass");
    b.st(r0, Reg::int(30), -8);
    b.halt();
    b.build().expect("su2cor builds")
}
