//! `ijpeg` stand-in: block transform + quantization with zero-heavy
//! output.
//!
//! SPEC's `ijpeg` compresses images: a blocked integer transform followed
//! by quantization that drives most coefficients to zero, then an
//! entropy/RLE scan over those zeros. The zero-dominated second pass is a
//! textbook source of *constant locality* — reloading zeros into the same
//! register is same-register reuse that needs no compiler help, matching
//! the paper's note that ijpeg gets its gains without assistance.

use rand::Rng;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const PIXELS: u64 = 0x2_0000;
const QUANT: u64 = 0x3_0000;
const COEFF: u64 = 0x4_0000;
const CODES: u64 = 0x4_8000; // Huffman-ish code table, indexed by symbol

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(2, input);
    let pixels: Vec<u64> = (0..64).map(|_| r.gen_range(96..160u64)).collect();
    // Quantization by arithmetic shift (the fast-JPEG idiom): everything
    // past the first ~16 coefficients shifts to zero, giving the RLE pass
    // its long zero runs (the real encoder's high-frequency tail).
    let quant: Vec<u64> = (0..64u64).map(|i| 4 + i / 4).collect();
    let blocks = scale(input, factor, 180, 520);

    let (pp, qp, cp) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (i, px, q, out) = (Reg::int(4), Reg::int(5), Reg::int(6), Reg::int(7));
    let (nblk, dc, t, runs) = (Reg::int(8), Reg::int(16), Reg::int(17), Reg::int(18));
    let (hp, code, bitbuf) = (Reg::int(19), Reg::int(20), Reg::int(21));

    // Code table: entry per symbol (coefficient & 0x3f), short codes for
    // common symbols like a real Huffman table.
    let codes: Vec<u64> = (0..64u64).map(|s| (s * 2654435761) & 0x3ff).collect();

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data(PIXELS, &pixels);
    b.data(QUANT, &quant);
    b.zeros(COEFF, 64);
    b.data(CODES, &codes);
    b.proc("main");
    b.li(nblk, blocks);
    b.li(dc, 0);
    b.li(runs, 0);
    b.label("block");

    // Pass 1: transform + quantize one 8x8 block.
    b.li(pp, PIXELS as i64);
    b.li(qp, QUANT as i64);
    b.li(cp, COEFF as i64);
    b.li(i, 64);
    b.label("fwd");
    b.ld(px, pp, 0);
    // A butterfly-ish mix with the block's DC predictor (level-shifted
    // so quantization of the high-frequency tail hits exactly zero).
    b.sub(px, px, 96);
    b.add(dc, dc, px);
    b.sll(t, px, 2);
    b.add(px, px, t);
    b.ld(q, qp, 0); // quant shift (repeats exactly every block)
    b.sra(out, px, q); // most results are 0 or -1 for high-freq steps
    b.st(out, cp, 0);
    b.addi(pp, pp, 8);
    b.addi(qp, qp, 8);
    b.addi(cp, cp, 8);
    b.subi(i, i, 1);
    b.bnez(i, "fwd");

    // Pass 2: entropy-code the (mostly zero) coefficients: each symbol's
    // code is looked up through the loaded value — a load-to-load chain
    // that predicting the zero-heavy coefficient loads cuts short.
    b.li(cp, COEFF as i64);
    b.li(hp, CODES as i64);
    b.li(i, 64);
    b.label("rle");
    b.ld(out, cp, 0); // mostly zero -> high same-register reuse
    b.and(t, out, 0x3f);
    b.sll(t, t, 3);
    b.add(t, t, hp);
    b.ld(code, t, 0); // code for the symbol (constant for zeros)
    b.sll(bitbuf, bitbuf, 5); // emit into the bitstream
    b.xor(bitbuf, bitbuf, code);
    b.bnez(out, "nonzero"); // zeros (the common case) fall through
    b.addi(runs, runs, 1);
    b.br("rnext");
    b.label("nonzero");
    b.add(runs, runs, out);
    b.label("rnext");
    b.addi(cp, cp, 8);
    b.subi(i, i, 1);
    b.bnez(i, "rle");
    b.st(bitbuf, Reg::int(30), -16);

    b.and(dc, dc, 0xff);
    b.subi(nblk, nblk, 1);
    b.bnez(nblk, "block");
    b.st(runs, Reg::int(30), -8);
    b.halt();
    b.build().expect("ijpeg builds")
}
