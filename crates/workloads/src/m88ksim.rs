//! `m88ksim` stand-in: an instruction-set simulator whose guest state
//! barely changes.
//!
//! SPEC's `m88ksim` simulates a Motorola 88100. It is the paper's
//! highest-reuse benchmark (29% coverage rising to 57% with compiler
//! assistance) because a simulator's state is overwhelmingly *stable*:
//! most guest registers hold constants (often zero), most stores write
//! back unchanged values, and the fetch/decode loop reloads the same
//! handful of encodings. This kernel interprets a small guest loop whose
//! register file is mostly zeros, reproducing that character.

use rand::Rng;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const GMEM: u64 = 0x9_0000; // guest program
const GRF: u64 = 0xA_0000; // guest register file (32 regs)
const GLOOP: usize = 96; // guest loop length in guest instructions

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(4, input);

    // Guest encodings: op | rs<<8 | rt<<16 | rd<<24. Ops: 0 = multiply
    // (the guest kernel's hot op), 1 = add, 2 = and.
    //
    // Like real guest code, the loop is dominated by long *runs* of the
    // same instruction (clear/copy/idle sequences) operating on registers
    // that stay zero, punctuated by a few varied instructions. The runs
    // are what make the simulator's fetch/decode/execute values stable
    // for many consecutive steps — m88ksim's signature reuse.
    // The run instruction is `mul g5 <- g5 * g4` — a guest RAW dependence
    // through the simulated register file. In the host, iteration i+1's
    // guest-register load must wait for iteration i's write-back store to
    // the same location: a genuine serialization that register value
    // prediction removes, because g5 is zero forever (a silent store).
    let mut gprog = Vec::with_capacity(GLOOP);
    // Alternate multiply/add so the guest RAW chain is long but not
    // saturating (the host's value prediction headroom stays paper-sized).
    let run_mul = (5u64 << 8) | (4 << 16) | (5 << 24); // op 0 = mul
    let run_add = 1u64 | (5 << 8) | (4 << 16) | (5 << 24);
    for block in 0..2 {
        for k in 0..48 {
            if k < 46 {
                gprog.push(if k % 2 == 0 { run_mul } else { run_add });
            } else {
                let op = [0u64, 1, 2][r.gen_range(0..3)];
                let rs = r.gen_range(18..26u64);
                let rt = r.gen_range(0..18u64);
                let rd = 26 + (block as u64 % 4);
                gprog.push(op | (rs << 8) | (rt << 16) | (rd << 24));
            }
        }
    }
    // Guest registers: the low region is zero, a few counters are live.
    let mut grf = vec![0u64; 32];
    for g in grf.iter_mut().skip(18).take(8) {
        *g = r.gen_range(0..3); // tiny values: ands/adds mostly reproduce them
    }
    let steps = scale(input, factor, 9_000, 26_000);

    let gpc = Reg::int(1);
    let enc = Reg::int(2);
    let op = Reg::int(3);
    let rs = Reg::int(4);
    let rt = Reg::int(5);
    let rd = Reg::int(6);
    let va = Reg::int(7);
    let vb = Reg::int(8);
    let res = Reg::int(16);
    let grfp = Reg::int(17);
    let n = Reg::int(18);
    let t = Reg::int(19);
    let cc = Reg::int(20);

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data(GMEM, &gprog);
    b.data(GRF, &grf);
    b.proc("main");
    b.li(grfp, GRF as i64);
    b.li(gpc, GMEM as i64);
    b.li(n, steps);
    b.li(cc, 0);
    b.label("step");
    // Fetch.
    b.ld(enc, gpc, 0);
    // Decode.
    b.and(op, enc, 0xff);
    b.srl(rs, enc, 8);
    b.and(rs, rs, 0xff);
    b.srl(rt, enc, 16);
    b.and(rt, rt, 0xff);
    b.srl(rd, enc, 24);
    b.and(rd, rd, 0xff);
    // Guest register reads (mostly zeros -> high reuse).
    b.sll(rs, rs, 3);
    b.add(rs, rs, grfp);
    b.ld(va, rs, 0);
    b.sll(rt, rt, 3);
    b.add(rt, rt, grfp);
    b.ld(vb, rt, 0);
    // Execute. The dominant op (the guest kernel's multiply-accumulate)
    // falls through; rare ops take an out-of-line slow path, keeping the
    // fetch stream straight.
    b.bnez(op, "g_slow");
    b.mul(res, va, vb);
    b.label("wb");
    // Condition code: results are mostly zero.
    b.cmpeq(cc, res, 0);
    // Write back (usually rewriting zero over zero).
    b.sll(rd, rd, 3);
    b.add(rd, rd, grfp);
    b.st(res, rd, 0);
    // Advance guest PC with wraparound at the loop end. The bookkeeping
    // deliberately reuses the value registers (`va`, `vb`) as temporaries
    // — the register pressure every compiled simulator exhibits. This is
    // the Figure 2(c) pattern: it destroys the loads' natural
    // same-register reuse, which the dead/last-value reallocation
    // recovers (m88ksim's 29% -> 57% jump in the paper's Table 2).
    b.addi(gpc, gpc, 8);
    b.sub(va, gpc, grfp); // statistics: distance marker (clobbers va)
    b.add(vb, va, cc); // event counter mix (clobbers vb)
    b.st(vb, grfp, 256);
    b.subi(t, gpc, (GMEM as i64) + (GLOOP as i64) * 8);
    b.beqz(t, "wrap"); // rarely taken: fall through on the common path
    b.label("cont");
    b.subi(n, n, 1);
    b.bnez(n, "step");
    b.st(cc, Reg::int(30), -8);
    b.halt();
    // Out-of-line blocks.
    b.label("wrap");
    b.li(gpc, GMEM as i64);
    b.br("cont");
    b.label("g_slow");
    b.subi(t, op, 1);
    b.beqz(t, "g_add");
    b.and(res, va, vb);
    b.br("wb");
    b.label("g_add");
    b.add(res, va, vb);
    b.br("wb");
    b.build().expect("m88ksim builds")
}
