//! `hydro2d` stand-in: timestepped 2-D relaxation over a mostly-uniform
//! field.
//!
//! SPEC's `hydro2d` solves hydrodynamical equations on 2-D grids. Its
//! very high register-value reuse in the paper (22% natural coverage,
//! 46% with dead-register + last-value reallocation, 36% LVP) comes from
//! fields that are uniform away from shock fronts: stencil loads keep
//! returning bit-identical values, and the boundary/copy routines stream
//! constants.
//!
//! Each timestep here re-establishes the initial field (a copy loop over
//! mostly-constant data) and then runs three Jacobi sweeps; a handful of
//! hot spots keep a small, spatially-clustered fraction of the grid
//! genuinely active, so perturbations never contaminate more than a few
//! cells around each spot.
//!
//! The stencil deliberately runs its horizontal-neighbour and
//! coefficient loads through one shared register (`coef`) with
//! intervening uses — the Figure 2(c) register-pressure pattern that
//! destroys natural same-register reuse and that the paper's
//! dead/last-value reallocation recovers.

use rand::Rng;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const INIT: u64 = 0x10_0000;
const GRID_A: u64 = 0x12_0000;
const GRID_B: u64 = 0x14_0000;
const COEF: u64 = 0x16_0000;
const N: usize = 36; // N x N grid

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(6, input);
    let mut init = vec![2.0f64; N * N];
    // A few per-input hot spots: the active region of the field.
    for _ in 0..5 {
        let i = r.gen_range(4..N - 4);
        let j = r.gen_range(4..N - 4);
        init[i * N + j] = r.gen_range(4.0..9.0);
    }
    let timesteps = scale(input, factor, 3, 7);

    let (ap, bp, cp, ip) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(16));
    let (i, j, t, ts) = (Reg::int(4), Reg::int(5), Reg::int(6), Reg::int(7));
    let (row, sw, cnt) = (Reg::int(8), Reg::int(17), Reg::int(18));
    let (up, down, s) = (Reg::fp(10), Reg::fp(11), Reg::fp(12));
    let (sum, coef, out) = (Reg::fp(14), Reg::fp(15), Reg::fp(16));

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data_f64(INIT, &init);
    b.zeros(GRID_A, N * N);
    b.zeros(GRID_B, N * N);
    b.data_f64(COEF, &[0.25]);
    b.proc("main");
    b.li(cp, COEF as i64);
    b.li(ip, INIT as i64);
    b.li(ts, timesteps);
    b.label("timestep");

    // Re-establish the field: a streaming copy of mostly-constant data
    // (hydro2d's boundary/initialization routines).
    b.li(ap, GRID_A as i64);
    b.mov(t, ip);
    b.li(cnt, (N * N) as i64);
    b.label("copy");
    b.ld(out, t, 0); // mostly 2.0: strong same-register reuse
    b.st(out, ap, 0);
    b.addi(t, t, 8);
    b.addi(ap, ap, 8);
    b.subi(cnt, cnt, 1);
    b.bnez(cnt, "copy");

    // Three Jacobi sweeps, ping-ponging A -> B -> A -> B.
    b.li(ap, GRID_A as i64);
    b.li(bp, GRID_B as i64);
    b.li(sw, 3);
    b.label("sweep");
    b.li(i, (N - 2) as i64);
    b.label("rows");
    b.mul(row, i, (N * 8) as i64);
    b.add(row, row, ap);
    b.li(j, (N - 2) as i64);
    b.label("cols");
    b.sll(t, j, 3);
    b.add(t, t, row);
    // Jacobi stencil: most neighbours are the uniform background, so
    // 0.25 * (2+2+2+2) reproduces 2.0 bit-exactly.
    b.ld(up, t, -((N * 8) as i64));
    b.ld(down, t, (N * 8) as i64);
    b.fadd(sum, up, down); // down dead from here: a reuse donor
    b.ld(coef, t, -8); // left, in the register-pressure victim slot
    b.fadd(sum, sum, coef);
    b.ld(s, t, 8); // right
    b.fadd(sum, sum, s);
    b.ld(coef, cp, 0); // 0.25 clobbers the left-neighbour register
    b.fmul(out, sum, coef);
    b.sub(t, t, ap);
    b.add(t, t, bp);
    b.st(out, t, 0);
    b.subi(j, j, 1);
    b.bnez(j, "cols");
    b.subi(i, i, 1);
    b.bnez(i, "rows");
    // Swap grids.
    b.mov(t, ap);
    b.mov(ap, bp);
    b.mov(bp, t);
    b.subi(sw, sw, 1);
    b.bnez(sw, "sweep");

    b.subi(ts, ts, 1);
    b.bnez(ts, "timestep");
    b.st(out, Reg::int(30), -8);
    b.halt();
    b.build().expect("hydro2d builds")
}
