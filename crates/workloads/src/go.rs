//! `go` stand-in: branchy board evaluation with little value reuse.
//!
//! SPEC's `go` plays the game of Go — integer code dominated by
//! data-dependent branches over board state, with the *lowest* value
//! locality of the paper's nine programs (Table 2: ~4% coverage). This
//! kernel scans a 19x19 board repeatedly, scoring positions through
//! branchy per-stone logic and calling an influence routine on contested
//! points. Board values and running scores change constantly, so loads
//! rarely reproduce prior register contents.

use rand::Rng;
use rvp_isa::analysis::abi;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const BOARD: u64 = 0x1_0000;
const CELLS: usize = 361; // 19 x 19

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(1, input);
    let board: Vec<u64> = (0..CELLS)
        .map(|_| {
            // 0 = empty, 1 = black, 2 = white, 3 = contested
            match r.gen_range(0..100) {
                0..=39 => 0u64,
                40..=64 => 1,
                65..=89 => 2,
                _ => 3,
            }
        })
        .collect();
    let passes = scale(input, factor, 40, 110);

    let bptr = Reg::int(1);
    let i = Reg::int(2);
    let v = Reg::int(3);
    let score = Reg::int(4);
    let npass = Reg::int(5);
    let t = Reg::int(6);
    let addr = Reg::int(7);
    let nb = Reg::int(8);
    let a0 = Reg::int(16);

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data(BOARD, &board);
    b.proc("main");
    b.li(bptr, BOARD as i64);
    b.li(score, 0);
    b.li(npass, passes);
    b.label("pass");
    b.li(i, (CELLS - 4) as i64); // stay clear of the last cells for neighbors
    b.mov(addr, bptr);
    b.label("cell");
    b.ld(v, addr, 0);
    b.beqz(v, "empty");
    b.subi(t, v, 1);
    b.beqz(t, "black");
    b.subi(t, v, 2);
    b.beqz(t, "white");
    // Contested: call the influence routine on this point.
    b.mov(a0, addr);
    b.call("influence");
    b.add(score, score, Reg::int(0));
    b.br("next");
    b.label("black");
    b.addi(score, score, 2);
    // Data-dependent inner branch: liberties heuristic on the neighbor.
    b.ld(nb, addr, 8);
    b.beqz(nb, "next");
    b.subi(score, score, 1);
    b.br("next");
    b.label("white");
    b.ld(nb, addr, 16);
    b.sub(score, score, nb);
    b.br("next");
    b.label("empty");
    b.addi(score, score, 1);
    b.label("next");
    b.addi(addr, addr, 8);
    b.subi(i, i, 1);
    b.bnez(i, "cell");
    // Mix the score so it never stabilizes.
    b.sll(t, score, 1);
    b.xor(score, score, t);
    b.and(score, score, 0xffff);
    b.subi(npass, npass, 1);
    b.bnez(npass, "pass");
    b.st(score, bptr, -8);
    b.halt();

    // Influence: sum of three neighbors, weighted.
    b.proc("influence");
    let (s, x) = (Reg::int(0), Reg::int(27));
    b.li(s, 0);
    b.ld(x, a0, 8);
    b.add(s, s, x);
    b.ld(x, a0, 16);
    b.sll(x, x, 1);
    b.add(s, s, x);
    b.ld(x, a0, 24);
    b.add(s, s, x);
    b.and(s, s, 7);
    b.ret(abi::RA);

    b.build().expect("go builds")
}
