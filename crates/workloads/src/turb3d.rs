//! `turb3d` stand-in: FFT-style butterfly passes over turbulence data.
//!
//! SPEC's `turb3d` simulates isotropic turbulence with FFTs. Butterfly
//! stages reload the same twiddle factors hundreds of times, and the
//! address arithmetic recomputes identical strides — the source of
//! turb3d's very high dynamic-RVP coverage in the paper (~28%). The data
//! kernel here runs radix-2 passes over a complex array, reloading
//! per-stage twiddles from memory like compiled FORTRAN would.

use rand::Rng;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const DATA: u64 = 0x28_0000; // interleaved re/im pairs
const TWID: u64 = 0x2C_0000; // per-stage twiddle (re, im)
const COMMON: u64 = 0x2E_0000; // "common block": wrap mask, unit stride
const LOGN: usize = 8;
const NPTS: usize = 1 << LOGN; // 256 complex points

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(9, input);
    let data: Vec<f64> = (0..NPTS * 2).map(|_| r.gen_range(-1.0..1.0)).collect();
    // One (re, im) twiddle per stage — reloaded for every butterfly.
    let twid: Vec<f64> = (0..LOGN)
        .flat_map(|s| {
            let a = std::f64::consts::PI / (1 << s) as f64;
            [a.cos(), a.sin()]
        })
        .collect();
    let ffts = scale(input, factor, 5, 14);

    let (dp, tp, stage) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (bi, a_off, b_off, t) = (Reg::int(5), Reg::int(6), Reg::int(7), Reg::int(8));
    let (nfft, stride) = (Reg::int(16), Reg::int(17));
    let (cb, mask, step) = (Reg::int(18), Reg::int(19), Reg::int(20));
    let (wr, wi) = (Reg::fp(10), Reg::fp(11));
    let (ar, ai, br, bi_) = (Reg::fp(12), Reg::fp(13), Reg::fp(14), Reg::fp(15));
    let (tr, ti, u) = (Reg::fp(16), Reg::fp(17), Reg::fp(18));

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data_f64(DATA, &data);
    b.data_f64(TWID, &twid);
    b.data(COMMON, &[(NPTS as u64 * 16) - 1, 32]);
    b.proc("main");
    b.li(cb, COMMON as i64);
    b.li(dp, DATA as i64);
    b.li(nfft, ffts);
    b.label("fft");
    b.li(stage, LOGN as i64);
    b.li(tp, TWID as i64);
    b.li(stride, 16);
    b.label("stage_loop");
    b.li(bi, (NPTS / 2) as i64);
    b.li(a_off, 0);
    b.label("bfly");
    // Pair offsets: a at a_off, b at a_off + stride (wrapped). The wrap
    // mask and unit step are "common block" variables reloaded per
    // butterfly, as compiled FORTRAN does — constant values sitting on
    // the address-generation critical path.
    b.ld(mask, cb, 0);
    b.ld(step, cb, 8);
    b.add(b_off, a_off, stride);
    b.and(b_off, b_off, mask);
    b.ld(wr, tp, 0); // twiddle reloads: same value all stage
    b.ld(wi, tp, 8);
    b.add(t, dp, a_off);
    b.ld(ar, t, 0);
    b.ld(ai, t, 8);
    b.add(t, dp, b_off);
    b.ld(br, t, 0);
    b.ld(bi_, t, 8);
    // t = w * b (complex)
    b.fmul(tr, wr, br);
    b.fmul(u, wi, bi_);
    b.fsub(tr, tr, u);
    b.fmul(ti, wr, bi_);
    b.fmul(u, wi, br);
    b.fadd(ti, ti, u);
    // a' = a + t; b' = a - t
    b.add(t, dp, a_off);
    b.fadd(u, ar, tr);
    b.st(u, t, 0);
    b.fadd(u, ai, ti);
    b.st(u, t, 8);
    b.add(t, dp, b_off);
    b.fsub(u, ar, tr);
    b.st(u, t, 0);
    b.fsub(u, ai, ti);
    b.st(u, t, 8);
    // Index bookkeeping reuses `step` and the twiddle-imaginary register
    // as scratch (register pressure): their reloads lose same-register
    // reuse but stay last-value predictable — reallocation recovers them.
    b.add(a_off, a_off, step);
    b.sub(step, b_off, a_off); // distance scratch clobbers `step`
    b.and(a_off, a_off, mask);
    b.fsub(wi, u, ti); // residual scratch clobbers `wi`
    b.subi(bi, bi, 1);
    b.bnez(bi, "bfly");
    b.addi(tp, tp, 16);
    b.sll(stride, stride, 1);
    b.subi(t, stride, (NPTS * 16) as i64);
    b.bltz(t, "stride_ok");
    b.li(stride, 16);
    b.label("stride_ok");
    b.subi(stage, stage, 1);
    b.bnez(stage, "stage_loop");
    // Damp the whole array so magnitudes stay bounded across "FFTs"
    // (each radix-2 stage can double them; 2^-8 undoes a full pass).
    b.lif(u, 1.0 / 256.0);
    b.li(t, (NPTS * 2) as i64);
    b.mov(a_off, dp);
    b.label("damp");
    b.ld(ar, a_off, 0);
    b.fmul(ar, ar, u);
    b.st(ar, a_off, 0);
    b.addi(a_off, a_off, 8);
    b.subi(t, t, 1);
    b.bnez(t, "damp");
    b.subi(nfft, nfft, 1);
    b.bnez(nfft, "fft");
    b.st(ar, Reg::int(30), -8);
    b.halt();
    b.build().expect("turb3d builds")
}
