//! Shared helpers for workload construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Input;

/// A deterministic RNG for a (workload, input) pair. Train and ref use
/// different seeds so the *data* differs while the locality structure is
/// preserved — the property the paper's cross-input profiling relies on.
pub fn rng(workload_id: u64, input: Input) -> StdRng {
    let salt = match input {
        Input::Train => 0x7261_696e,
        Input::Ref => 0x5f72_6566,
    };
    StdRng::seed_from_u64(workload_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt)
}

/// Scales an iteration count by the input set and the workload length
/// factor: ref runs are larger, and `factor` multiplies the pass count
/// so the same kernel can be stretched to 100M+ committed instructions
/// (factor 1 reproduces the original program bit for bit — golden
/// fixtures depend on that). Only loop-trip immediates go through this
/// helper, never data sizes, so scaling leaves the static structure and
/// memory footprint untouched.
pub fn scale(input: Input, factor: u64, train: i64, reff: i64) -> i64 {
    let base = match input {
        Input::Train => train,
        Input::Ref => reff,
    };
    base.saturating_mul(factor.max(1) as i64)
}
