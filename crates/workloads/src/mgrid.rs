//! `mgrid` stand-in: a sparse 3-D multigrid stencil.
//!
//! SPEC's `mgrid` applies 27-point stencils over 3-D grids that are
//! mostly zero away from the residual's support — the paper's example of
//! *constant locality* ("in reading a sparse matrix where most entries
//! have value zero, predicting each value to be zero can have fewer
//! mispredictions than last-value prediction"). Stencil loads here hit
//! zeros ~90% of the time, so destination registers usually already hold
//! the loaded value.

use rand::Rng;
use rvp_isa::{Program, Reg};

use crate::util::{rng, scale};
use crate::Input;

const GRID: u64 = 0x16_0000;
const OUT: u64 = 0x1A_0000;
const COEF: u64 = 0x1E_0000;
const N: usize = 20; // N^3 grid

pub fn build(input: Input, factor: u64) -> Program {
    let mut r = rng(7, input);
    let mut grid = vec![0.0f64; N * N * N];
    // Clustered sparsity: the residual has support on a band of planes
    // (dense, varied values) and is zero elsewhere. Zero *runs* are what
    // sustain the resetting confidence counters; interleaved random
    // zeros would not.
    let band = r.gen_range(1..3);
    for k in band..band + 15 {
        for v in grid[k * N * N..(k + 1) * N * N].iter_mut() {
            *v = r.gen_range(0.5..2.0);
        }
    }
    let sweeps = scale(input, factor, 1, 3);
    let plane = (N * N * 8) as i64;
    let rowb = (N * 8) as i64;

    let (gp, op_, cp) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (k, ij, t, sw) = (Reg::int(4), Reg::int(5), Reg::int(6), Reg::int(7));
    let base = Reg::int(8);
    let (c0, c1) = (Reg::fp(10), Reg::fp(11));
    let (a, s) = (Reg::fp(12), Reg::fp(13));
    let acc = Reg::fp(14);

    let mut b = rvp_isa::ProgramBuilder::new();
    b.data_f64(GRID, &grid);
    b.zeros(OUT, N * N * N);
    b.data_f64(COEF, &[-8.0, 0.9]);
    b.proc("main");
    b.li(gp, GRID as i64);
    b.li(op_, OUT as i64);
    b.li(cp, COEF as i64);
    b.li(sw, sweeps);
    b.label("sweep");
    b.li(k, (N - 2) as i64);
    b.label("planes");
    // Interior cells of plane k: flatten (i, j) into one counter.
    b.mul(base, k, plane);
    b.add(base, base, gp);
    b.addi(base, base, (N * 8 + 8) as i64); // first interior cell
    b.li(ij, ((N - 2) * (N - 2)) as i64);
    b.ld(c0, cp, 0); // coefficients hoisted out of the cell loop
    b.ld(c1, cp, 8);
    b.label("cells");
    b.ld(a, base, 0); // centre (mostly zero)
    b.fmul(acc, a, c0);
    b.ld(s, base, -8); // six neighbours, mostly zero
    b.fmul(s, s, c1);
    b.fadd(acc, acc, s);
    b.ld(s, base, 8);
    b.fmul(s, s, c1);
    b.fadd(acc, acc, s);
    b.inst(rvp_isa::Inst::ld(s, base, -rowb, rvp_isa::MemWidth::D));
    b.fmul(s, s, c1);
    b.fadd(acc, acc, s);
    b.inst(rvp_isa::Inst::ld(s, base, rowb, rvp_isa::MemWidth::D));
    b.fmul(s, s, c1);
    b.fadd(acc, acc, s);
    b.inst(rvp_isa::Inst::ld(s, base, -plane, rvp_isa::MemWidth::D));
    b.fmul(s, s, c1);
    b.fadd(acc, acc, s);
    b.inst(rvp_isa::Inst::ld(s, base, plane, rvp_isa::MemWidth::D));
    b.fmul(s, s, c1);
    b.fadd(acc, acc, s);
    // Store into the output grid.
    b.sub(t, base, gp);
    b.add(t, t, op_);
    b.st(acc, t, 0);
    b.addi(base, base, 8);
    b.subi(ij, ij, 1);
    b.bnez(ij, "cells");
    b.subi(k, k, 1);
    b.bnez(k, "planes");
    b.subi(sw, sw, 1);
    b.bnez(sw, "sweep");
    b.st(acc, Reg::int(30), -8);
    b.halt();
    b.build().expect("mgrid builds")
}
