//! `perl` stand-in: hash-table and opcode-dispatch interpreter.
//!
//! SPEC's `perl` interprets a bytecode-like op stream with heavy hash
//! table traffic. Reuse is moderate: hot hash keys keep returning the
//! same values (last-value locality on lookup loads), bucket-chain
//! pointer loads repeat, but the evaluation stack churns.

use rand::Rng;
use rvp_isa::{Program, ProgramBuilder, Reg};

use crate::util::{rng, scale};
use crate::Input;

const OPS: u64 = 0xB_0000;
const HASH: u64 = 0xC_0000; // 128 buckets x [key, val]
const STACK: u64 = 0xD_0000;
const JTABLE: u64 = 0xE_0000;
const GLOBALS: u64 = 0xE_4000;
const NOPS: usize = 256;
const NBUCKETS: u64 = 128;

const OP_PUSH: u64 = 0;
const OP_ADD: u64 = 1;
const OP_GET: u64 = 2;
const OP_PUT: u64 = 3;

pub fn build(input: Input, factor: u64) -> Program {
    let first = emit(input, factor, &[0; 4]);
    let table = [
        first.label("op_push").expect("label") as u64,
        first.label("op_add").expect("label") as u64,
        first.label("op_get").expect("label") as u64,
        first.label("op_put").expect("label") as u64,
    ];
    emit(input, factor, &table)
}

fn emit(input: Input, factor: u64, table: &[u64; 4]) -> Program {
    let mut r = rng(5, input);

    // Op stream: op | operand<<8. Keys are Zipf-ish: a few hot keys.
    let hot: Vec<u64> = (0..8).map(|_| r.gen_range(0..1000u64)).collect();
    let mut ops = Vec::with_capacity(NOPS);
    for _ in 0..NOPS {
        let op = match r.gen_range(0..100) {
            0..=34 => OP_PUSH,
            35..=59 => OP_ADD,
            60..=84 => OP_GET,
            _ => OP_PUT,
        };
        let operand = if r.gen_range(0..100) < 75 {
            hot[r.gen_range(0..hot.len())]
        } else {
            r.gen_range(0..1000u64)
        };
        ops.push(op | (operand << 8));
    }
    // Ensure the stack never underflows: prefix pushes.
    for (i, slot) in ops.iter_mut().enumerate().take(8) {
        *slot = OP_PUSH | (((i as u64) * 7 + 1) << 8);
    }
    let hash: Vec<u64> =
        (0..NBUCKETS * 2).map(|i| if i % 2 == 0 { 0 } else { r.gen_range(0..50u64) }).collect();
    let passes = scale(input, factor, 60, 170);

    let opp = Reg::int(1);
    let enc = Reg::int(2);
    let op = Reg::int(3);
    let arg = Reg::int(4);
    let sp = Reg::int(5);
    let tos = Reg::int(6);
    let t = Reg::int(7);
    let hidx = Reg::int(8);
    let hp = Reg::int(16);
    let jt = Reg::int(17);
    let target = Reg::int(18);
    let ni = Reg::int(19);
    let npass = Reg::int(20);
    let acc = Reg::int(21);
    let flags = Reg::int(22);
    let limit = Reg::int(23);
    let gp_ = Reg::int(24);

    let mut b = ProgramBuilder::new();
    b.data(OPS, &ops);
    b.data(HASH, &hash);
    b.zeros(STACK, 64);
    b.data(JTABLE, table);
    b.data(GLOBALS, &[0xff, 4096]);
    b.proc("main");
    b.li(jt, JTABLE as i64);
    b.li(hp, HASH as i64);
    b.li(gp_, GLOBALS as i64);
    b.li(acc, 0);
    b.li(npass, passes);
    b.label("pass");
    b.li(opp, OPS as i64);
    b.li(sp, STACK as i64);
    b.li(ni, NOPS as i64);
    b.label("dispatch");
    b.ld(enc, opp, 0);
    // Interpreter globals reloaded every dispatch, as compiled
    // interpreters do (flags word and arena limit never change).
    b.ld(flags, gp_, 0);
    b.ld(limit, gp_, 8);
    b.and(op, enc, 0xff);
    b.and(op, op, flags); // flags is all-ones over opcodes: a no-op mask
    b.srl(arg, enc, 8);
    b.cmpltu(t, arg, limit); // bounds check on the operand
    b.add(acc, acc, t);
    b.sll(t, op, 3);
    b.add(t, t, jt);
    b.ld(target, t, 0);
    b.jmp(target, &["op_push", "op_add", "op_get", "op_put"]);

    b.label("op_push");
    b.st(arg, sp, 0);
    b.addi(sp, sp, 8);
    b.br("next");

    b.label("op_add");
    b.subi(sp, sp, 8);
    b.ld(tos, sp, 0);
    b.ld(t, sp, -8);
    b.add(t, t, tos);
    b.st(t, sp, -8);
    b.br("next");

    b.label("op_get");
    // hash = (key * 31) & 127; load the bucket value.
    b.mul(hidx, arg, 31);
    b.and(hidx, hidx, (NBUCKETS - 1) as i64);
    b.sll(hidx, hidx, 4);
    b.add(hidx, hidx, hp);
    b.ld(tos, hidx, 8); // hot keys reload the same value
    b.add(acc, acc, tos);
    b.st(tos, sp, 0);
    b.addi(sp, sp, 8);
    b.br("next");

    b.label("op_put");
    b.mul(hidx, arg, 31);
    b.and(hidx, hidx, (NBUCKETS - 1) as i64);
    b.sll(hidx, hidx, 4);
    b.add(hidx, hidx, hp);
    b.st(arg, hidx, 0);
    b.and(t, arg, 0xf); // small values: puts often rewrite the same val
    b.st(t, hidx, 8);

    b.label("next");
    // Keep the stack pointer inside its window.
    b.subi(t, sp, (STACK as i64) + 256);
    b.bltz(t, "sp_hi_ok");
    b.li(sp, (STACK as i64) + 128);
    b.label("sp_hi_ok");
    b.subi(t, sp, (STACK as i64) + 64);
    b.bgez(t, "sp_ok");
    b.li(sp, (STACK as i64) + 64);
    b.label("sp_ok");
    b.addi(opp, opp, 8);
    b.subi(ni, ni, 1);
    b.bnez(ni, "dispatch");
    b.subi(npass, npass, 1);
    b.bnez(npass, "pass");
    b.st(acc, Reg::int(30), -8);
    b.halt();
    b.build().expect("perl builds")
}
