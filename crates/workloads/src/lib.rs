//! Nine SPEC95 stand-in workloads for the RVP reproduction.
//!
//! The paper evaluates on nine SPEC95 benchmarks compiled for the Alpha.
//! Those binaries (and SPEC inputs) are not redistributable, so this crate
//! provides from-scratch synthetic kernels — one per benchmark — written
//! against [`rvp_isa::ProgramBuilder`]. Each kernel reproduces the
//! *register-value-reuse character* the paper reports for its namesake
//! (Table 2 and Figure 1), which is the property every experiment depends
//! on:
//!
//! | program  | lang | character |
//! |----------|------|-----------|
//! | go       | C    | branchy board evaluation, little value reuse |
//! | ijpeg    | C    | block transform + quantization, zero-heavy outputs |
//! | li       | C    | cons-cell interpreter, tag loads correlate with dead registers |
//! | m88ksim  | C    | CPU simulator whose guest state barely changes: very high reuse |
//! | perl     | C    | hash + opcode dispatch interpreter, moderate reuse |
//! | hydro2d  | F    | converging 2-D relaxation: high last-value + dead-register reuse |
//! | mgrid    | F    | sparse 3-D stencil: constant (zero) locality |
//! | su2cor   | F    | long initialization then small-matrix algebra |
//! | turb3d   | F    | FFT-style butterflies reloading twiddle factors: high reuse |
//!
//! Every workload has a *train* and a *ref* input (different seeds and
//! sizes): profiles are collected on train and measured on ref, exactly
//! as in the paper (Section 6).
//!
//! # Examples
//!
//! ```
//! use rvp_workloads::{by_name, Input};
//!
//! let wl = by_name("li").expect("li exists");
//! let program = wl.program(Input::Train);
//! assert!(program.len() > 0);
//! ```

mod go;
mod hydro2d;
mod ijpeg;
mod li;
mod m88ksim;
mod mgrid;
mod perl;
mod su2cor;
mod turb3d;
pub(crate) mod util;

use rvp_isa::Program;

/// Source language of the original SPEC benchmark (Figure 1 averages the
/// two groups separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// SPECint95 / C.
    C,
    /// SPECfp95 / FORTRAN.
    Fortran,
}

/// Which input set to build (paper Section 6: profile on train, measure
/// on ref).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Input {
    /// Smaller input with a different seed; used for profiling.
    Train,
    /// Larger measurement input.
    Ref,
}

/// One benchmark: a name, its language group, and a program generator.
#[derive(Clone)]
pub struct Workload {
    name: &'static str,
    lang: Lang,
    build: fn(Input, u64) -> Program,
}

impl Workload {
    /// Benchmark name (matches the paper's figures).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Language group.
    pub fn lang(&self) -> Lang {
        self.lang
    }

    /// Builds the program for the given input set.
    pub fn program(&self, input: Input) -> Program {
        (self.build)(input, 1)
    }

    /// Builds the program with its outer pass counts multiplied by
    /// `factor`, stretching the dynamic instruction count roughly
    /// linearly (a few hundred reaches the paper's 100M+ committed
    /// instructions). The static structure and memory footprint are
    /// unchanged — only loop-trip immediates scale — so train and ref
    /// builds still share static shape at every factor, and factor 1 is
    /// bit-identical to [`Workload::program`].
    pub fn program_scaled(&self, input: Input, factor: u64) -> Program {
        (self.build)(input, factor.max(1))
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).field("lang", &self.lang).finish()
    }
}

/// All nine workloads, in the paper's figure order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload { name: "go", lang: Lang::C, build: go::build },
        Workload { name: "ijpeg", lang: Lang::C, build: ijpeg::build },
        Workload { name: "li", lang: Lang::C, build: li::build },
        Workload { name: "m88ksim", lang: Lang::C, build: m88ksim::build },
        Workload { name: "perl", lang: Lang::C, build: perl::build },
        Workload { name: "hydro2d", lang: Lang::Fortran, build: hydro2d::build },
        Workload { name: "mgrid", lang: Lang::Fortran, build: mgrid::build },
        Workload { name: "su2cor", lang: Lang::Fortran, build: su2cor::build },
        Workload { name: "turb3d", lang: Lang::Fortran, build: turb3d::build },
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The error message every consumer should print for an unknown
/// workload name: like the scheme registry's unknown-scheme error, it
/// names the whole registry so the fix is visible in the message
/// itself.
pub fn unknown_workload_error(name: &str) -> String {
    let known: Vec<&str> = all().iter().map(|w| w.name()).collect();
    format!("unknown workload {name:?} (known: {})", known.join(", "))
}

/// [`by_name`] with the registry-listing error, for CLI plumbing.
///
/// # Errors
///
/// Returns [`unknown_workload_error`] when `name` is not registered.
pub fn by_name_or_err(name: &str) -> Result<Workload, String> {
    by_name(name).ok_or_else(|| unknown_workload_error(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_emu::Emulator;

    #[test]
    fn all_workloads_build_both_inputs() {
        for wl in all() {
            for input in [Input::Train, Input::Ref] {
                let p = wl.program(input);
                assert!(!p.is_empty(), "{} produced an empty program", wl.name());
            }
        }
    }

    #[test]
    fn all_workloads_run_to_completion() {
        for wl in all() {
            for input in [Input::Train, Input::Ref] {
                let p = wl.program(input);
                let mut emu = Emulator::new(&p);
                let summary = emu
                    .run(20_000_000)
                    .unwrap_or_else(|e| panic!("{} ({input:?}) failed: {e}", wl.name()));
                assert!(
                    summary.halted,
                    "{} ({input:?}) did not halt within fuel; ran {}",
                    wl.name(),
                    summary.committed
                );
                assert!(
                    summary.committed > 50_000,
                    "{} ({input:?}) too short: {}",
                    wl.name(),
                    summary.committed
                );
            }
        }
    }

    #[test]
    fn ref_is_at_least_as_long_as_train() {
        for wl in all() {
            let mut lens = [0u64; 2];
            for (i, input) in [Input::Train, Input::Ref].into_iter().enumerate() {
                let p = wl.program(input);
                let mut emu = Emulator::new(&p);
                lens[i] = emu.run(20_000_000).unwrap().committed;
            }
            assert!(lens[1] >= lens[0], "{}: ref {} < train {}", wl.name(), lens[1], lens[0]);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("go").is_some());
        assert!(by_name("mgrid").is_some());
        assert!(by_name("nonesuch").is_none());
        assert_eq!(all().len(), 9);
    }

    #[test]
    fn unknown_workload_error_lists_the_whole_registry() {
        let err = by_name_or_err("nonesuch").unwrap_err();
        assert!(err.contains("unknown workload \"nonesuch\""), "{err}");
        for wl in all() {
            assert!(err.contains(wl.name()), "error must name {:?}: {err}", wl.name());
        }
    }

    #[test]
    fn factor_one_is_the_unscaled_program() {
        for wl in all() {
            for input in [Input::Train, Input::Ref] {
                let base = wl.program(input);
                let scaled = wl.program_scaled(input, 1);
                assert_eq!(base.len(), scaled.len(), "{}", wl.name());
                for pc in 0..base.len() {
                    assert_eq!(base.inst(pc), scaled.inst(pc), "{} pc {pc}", wl.name());
                }
            }
        }
    }

    #[test]
    fn scaling_stretches_dynamic_length_not_static_structure() {
        for wl in all() {
            let base = wl.program(Input::Train);
            let scaled = wl.program_scaled(Input::Train, 4);
            assert_eq!(base.len(), scaled.len(), "{}: static structure changed", wl.name());
            let run = |p: &rvp_isa::Program| {
                let mut emu = Emulator::new(p);
                let mut n = 0u64;
                // Bounded walk: scaled programs are long, so stop once
                // growth is proven rather than running to the halt.
                while n < 1_000_000 {
                    match emu.step().expect("workload emulates") {
                        Some(_) => n += 1,
                        None => break,
                    }
                }
                n
            };
            let (b, s) = (run(&base), run(&scaled));
            assert!(
                s >= 2 * b.min(500_000),
                "{}: factor 4 did not stretch the run (base {b}, scaled {s})",
                wl.name()
            );
        }
    }

    #[test]
    fn language_groups_match_the_paper() {
        let c: Vec<&str> = all().iter().filter(|w| w.lang() == Lang::C).map(|w| w.name()).collect();
        assert_eq!(c, ["go", "ijpeg", "li", "m88ksim", "perl"]);
        let f: Vec<&str> =
            all().iter().filter(|w| w.lang() == Lang::Fortran).map(|w| w.name()).collect();
        assert_eq!(f, ["hydro2d", "mgrid", "su2cor", "turb3d"]);
    }
}
