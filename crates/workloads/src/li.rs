//! `li` stand-in: a cons-cell list interpreter.
//!
//! SPEC's `li` is a Lisp interpreter: pointer-chasing over tagged cons
//! cells with an indirect dispatch on the type tag. Tag loads are the
//! classic register-value-reuse case — most cells are pairs, so the tag
//! register usually already holds the value about to be loaded, and the
//! type-check temporaries that die right after the test correlate with
//! the next cell's tag (dead-register reuse, the optimization that gives
//! li its large gain in the paper).
//!
//! The dispatch is a genuine jump table: target instruction indices are
//! stored in a data table and jumped through `jmp`, so the program is
//! built in two passes (the first resolves the labels the table needs).

use rand::Rng;
use rvp_isa::{Program, ProgramBuilder, Reg};

use crate::util::{rng, scale};
use crate::Input;

const HEAP: u64 = 0x5_0000;
const ROOTS: u64 = 0x8_0000;
const JTABLE: u64 = 0x8_4000;
const NCELLS: usize = 512;
const NROOTS: usize = 24;

const TAG_NIL: u64 = 0;
const TAG_NUM: u64 = 1;
const TAG_PAIR: u64 = 2;

pub fn build(input: Input, factor: u64) -> Program {
    // Two-pass build: the jump table's contents are label addresses.
    let first = emit(input, factor, &[0, 0, 0]);
    let table = [
        first.label("do_nil").expect("label") as u64,
        first.label("do_num").expect("label") as u64,
        first.label("do_pair").expect("label") as u64,
    ];
    let second = emit(input, factor, &table);
    debug_assert_eq!(second.label("do_nil"), first.label("do_nil"));
    second
}

fn emit(input: Input, factor: u64, table: &[u64; 3]) -> Program {
    let mut r = rng(3, input);

    // Heap of cells: [tag, value, car, cdr] (4 words each). Chains whose
    // interior cells are mostly pairs with numeric cars.
    let mut heap = vec![0u64; NCELLS * 4];
    let cell_addr = |i: usize| HEAP + (i as u64) * 32;
    // Cells are allocated in *runs* of the same type (lists of numbers,
    // chains of pairs), as a real allocator produces. Runs are what let
    // the resetting confidence counters stay hot on the tag loads.
    let mut i = 0;
    while i < NCELLS {
        let run = r.gen_range(32..96).min(NCELLS - i);
        let kind = r.gen_range(0..100);
        let (tag, val) = if kind < 68 {
            (TAG_PAIR, 0)
        } else if kind < 92 {
            (TAG_NUM, r.gen_range(1..100u64))
        } else {
            (TAG_NIL, 0)
        };
        for k in i..i + run {
            heap[k * 4] = tag;
            heap[k * 4 + 1] = val; // number runs repeat the same value
                                   // Cars point near their cell (allocation locality), so a
                                   // car's tag usually matches the current run's tag.
            heap[k * 4 + 2] = cell_addr(r.gen_range(i..(i + run).min(NCELLS)));
            heap[k * 4 + 3] = if k + 1 < NCELLS && r.gen_range(0..100) < 94 {
                cell_addr(k + 1)
            } else {
                cell_addr(r.gen_range(0..NCELLS))
            };
        }
        i += run;
    }
    // Terminate some chains explicitly with NILs.
    for i in (0..NCELLS).step_by(37) {
        heap[i * 4] = TAG_NIL;
    }
    let roots: Vec<u64> = (0..NROOTS).map(|_| cell_addr(r.gen_range(0..NCELLS))).collect();
    let passes = scale(input, factor, 120, 320);

    let cur = Reg::int(1);
    let tag = Reg::int(2);
    let acc = Reg::int(3);
    let t = Reg::int(4);
    let rootp = Reg::int(5);
    let ri = Reg::int(6);
    let npass = Reg::int(7);
    let fuel = Reg::int(8);
    let val = Reg::int(16);
    let jt = Reg::int(17);
    let target = Reg::int(18);

    let mut b = ProgramBuilder::new();
    b.data(HEAP, &heap);
    b.data(ROOTS, &roots);
    b.data(JTABLE, table);
    b.proc("main");
    b.li(acc, 0);
    b.li(jt, JTABLE as i64);
    b.li(npass, passes);
    b.label("pass");
    b.li(rootp, ROOTS as i64);
    b.li(ri, NROOTS as i64);
    b.label("root");
    b.ld(cur, rootp, 0);
    b.li(fuel, 64); // bound each walk (cdr chains may be cyclic)
    b.label("walk");
    b.ld(tag, cur, 0); // tag load: mostly TAG_PAIR
    b.sll(t, tag, 3); // table offset; t dies right after the address add
    b.add(t, t, jt);
    b.ld(target, t, 0);
    b.jmp(target, &["do_nil", "do_num", "do_pair"]);
    b.label("do_nil");
    b.br("root_next");
    b.label("do_num");
    b.ld(val, cur, 8);
    b.add(acc, acc, val);
    b.br("step");
    b.label("do_pair");
    // Peek the car's tag; count numeric cars.
    b.ld(t, cur, 16);
    b.ld(t, t, 0);
    b.subi(t, t, TAG_NUM as i64);
    b.bnez(t, "step");
    b.addi(acc, acc, 1);
    b.label("step");
    b.ld(cur, cur, 24); // cdr chase
    b.subi(fuel, fuel, 1);
    b.bnez(fuel, "walk");
    b.label("root_next");
    b.addi(rootp, rootp, 8);
    b.subi(ri, ri, 1);
    b.bnez(ri, "root");
    b.subi(npass, npass, 1);
    b.bnez(npass, "pass");
    b.st(acc, Reg::int(30), -8);
    b.halt();
    b.build().expect("li builds")
}
