//! Register-reuse profiling (Section 5 of the paper).
//!
//! The profiler replays a program's architectural trace and measures, for
//! every static instruction that writes a register:
//!
//! * **same-register reuse** — how often the produced value already sat in
//!   the destination register (`old == new` in the trace);
//! * **other-register correlation** — how often the produced value sat in
//!   each *other* register at that moment, split into *dead* and *live*
//!   registers using static liveness;
//! * **last-value reuse** — how often the instruction reproduced its own
//!   previous result;
//! * an approximate **critical-path count** (Tullsen & Calder style) used
//!   by the reallocation pass's pruning heuristics.
//!
//! From those measurements it derives the paper's four candidate lists and
//! the [`PredictionPlan`]s consumed by the timing simulator: static RVP
//! marking at the four compiler-support levels of Figure 3, and the
//! `dead` / `dead_lv` reallocation assumptions of Figures 5, 6 and 8.
//!
//! # Examples
//!
//! ```
//! use rvp_isa::{ProgramBuilder, Reg};
//! use rvp_profile::{Profile, ProfileConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (p, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
//! let mut b = ProgramBuilder::new();
//! b.data(0x1000, &[7; 32]);
//! b.li(p, 0x1000).li(n, 32);
//! b.label("loop");
//! b.ld(v, p, 0);        // always loads 7: perfect same-register reuse
//! b.addi(p, p, 8);
//! b.subi(n, n, 1);
//! b.bnez(n, "loop");
//! b.halt();
//! let program = b.build()?;
//!
//! let profile = Profile::collect(&program, &ProfileConfig::default())?;
//! let ld_pc = 2;
//! assert!(profile.same_rate(ld_pc) > 0.9);
//! # Ok(())
//! # }
//! ```

mod collect;
mod lists;

pub use collect::{Fig1Row, InstStats, Profile, ProfileConfig};
pub use lists::{Assist, PlanScope, ReuseLists, SrvpLevel};

pub use rvp_vpred::{PredictionPlan, ReuseKind};
