use rvp_emu::{Committed, EmuError, Emulator};
use rvp_isa::analysis::{Liveness, RegSet};
use rvp_isa::cfg::Cfg;
use rvp_isa::{Program, Reg, NUM_REGS};

/// Configuration for a profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Maximum dynamic instructions to profile.
    pub max_insts: u64,
    /// Minimum executions before a static instruction's rates are
    /// considered meaningful (filters cold code out of the candidate
    /// lists).
    pub min_execs: u64,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig { max_insts: 2_000_000, min_execs: 32 }
    }
}

/// Per-static-instruction profile counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstStats {
    /// Dynamic executions observed.
    pub execs: u64,
    /// Executions where the destination register already held the value
    /// (same-register reuse).
    pub same_hits: u64,
    /// Executions where the value equalled this instruction's previous
    /// result (last-value reuse).
    pub lv_hits: u64,
    /// Executions where the value continued the instruction's previous
    /// stride (`new == last + (last - before_last)`), the pattern the
    /// paper's "Et Cetera" section exposes with an inserted add.
    pub stride_hits: u64,
    /// Executions where the value sat in each register (indexed by dense
    /// register index) at execution time.
    pub reg_hits: Box<[u64; NUM_REGS]>,
    /// Boyer–Moore majority vote for the *primary producer* of each
    /// correlated register's value: `(producer pc, vote)`.
    producer_vote: Box<[(u32, i64); NUM_REGS]>,
    /// Approximate count of times this instruction's result was the
    /// latest-arriving input of a consumer (critical-path weight).
    pub crit: u64,
}

impl InstStats {
    fn new() -> InstStats {
        InstStats {
            execs: 0,
            same_hits: 0,
            lv_hits: 0,
            stride_hits: 0,
            reg_hits: Box::new([0; NUM_REGS]),
            producer_vote: Box::new([(u32::MAX, 0); NUM_REGS]),
            crit: 0,
        }
    }
}

/// One benchmark's Figure 1 data: the fraction of dynamic *loads* whose
/// value was already available, by (cumulative) category.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Fig1Row {
    /// Dynamic loads observed.
    pub loads: u64,
    /// ... whose value was already in the destination register.
    pub same: u64,
    /// ... in the same or any dead register (same class).
    pub dead: u64,
    /// ... in any register at all.
    pub any: u64,
    /// ... in any register, or equal to the load's last value.
    pub any_or_lvp: u64,
}

impl Fig1Row {
    /// The four fractions in Figure 1's order (same, dead, any,
    /// register-or-lvp), in `[0, 1]`.
    pub fn fractions(&self) -> [f64; 4] {
        let d = self.loads.max(1) as f64;
        [
            self.same as f64 / d,
            self.dead as f64 / d,
            self.any as f64 / d,
            self.any_or_lvp as f64 / d,
        ]
    }
}

/// A completed register-reuse profile of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    config: ProfileConfig,
    stats: Vec<InstStats>,
    /// Registers statically dead after each instruction (same-class
    /// constraints are applied at list-building time).
    dead_after: Vec<RegSet>,
    fig1: Fig1Row,
    committed: u64,
}

impl Profile {
    /// Runs the program under the emulator for at most
    /// `config.max_insts` committed instructions and collects the
    /// profile.
    ///
    /// # Errors
    ///
    /// Propagates emulator errors (malformed programs).
    pub fn collect(program: &Program, config: &ProfileConfig) -> Result<Profile, EmuError> {
        let mut emu = Emulator::new(program);
        Profile::collect_stream(program, config, std::iter::from_fn(move || emu.step().transpose()))
    }

    /// Collects a profile from any committed-record stream — the live
    /// emulator ([`Profile::collect`]) or a replayed trace.
    ///
    /// The stream must be the committed stream of `program` from its
    /// initial state; at most `config.max_insts` records are consumed.
    ///
    /// # Errors
    ///
    /// Propagates the stream's error type (e.g. emulator or trace-decode
    /// errors).
    pub fn collect_stream<E>(
        program: &Program,
        config: &ProfileConfig,
        stream: impl IntoIterator<Item = Result<Committed, E>>,
    ) -> Result<Profile, E> {
        let n = program.len();
        let mut stats: Vec<InstStats> = (0..n).map(|_| InstStats::new()).collect();

        // Static deadness per instruction, from per-procedure liveness.
        let mut dead_after = vec![RegSet::new(); n];
        for proc in program.procedures() {
            let cfg = Cfg::build(program, &proc);
            let live = Liveness::compute(program, &cfg);
            for pc in proc.range.clone() {
                let live_set = live.live_after(pc);
                let mut dead = RegSet::new();
                for i in 0..NUM_REGS {
                    let r = Reg::from_index(i);
                    if !live_set.contains(r) && !r.is_zero() {
                        dead.insert(r);
                    }
                }
                dead_after[pc] = dead;
            }
        }

        let mut shadow = [0u64; NUM_REGS];
        shadow[rvp_isa::analysis::abi::SP.index()] = rvp_emu::STACK_TOP;
        let mut last_value: Vec<Option<u64>> = vec![None; n];
        let mut last_stride: Vec<i64> = vec![0; n];
        let mut last_writer: [u32; NUM_REGS] = [u32::MAX; NUM_REGS];
        let mut depth: [u64; NUM_REGS] = [0; NUM_REGS];
        let mut fig1 = Fig1Row::default();

        let mut stream = stream.into_iter();
        let mut committed = 0u64;
        while committed < config.max_insts {
            let Some(item) = stream.next() else { break };
            let c = item?;
            committed += 1;
            let inst = &program.insts()[c.pc];
            let s = &mut stats[c.pc];
            s.execs += 1;

            // Critical-path vote: credit the producer of the
            // latest-arriving (deepest) source.
            let mut max_depth = 0u64;
            let mut crit_writer = u32::MAX;
            for src in inst.srcs().into_iter().flatten() {
                if depth[src.index()] >= max_depth && last_writer[src.index()] != u32::MAX {
                    max_depth = depth[src.index()];
                    crit_writer = last_writer[src.index()];
                }
            }
            if crit_writer != u32::MAX {
                stats[crit_writer as usize].crit += 1;
            }
            let s = &mut stats[c.pc];

            if let Some(dst) = c.dst {
                let new = c.new_value;
                let same = c.old_value == new;
                let lv_hit = last_value[c.pc] == Some(new);
                if same {
                    s.same_hits += 1;
                }
                if lv_hit {
                    s.lv_hits += 1;
                }
                if let Some(last) = last_value[c.pc] {
                    if last.wrapping_add(last_stride[c.pc] as u64) == new {
                        s.stride_hits += 1;
                    }
                    last_stride[c.pc] = new.wrapping_sub(last) as i64;
                }
                last_value[c.pc] = Some(new);

                // Branch-free pre-pass over the register file (the
                // compiler vectorizes this); the per-register work below
                // then runs only for actual matches.
                let mut match_mask = 0u64;
                for (i, &held) in shadow.iter().enumerate() {
                    match_mask |= u64::from(held == new) << i;
                }
                let any = match_mask != 0;
                let mut dead_hit = false;
                let mut m = match_mask;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    s.reg_hits[i] += 1;
                    let r = Reg::from_index(i);
                    if dead_after[c.pc].contains(r) && r.class() == dst.class() {
                        dead_hit = true;
                    }
                    // Majority vote for the value's producer.
                    let vote = &mut s.producer_vote[i];
                    let producer = last_writer[i];
                    if producer != u32::MAX {
                        if vote.1 == 0 {
                            *vote = (producer, 1);
                        } else if vote.0 == producer {
                            vote.1 += 1;
                        } else {
                            vote.1 -= 1;
                        }
                    }
                }

                if inst.is_load() {
                    fig1.loads += 1;
                    if same {
                        fig1.same += 1;
                    }
                    if same || dead_hit {
                        fig1.dead += 1;
                    }
                    if any {
                        fig1.any += 1;
                    }
                    if any || lv_hit {
                        fig1.any_or_lvp += 1;
                    }
                }

                // Apply architectural update.
                shadow[dst.index()] = new;
                last_writer[dst.index()] = c.pc as u32;
                depth[dst.index()] = max_depth + 1;
            }
        }

        Ok(Profile { config: *config, stats, dead_after, fig1, committed })
    }

    /// The configuration the profile was collected with.
    pub fn config(&self) -> &ProfileConfig {
        &self.config
    }

    /// Dynamic instructions profiled.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Per-instruction statistics, indexed by PC.
    pub fn stats(&self) -> &[InstStats] {
        &self.stats
    }

    /// Registers statically dead after `pc` (zero registers excluded).
    pub fn dead_after(&self, pc: usize) -> RegSet {
        self.dead_after[pc]
    }

    /// Figure 1 counters for this run.
    pub fn fig1(&self) -> Fig1Row {
        self.fig1
    }

    /// Same-register reuse rate of the instruction at `pc`, in `[0, 1]`.
    pub fn same_rate(&self, pc: usize) -> f64 {
        let s = &self.stats[pc];
        s.same_hits as f64 / s.execs.max(1) as f64
    }

    /// Last-value reuse rate of the instruction at `pc`.
    pub fn lv_rate(&self, pc: usize) -> f64 {
        let s = &self.stats[pc];
        s.lv_hits as f64 / s.execs.max(1) as f64
    }

    /// Stride-predictability rate of the instruction at `pc`.
    pub fn stride_rate(&self, pc: usize) -> f64 {
        let s = &self.stats[pc];
        s.stride_hits as f64 / s.execs.max(1) as f64
    }

    /// Correlation rate between the value produced at `pc` and register
    /// `r`'s content at execution time.
    pub fn reg_rate(&self, pc: usize, r: Reg) -> f64 {
        let s = &self.stats[pc];
        s.reg_hits[r.index()] as f64 / s.execs.max(1) as f64
    }

    /// Approximate critical-path weight of the instruction at `pc`.
    pub fn criticality(&self, pc: usize) -> u64 {
        self.stats[pc].crit
    }

    /// The majority-vote *primary producer* of the value correlation
    /// between `pc` and register `r`: the static instruction whose result,
    /// sitting in `r`, the instruction at `pc` keeps reproducing.
    pub fn primary_producer(&self, pc: usize, r: Reg) -> Option<usize> {
        let (producer, vote) = self.stats[pc].producer_vote[r.index()];
        (vote > 0 && producer != u32::MAX).then_some(producer as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_isa::ProgramBuilder;

    #[test]
    fn same_register_reuse_is_measured() {
        let (p, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[9; 64]);
        b.li(p, 0x1000).li(n, 64);
        b.label("loop");
        b.ld(v, p, 0); // pc 2: always 9 -> same-register reuse after 1st
        b.addi(p, p, 8); // pc 3: never reuses (pointer strides)
        b.subi(n, n, 1);
        b.bnez(n, "loop");
        b.halt();
        let prog = b.build().unwrap();
        let prof = Profile::collect(&prog, &ProfileConfig::default()).unwrap();
        assert!(prof.same_rate(2) > 0.95, "rate = {}", prof.same_rate(2));
        assert_eq!(prof.stats()[3].same_hits, 0);
        assert!(prof.lv_rate(2) > 0.95);
    }
}
