use rvp_isa::analysis::abi;
use rvp_isa::{Program, Reg, NUM_REGS};
use rvp_vpred::{PredictionPlan, ReuseKind};

use crate::collect::Profile;

/// Compiler-support level for static RVP (Figure 3's configurations, in
/// increasing order of assumed compiler capability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SrvpLevel {
    /// `srvp_same`: mark loads with natural same-register reuse only.
    Same,
    /// `srvp_dead`: additionally exploit correlation with dead registers
    /// (reallocation merges live ranges).
    Dead,
    /// `srvp_live`: additionally exploit correlation with live registers
    /// (a move puts the value in place; its latency is not charged, so
    /// this is the paper's optimistic upper bound).
    Live,
    /// `srvp_live_lv`: additionally convert last-value reuse into
    /// same-register reuse via exclusive registers.
    LiveLv,
}

/// Compiler assistance assumed for *dynamic* RVP (Figures 5/6/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Assist {
    /// No compiler support: hardware sees only natural same-register
    /// reuse.
    None,
    /// Dead-register reallocation (`drvp_dead`).
    Dead,
    /// Dead-register plus last-value reallocation (`drvp_dead_lv`).
    DeadLv,
}

/// Which instructions are prediction candidates (shared with the timing
/// model; see [`rvp_vpred::Scope`]).
pub use rvp_vpred::Scope as PlanScope;

/// The paper's four candidate lists at a given profile threshold
/// (Section 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseLists {
    /// Instructions with same-register value reuse.
    pub same: Vec<usize>,
    /// Instructions highly correlated with a value in a dead register.
    pub dead: Vec<(usize, Reg)>,
    /// Instructions highly correlated with a value in a live register.
    pub live: Vec<(usize, Reg)>,
    /// Instructions with high last-value predictability.
    pub last_value: Vec<usize>,
}

impl Profile {
    fn qualifies(&self, pc: usize) -> bool {
        self.stats()[pc].execs >= self.config().min_execs
    }

    /// The best same-class, non-reserved register correlated with `pc`'s
    /// value, restricted to registers that are `dead` (or, if `false`,
    /// live) after `pc`. Returns the register and its hit rate.
    pub fn best_other_reg(&self, program: &Program, pc: usize, dead: bool) -> Option<(Reg, f64)> {
        let dst = program.insts()[pc].dst()?;
        let reserved = abi::reserved();
        let stats = &self.stats()[pc];
        let dead_set = self.dead_after(pc);
        let mut best: Option<(Reg, u64)> = None;
        for i in 0..NUM_REGS {
            let r = Reg::from_index(i);
            if r == dst || r.class() != dst.class() || r.is_zero() || reserved.contains(r) {
                continue;
            }
            if dead_set.contains(r) != dead {
                continue;
            }
            let hits = stats.reg_hits[i];
            if best.map_or(hits > 0, |(_, b)| hits > b) {
                best = Some((r, hits));
            }
        }
        best.map(|(r, hits)| (r, hits as f64 / stats.execs.max(1) as f64))
    }

    /// Builds the four candidate lists at `threshold` (e.g. 0.80), over
    /// the given scope.
    pub fn reuse_lists(&self, program: &Program, threshold: f64, scope: PlanScope) -> ReuseLists {
        let mut lists = ReuseLists::default();
        for pc in 0..program.len() {
            let inst = &program.insts()[pc];
            if inst.dst().is_none() || !self.qualifies(pc) {
                continue;
            }
            if scope == PlanScope::LoadsOnly && !inst.is_load() {
                continue;
            }
            if self.same_rate(pc) >= threshold {
                lists.same.push(pc);
            }
            if let Some((r, rate)) = self.best_other_reg(program, pc, true) {
                if rate >= threshold {
                    lists.dead.push((pc, r));
                }
            }
            if let Some((r, rate)) = self.best_other_reg(program, pc, false) {
                if rate >= threshold {
                    lists.live.push((pc, r));
                }
            }
            if self.lv_rate(pc) >= threshold {
                lists.last_value.push(pc);
            }
        }
        lists
    }

    /// Builds the static-RVP marking plan: which loads the compiler marks
    /// with `rvp_` opcodes, and through which reuse relation each
    /// prediction is tracked. Precedence follows the paper: natural
    /// same-register reuse first, then dead-register merging, then
    /// live-register moves, then last-value registers.
    pub fn static_plan(
        &self,
        program: &Program,
        threshold: f64,
        level: SrvpLevel,
    ) -> PredictionPlan {
        let mut plan = PredictionPlan::new();
        for pc in 0..program.len() {
            let inst = &program.insts()[pc];
            if !inst.is_load() || !self.qualifies(pc) {
                continue;
            }
            if let Some(kind) = self.choose_kind(program, pc, threshold, level) {
                plan.insert(pc, kind);
            }
        }
        plan
    }

    fn choose_kind(
        &self,
        program: &Program,
        pc: usize,
        threshold: f64,
        level: SrvpLevel,
    ) -> Option<ReuseKind> {
        if self.same_rate(pc) >= threshold {
            return Some(ReuseKind::SameReg);
        }
        if level >= SrvpLevel::Dead {
            if let Some((r, rate)) = self.best_other_reg(program, pc, true) {
                if rate >= threshold {
                    return Some(ReuseKind::OtherReg(r));
                }
            }
        }
        if level >= SrvpLevel::Live {
            if let Some((r, rate)) = self.best_other_reg(program, pc, false) {
                if rate >= threshold {
                    return Some(ReuseKind::OtherReg(r));
                }
            }
        }
        if level >= SrvpLevel::LiveLv && self.lv_rate(pc) >= threshold {
            return Some(ReuseKind::LastValue);
        }
        None
    }

    /// Builds the compiler-assistance plan for *dynamic* RVP: only
    /// instructions whose reuse the compiler must expose are listed
    /// (instructions with natural same-register reuse need no entry —
    /// the hardware's confidence counters find them unaided).
    pub fn assist_plan(
        &self,
        program: &Program,
        threshold: f64,
        scope: PlanScope,
        assist: Assist,
    ) -> PredictionPlan {
        let mut plan = PredictionPlan::new();
        if assist == Assist::None {
            return plan;
        }
        for pc in 0..program.len() {
            let inst = &program.insts()[pc];
            if inst.dst().is_none() || !self.qualifies(pc) {
                continue;
            }
            if scope == PlanScope::LoadsOnly && !inst.is_load() {
                continue;
            }
            // Natural reuse already works; don't reallocate it away.
            if self.same_rate(pc) >= threshold {
                continue;
            }
            if let Some((r, rate)) = self.best_other_reg(program, pc, true) {
                if rate >= threshold {
                    plan.insert(pc, ReuseKind::OtherReg(r));
                    continue;
                }
            }
            if assist == Assist::DeadLv && self.lv_rate(pc) >= threshold {
                plan.insert(pc, ReuseKind::LastValue);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::ProfileConfig;
    use rvp_isa::ProgramBuilder;

    /// A loop exercising distinct reuse classes:
    ///  * pc 3 `ld d`  — a fresh value each iteration (no reuse);
    ///  * pc 5 `ld w`  — reloads the value just stored from `d`, which is
    ///    dead by then: pure dead-register correlation;
    ///  * pc 6 `ld v`  — always loads the constant 9: same-register and
    ///    last-value reuse.
    fn correlated_program() -> Program {
        let (p, q, d, w, v, n) =
            (Reg::int(1), Reg::int(2), Reg::int(5), Reg::int(3), Reg::int(4), Reg::int(6));
        let values: Vec<u64> = (0..64u64).map(|i| i * 17 + 3).collect();
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &values);
        b.data(0x3000, &[9]);
        b.li(p, 0x1000); // 0
        b.li(q, 0x3000); // 1
        b.li(n, 64); // 2
        b.label("loop");
        b.ld(d, p, 0); // 3: d = arr[i]
        b.st(d, p, 0x1000); // 4: scratch[i] = d; last use of d
        b.ld(w, p, 0x1000); // 5: w = scratch[i] == dead d
        b.ld(v, q, 0); // 6: v = 9 always
        b.addi(p, p, 8); // 7
        b.subi(n, n, 1); // 8
        b.bnez(n, "loop"); // 9
        b.halt();
        b.build().unwrap()
    }

    fn profile(p: &Program) -> Profile {
        Profile::collect(p, &ProfileConfig { max_insts: 100_000, min_execs: 8 }).unwrap()
    }

    #[test]
    fn lists_classify_reuse_kinds() {
        let prog = correlated_program();
        let prof = profile(&prog);
        let lists = prof.reuse_lists(&prog, 0.8, PlanScope::LoadsOnly);
        assert!(lists.same.contains(&6), "same list: {:?}", lists.same);
        assert!(
            lists.dead.iter().any(|&(pc, r)| pc == 5 && r == Reg::int(5)),
            "dead list: {:?}",
            lists.dead
        );
        assert!(lists.last_value.contains(&6));
        // The striding load has no reuse of any kind.
        assert!(!lists.same.contains(&3));
        assert!(!lists.dead.iter().any(|&(pc, _)| pc == 3));
        assert!(!lists.last_value.contains(&3));
    }

    #[test]
    fn static_plan_precedence() {
        let prog = correlated_program();
        let prof = profile(&prog);
        let same_only = prof.static_plan(&prog, 0.8, SrvpLevel::Same);
        assert_eq!(same_only.kind(6), Some(ReuseKind::SameReg));
        assert_eq!(same_only.kind(5), None); // dead corr needs Dead level
        let dead = prof.static_plan(&prog, 0.8, SrvpLevel::Dead);
        assert_eq!(dead.kind(5), Some(ReuseKind::OtherReg(Reg::int(5))));
        // Same-reg keeps precedence even at higher levels.
        assert_eq!(dead.kind(6), Some(ReuseKind::SameReg));
    }

    #[test]
    fn assist_plan_skips_natural_reuse() {
        let prog = correlated_program();
        let prof = profile(&prog);
        let plan = prof.assist_plan(&prog, 0.8, PlanScope::LoadsOnly, Assist::DeadLv);
        assert!(!plan.contains(6), "naturally reusing load must stay unlisted");
        assert_eq!(plan.kind(5), Some(ReuseKind::OtherReg(Reg::int(5))));
        let none = prof.assist_plan(&prog, 0.8, PlanScope::LoadsOnly, Assist::None);
        assert!(none.is_empty());
    }

    #[test]
    fn primary_producer_found() {
        let prog = correlated_program();
        let prof = profile(&prog);
        // The value in dead register r5 that pc 5 reproduces was produced
        // by the `ld d` at pc 3.
        assert_eq!(prof.primary_producer(5, Reg::int(5)), Some(3));
    }

    #[test]
    fn threshold_filters() {
        let prog = correlated_program();
        let prof = profile(&prog);
        let lists = prof.reuse_lists(&prog, 1.01, PlanScope::AllInsts);
        assert!(lists.same.is_empty());
        assert!(lists.dead.is_empty());
    }
}
