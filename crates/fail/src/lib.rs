//! Seedable, deterministic failpoint framework.
//!
//! Production simulation sweeps die in ways unit tests never exercise:
//! a short read from a cold cache file, a torn write on a full disk, a
//! worker panic deep inside one grid cell. This crate provides *named
//! injection sites* that the trace store, the replay path and the grid
//! workers consult, and a schedule — parsed once from the `RVP_FAIL`
//! environment variable (or [`configure`] in tests) — that decides
//! deterministically which hits of which site actually fault.
//!
//! # Activation
//!
//! Failpoints are **off** unless `RVP_FAIL` is set (or [`configure`]
//! was called). The disabled fast path is a single relaxed load of a
//! process-wide atomic, so instrumented code costs nothing measurable
//! in release hot paths; all parsing, hashing and bookkeeping live
//! behind that check.
//!
//! # Schedule grammar
//!
//! `RVP_FAIL` is a semicolon-separated list of clauses:
//!
//! ```text
//! seed=42;trace.reader.frame=flip@p0.25;grid.cell.run=panic@2;store.write=io@3+
//! ```
//!
//! * `seed=N` — seeds the per-hit hash for probabilistic triggers.
//! * `<site>=<kind>[@<trigger>][,thread=<substr>]` — arm `site` with a
//!   fault of `kind`:
//!   * kinds: `io` (injected I/O error), `short` (short read), `flip`
//!     (deterministic bit flip in a buffer), `delay<MS>` (sleep MS
//!     milliseconds), `panic`;
//!   * triggers: absent (every hit), `pF` (each hit fires independently
//!     with probability `F`, deterministic in `(seed, site, hit)`),
//!     `N` (only the N-th hit, 1-based), `N+` (the N-th and every later
//!     hit);
//!   * `thread=<substr>` restricts the rule to threads whose name
//!     contains `substr` — unit tests use this (libtest names each test
//!     thread after the test) so concurrently running tests never see
//!     each other's faults.
//!
//! Every evaluation is a pure function of `(seed, site, hit index)`, so
//! a chaos run is reproducible bit-for-bit given the same schedule and
//! a deterministic hit order (e.g. `RVP_THREADS=1`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// The faults a site can be armed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an injected `std::io::Error`.
    Io,
    /// Deliver fewer bytes than asked (the caller decides how).
    ShortRead,
    /// Flip one deterministic bit in the buffer under test.
    BitFlip,
    /// Sleep for the given number of milliseconds, then proceed.
    Delay(u64),
    /// Panic with an identifiable message.
    Panic,
}

impl Fault {
    fn parse(s: &str) -> Option<Fault> {
        match s {
            "io" => Some(Fault::Io),
            "short" => Some(Fault::ShortRead),
            "flip" => Some(Fault::BitFlip),
            "panic" => Some(Fault::Panic),
            _ => {
                let ms = s.strip_prefix("delay")?;
                Some(Fault::Delay(ms.parse().ok()?))
            }
        }
    }
}

/// When an armed site actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Every hit.
    Always,
    /// Each hit independently, with this probability.
    Prob(f64),
    /// Only the N-th hit (1-based).
    Nth(u64),
    /// The N-th hit and every one after it.
    From(u64),
}

impl Trigger {
    fn parse(s: &str) -> Option<Trigger> {
        if let Some(p) = s.strip_prefix('p') {
            let p: f64 = p.parse().ok()?;
            return (0.0..=1.0).contains(&p).then_some(Trigger::Prob(p));
        }
        if let Some(n) = s.strip_suffix('+') {
            return Some(Trigger::From(n.parse().ok()?));
        }
        Some(Trigger::Nth(s.parse().ok()?))
    }

    fn fires(self, seed: u64, site: &str, hit: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::Nth(n) => hit == n,
            Trigger::From(n) => hit >= n,
            Trigger::Prob(p) => {
                let x = splitmix64(seed ^ fnv1a(site.as_bytes()) ^ hit.wrapping_mul(HIT_SALT));
                (x as f64 / u64::MAX as f64) < p
            }
        }
    }
}

const HIT_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

#[derive(Debug, Clone, PartialEq)]
struct Rule {
    site: String,
    fault: Fault,
    trigger: Trigger,
    /// Fire only on threads whose name contains this substring.
    thread: Option<String>,
}

#[derive(Debug, Default)]
struct Config {
    seed: u64,
    rules: Vec<Rule>,
}

/// Per-site bookkeeping, kept off the disabled fast path.
#[derive(Debug, Default, Clone, Copy)]
struct SiteStats {
    hits: u64,
    fired: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CONFIG: RwLock<Option<Config>> = RwLock::new(None);
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn stats() -> &'static Mutex<HashMap<String, SiteStats>> {
    static STATS: OnceLock<Mutex<HashMap<String, SiteStats>>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// FNV-1a over `bytes` (the same hash the trace format uses, local so
/// this crate stays dependency-free).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Parses `spec` into a schedule and arms it process-wide. An empty
/// spec (or `"off"`) disarms everything. Returns a description of the
/// first malformed clause on error, leaving the previous schedule
/// in place.
pub fn configure(spec: &str) -> Result<(), String> {
    let spec = spec.trim();
    if spec.is_empty() || spec == "off" {
        disable();
        return Ok(());
    }
    let mut config = Config::default();
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let (key, value) =
            clause.split_once('=').ok_or_else(|| format!("clause without '=': {clause:?}"))?;
        if key == "seed" {
            config.seed = value.parse().map_err(|_| format!("bad seed: {value:?}"))?;
            continue;
        }
        let mut fault_spec = value;
        let mut thread = None;
        if let Some((head, opt)) = value.split_once(',') {
            fault_spec = head;
            thread = Some(
                opt.strip_prefix("thread=")
                    .ok_or_else(|| format!("unknown rule option: {opt:?}"))?
                    .to_owned(),
            );
        }
        let (kind, trigger) = match fault_spec.split_once('@') {
            Some((kind, trig)) => {
                (kind, Trigger::parse(trig).ok_or_else(|| format!("bad trigger: {trig:?}"))?)
            }
            None => (fault_spec, Trigger::Always),
        };
        let fault = Fault::parse(kind).ok_or_else(|| format!("unknown fault kind: {kind:?}"))?;
        config.rules.push(Rule { site: key.to_owned(), fault, trigger, thread });
    }
    let armed = !config.rules.is_empty();
    *CONFIG.write().expect("failpoint config poisoned") = Some(config);
    stats().lock().expect("failpoint stats poisoned").clear();
    ACTIVE.store(armed, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint (and re-enables the free fast path).
pub fn disable() {
    ACTIVE.store(false, Ordering::Release);
    *CONFIG.write().expect("failpoint config poisoned") = None;
}

fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        // An explicit configure() beats the environment.
        if CONFIG.read().expect("failpoint config poisoned").is_some() {
            return;
        }
        if let Ok(spec) = std::env::var("RVP_FAIL") {
            if let Err(e) = configure(&spec) {
                eprintln!("warning: RVP_FAIL ignored ({e})");
            }
        }
    });
}

/// Whether any failpoint is armed. The disabled path is one relaxed
/// atomic load; instrumented hot code should gate on this.
#[inline]
pub fn active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Acquire)
}

/// Evaluates `site` for this hit: bumps the hit counter and returns the
/// armed fault if the schedule says this hit fires. [`Fault::Delay`] is
/// executed (slept) here and still returned, so callers can log it;
/// [`Fault::Panic`] panics here with an identifiable message.
///
/// Returns `None` on the (free) disabled path.
pub fn check(site: &str) -> Option<Fault> {
    if !active() {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> Option<Fault> {
    let guard = CONFIG.read().expect("failpoint config poisoned");
    let config = guard.as_ref()?;
    let rule = config.rules.iter().find(|r| r.site == site)?;
    if let Some(substr) = &rule.thread {
        let current = std::thread::current();
        if !current.name().is_some_and(|n| n.contains(substr.as_str())) {
            return None;
        }
    }
    let hit = {
        let mut stats = stats().lock().expect("failpoint stats poisoned");
        let entry = stats.entry(site.to_owned()).or_default();
        entry.hits += 1;
        entry.hits
    };
    if !rule.trigger.fires(config.seed, site, hit) {
        return None;
    }
    let fault = rule.fault;
    drop(guard);
    stats().lock().expect("failpoint stats poisoned").entry(site.to_owned()).or_default().fired +=
        1;
    match fault {
        Fault::Delay(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Fault::Panic => panic!("injected panic at failpoint {site}"),
        _ => {}
    }
    Some(fault)
}

/// Failpoint for I/O call sites: any fault armed at `site` (other than
/// a pure delay, which just sleeps) becomes an injected
/// `std::io::Error`.
#[inline]
pub fn io_at(site: &str) -> std::io::Result<()> {
    match check(site) {
        None | Some(Fault::Delay(_)) => Ok(()),
        Some(_) => Err(std::io::Error::other(format!("injected fault at failpoint {site}"))),
    }
}

/// Failpoint for buffer call sites: a `flip` fault flips one
/// deterministic bit of `buf` (position keyed by the buffer contents),
/// a `short` fault truncates it by one byte; other faults become the
/// caller's problem via the returned value.
#[inline]
pub fn corrupt_at(site: &str, buf: &mut Vec<u8>) -> Option<Fault> {
    let fault = check(site)?;
    match fault {
        Fault::BitFlip if !buf.is_empty() => {
            let bit = splitmix64(fnv1a(buf)) as usize % (buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
        }
        Fault::ShortRead => {
            buf.pop();
        }
        _ => {}
    }
    Some(fault)
}

/// Total faults fired at `site` since the schedule was armed.
pub fn fired(site: &str) -> u64 {
    stats().lock().expect("failpoint stats poisoned").get(site).map_or(0, |s| s.fired)
}

/// All sites that fired at least once, with their fire counts, sorted
/// by site name — the grid embeds this in its summary so a chaos run
/// documents what was injected.
pub fn snapshot() -> Vec<(String, u64)> {
    let stats = stats().lock().expect("failpoint stats poisoned");
    let mut out: Vec<(String, u64)> =
        stats.iter().filter(|(_, s)| s.fired > 0).map(|(k, s)| (k.clone(), s.fired)).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global (one schedule per process), so
    // the tests that arm schedules serialize on this mutex; the thread
    // filters are belt-and-braces on top.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_by_default_and_free() {
        // Never configured on this thread's sites.
        assert_eq!(check("tests.nosite"), None);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _guard = serial();
        configure("tests.nth=io@2,thread=nth_trigger").unwrap();
        assert_eq!(check("tests.nth"), None);
        assert_eq!(check("tests.nth"), Some(Fault::Io));
        assert_eq!(check("tests.nth"), None);
        assert_eq!(fired("tests.nth"), 1);
    }

    #[test]
    fn from_trigger_fires_from_n_onwards() {
        let _guard = serial();
        configure("tests.from=flip@3+,thread=from_trigger").unwrap();
        assert_eq!(check("tests.from"), None);
        assert_eq!(check("tests.from"), None);
        assert_eq!(check("tests.from"), Some(Fault::BitFlip));
        assert_eq!(check("tests.from"), Some(Fault::BitFlip));
    }

    #[test]
    fn probability_is_deterministic_in_seed_and_hit() {
        let _guard = serial();
        let run = |seed: &str| {
            configure(&format!("seed={seed};tests.prob=io@p0.5,thread=probability_is")).unwrap();
            (0..64).map(|_| check("tests.prob").is_some()).collect::<Vec<bool>>()
        };
        let a = run("42");
        let b = run("42");
        let c = run("43");
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds should differ");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fires), "p=0.5 fired {fires}/64 times");
    }

    #[test]
    fn io_helper_converts_to_error() {
        let _guard = serial();
        configure("tests.io=io,thread=io_helper").unwrap();
        assert!(io_at("tests.io").is_err());
        assert!(io_at("tests.other").is_ok());
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let _guard = serial();
        configure("tests.flip=flip,thread=corrupt_flips").unwrap();
        let original = vec![0u8; 32];
        let mut buf = original.clone();
        assert_eq!(corrupt_at("tests.flip", &mut buf), Some(Fault::BitFlip));
        let flipped: u32 = original.iter().zip(&buf).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn thread_filter_blocks_other_threads() {
        let _guard = serial();
        configure("tests.thread=io,thread=no_such_thread_name").unwrap();
        assert_eq!(check("tests.thread"), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _guard = serial();
        for bad in ["tests.x", "tests.x=warp", "tests.x=io@pnan", "seed=x", "tests.x=io,who=1"] {
            assert!(configure(bad).is_err(), "{bad:?} should be rejected");
        }
        // `off` and empty are valid no-ops.
        configure("off").unwrap();
        configure("").unwrap();
    }

    #[test]
    fn panic_fault_panics_with_site_name() {
        let _guard = serial();
        configure("tests.panic=panic,thread=panic_fault").unwrap();
        let err = std::panic::catch_unwind(|| check("tests.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("tests.panic"), "panic message: {msg}");
    }
}
