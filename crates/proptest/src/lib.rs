//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build container has no network access, so the real `proptest`
//! crate cannot be fetched. This crate keeps the same surface —
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `Strategy`, `any`,
//! `proptest::collection::vec`, `ProptestConfig` — on top of a small
//! generate-only engine: cases are drawn from a deterministic per-test
//! seed and failures report the case number and seed instead of
//! shrinking. That trades minimal counterexamples for zero dependencies,
//! which is the right trade in a hermetic build.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API parity with real proptest; this shim never
    /// shrinks, so the value is ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// The RNG handed to strategies while generating one case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }
}

/// Drives `cases` generated cases of one property. Called by the
/// [`proptest!`] macro; not part of the public mirror API.
#[doc(hidden)]
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    for case in 0..config.cases {
        // Deterministic per-(test, case) seed so failures are stable and
        // reproducible without a persistence file.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest (offline shim): property `{name}` failed at case {case}/{} \
                 (seed {seed:#018x})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into().0 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each contained property over many generated cases.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `fn` items whose
/// arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among the argument strategies, mirroring
/// `prop_oneof!`. All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(usize),
        B(usize),
    }

    proptest! {
        #[test]
        fn ranges_and_maps(x in 0..10usize, tag in prop_oneof![
            (0..5usize).prop_map(Tag::A),
            (5..9usize).prop_map(Tag::B),
        ]) {
            prop_assert!(x < 10);
            match tag {
                Tag::A(n) => prop_assert!(n < 5),
                Tag::B(n) => prop_assert!((5..9).contains(&n)),
            }
        }

        #[test]
        fn vectors_respect_sizes(v in crate::collection::vec(any::<u64>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0..4u8, 4..8u8)) {
            prop_assert!(a < 4 && (4..8).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_header_parses(x in any::<i16>()) {
            let _ = x;
        }
    }

    #[test]
    fn exact_vec_size() {
        let strat = crate::collection::vec(any::<u64>(), 8);
        let mut rng = crate::TestRng::from_seed(1);
        assert_eq!(strat.generate(&mut rng).len(), 8);
    }
}
