//! Generate-only strategies mirroring the `proptest::strategy` shapes
//! this workspace uses: ranges, tuples, `prop_map`, `prop_oneof`,
//! `any::<T>()` and boxed strategies.

use std::marker::PhantomData;
use std::ops::Range;

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` draws a single
/// value from the given RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`, mirroring
    /// `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying a bounded
    /// number of times; mirrors `Strategy::prop_filter`.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erases this strategy, mirroring `Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by the `prop_oneof!` macro so all arms unify.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Always produces a clone of one value, mirroring `Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Wraps the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values with a default generation recipe, mirroring `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises NaN/inf/subnormal paths just like
        // real proptest's full-range float strategy.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy for any value of `T`, mirroring `any::<T>()`.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Returns the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
