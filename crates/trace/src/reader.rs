//! Zero-alloc replay of an on-disk trace.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use rvp_emu::Committed;

use crate::format::{decode_header, decode_record, CodecState, TraceError, TraceMeta};
use crate::varint::fnv1a;

/// Iterator over the records of a trace file.
///
/// Frames are decoded in bulk: one encoded frame and its decoded records
/// are resident at a time in reused buffers, so steady-state iteration
/// performs no allocation and the per-record cost is an index and a
/// copy. Checksums are verified per frame before any record of that
/// frame is yielded; after the first error the iterator fuses.
pub struct TraceReader<R: Read> {
    source: R,
    meta: TraceMeta,
    record_count: u64,
    state: CodecState,
    /// Reused encoded-payload buffer.
    frame: Vec<u8>,
    /// Reused decoded records of the resident frame.
    records: Vec<Committed>,
    /// Next record to yield from `records`.
    idx: usize,
    /// Records yielded from completed frames.
    yielded: u64,
    frame_index: u64,
    saw_end_marker: bool,
    failed: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens `path` and validates its header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `source` and validates its header.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let header = decode_header(&mut source)?;
        Ok(TraceReader {
            source,
            meta: header.meta,
            record_count: header.record_count,
            state: CodecState::new(),
            frame: Vec::new(),
            records: Vec::new(),
            idx: 0,
            yielded: 0,
            frame_index: 0,
            saw_end_marker: false,
            failed: false,
        })
    }

    /// The metadata key the trace was captured under.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Total records the header promises.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Reads and bulk-decodes the next frame into `self.records`.
    ///
    /// Returns `Ok(false)` once the end marker has been consumed.
    fn load_frame(&mut self) -> Result<bool, TraceError> {
        let count = match self.read_varint()? {
            Some(v) => v,
            None => return Err(TraceError::Truncated),
        };
        if count == 0 {
            // End marker: the stream must account for every record.
            self.saw_end_marker = true;
            if self.yielded != self.record_count {
                return Err(TraceError::CountMismatch {
                    header: self.record_count,
                    decoded: self.yielded,
                });
            }
            return Ok(false);
        }
        let payload_len = match self.read_varint()? {
            Some(v) => v as usize,
            None => return Err(TraceError::Truncated),
        };
        // A record is at least one byte, so a frame claiming a payload
        // wildly smaller or larger than its count is corrupt; the bound
        // also keeps a corrupt length from ballooning the buffer.
        if payload_len < count as usize || payload_len > count as usize * 64 {
            return Err(TraceError::Corrupt("implausible frame length"));
        }
        let mut checksum = [0u8; 8];
        self.read_exact_or_truncated(&mut checksum)?;
        self.frame.resize(payload_len, 0);
        let mut frame = std::mem::take(&mut self.frame);
        let res = self.read_exact_or_truncated(&mut frame);
        self.frame = frame;
        res?;
        // Chaos site: a bit flip or short read in this frame's payload
        // (`flip`/`short` surface as the checksum mismatch they would
        // cause in the wild; `io` fails the read itself).
        if rvp_fail::active() {
            if let Some(rvp_fail::Fault::Io) =
                rvp_fail::corrupt_at("trace.reader.frame", &mut self.frame)
            {
                return Err(TraceError::Io(std::io::Error::other(
                    "injected fault at failpoint trace.reader.frame",
                )));
            }
        }
        if fnv1a(&self.frame) != u64::from_le_bytes(checksum) {
            return Err(TraceError::ChecksumMismatch { frame: self.frame_index });
        }
        self.frame_index += 1;

        self.records.clear();
        self.records.reserve(count as usize);
        let mut pos = 0;
        for k in 0..count {
            let record = decode_record(&mut self.state, &self.frame, &mut pos, self.yielded + k)?;
            self.records.push(record);
        }
        if pos != self.frame.len() {
            return Err(TraceError::Corrupt("frame has trailing bytes"));
        }
        self.idx = 0;
        Ok(true)
    }

    fn read_varint(&mut self) -> Result<Option<u64>, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            match self.source.read_exact(&mut byte) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    return if shift == 0 { Ok(None) } else { Err(TraceError::Truncated) };
                }
                Err(e) => return Err(TraceError::Io(e)),
            }
            if shift >= 64 {
                return Err(TraceError::Corrupt("oversized varint"));
            }
            v |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(v));
            }
            shift += 7;
        }
    }

    fn read_exact_or_truncated(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        self.source.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated
            } else {
                TraceError::Io(e)
            }
        })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Committed, TraceError>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if let Some(&record) = self.records.get(self.idx) {
            self.idx += 1;
            return Some(Ok(record));
        }
        if self.failed || self.saw_end_marker {
            return None;
        }
        self.yielded += self.records.len() as u64;
        match self.load_frame() {
            Ok(true) => {
                self.idx = 1;
                Some(Ok(self.records[0]))
            }
            Ok(false) => None,
            Err(e) => {
                // A partially decoded frame must not leak records.
                self.records.clear();
                self.idx = 0;
                self.failed = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed || self.saw_end_marker {
            return (self.records.len() - self.idx, Some(self.records.len() - self.idx));
        }
        let done = self.yielded + self.idx as u64;
        (self.records.len() - self.idx, Some((self.record_count - done) as usize))
    }
}
