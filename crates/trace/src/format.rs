//! On-disk trace format: header, metadata key and per-record codec.
//!
//! Layout (all integers little-endian, varints LEB128):
//!
//! ```text
//! magic "RVPT" | version u16 | meta_len u32 | record_count u64
//! meta bytes (meta_len of them) | meta_fnv u64
//! frame*  (count varint >0, payload_len varint, payload_fnv u64, payload)
//! end marker (single 0x00 byte, i.e. a frame with count 0)
//! ```
//!
//! `record_count` sits at a fixed offset ([`COUNT_OFFSET`]) so the
//! writer can patch it when finishing; it is written as `u64::MAX`
//! during capture, which lets readers distinguish an interrupted capture
//! from a merely truncated file.

use std::error::Error;
use std::fmt;

use rvp_emu::{Committed, EmuError, STACK_TOP};
use rvp_isa::{analysis::abi, Program, Reg, NUM_REGS};

use crate::varint::{fnv1a, get_varint, put_varint, unzigzag, zigzag};

/// Current format version; bumped on any byte-level change.
pub const FORMAT_VERSION: u16 = 1;

/// Records per frame: large enough to amortize the frame header, small
/// enough that a corrupt frame loses little and the reader's resident
/// buffer stays cache-friendly.
pub const FRAME_RECORDS: usize = 4096;

/// File magic.
pub const MAGIC: [u8; 4] = *b"RVPT";

/// Byte offset of the patchable `record_count` field.
pub const COUNT_OFFSET: u64 = 4 + 2 + 4;

/// Sentinel `record_count` meaning the writer never finished.
pub const COUNT_UNFINISHED: u64 = u64::MAX;

/// Which input set a trace was captured from.
///
/// A local mirror of `rvp_workloads::Input` so this crate does not
/// depend on the workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceInput {
    /// The smaller profiling input.
    Train,
    /// The measurement input.
    Ref,
}

impl TraceInput {
    /// Stable on-disk/file-name tag.
    pub fn tag(self) -> &'static str {
        match self {
            TraceInput::Train => "train",
            TraceInput::Ref => "ref",
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            TraceInput::Train => 0,
            TraceInput::Ref => 1,
        }
    }

    fn from_byte(b: u8) -> Option<TraceInput> {
        match b {
            0 => Some(TraceInput::Train),
            1 => Some(TraceInput::Ref),
            _ => None,
        }
    }
}

/// The key a trace is stored and validated under.
///
/// Two runs may share a cached trace only if every field matches:
/// workload and input name the generator, `budget` bounds the captured
/// record count, and `program_len`/`program_hash` pin the exact static
/// program the stream was recorded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload name (as in `rvp_workloads`).
    pub workload: String,
    /// Input set the program was built for.
    pub input: TraceInput,
    /// Maximum committed instructions captured.
    pub budget: u64,
    /// Static instruction count of the traced program.
    pub program_len: u64,
    /// Structural hash of the traced program (see [`program_hash`]).
    pub program_hash: u64,
}

impl TraceMeta {
    /// Builds the metadata key for capturing `program`.
    pub fn for_program(
        workload: impl Into<String>,
        input: TraceInput,
        budget: u64,
        program: &Program,
    ) -> TraceMeta {
        TraceMeta {
            workload: workload.into(),
            input,
            budget,
            program_len: program.len() as u64,
            program_hash: program_hash(program),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.workload.len());
        put_varint(&mut out, self.workload.len() as u64);
        out.extend_from_slice(self.workload.as_bytes());
        out.push(self.input.to_byte());
        put_varint(&mut out, self.budget);
        put_varint(&mut out, self.program_len);
        out.extend_from_slice(&self.program_hash.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<TraceMeta> {
        let mut pos = 0;
        let name_len = get_varint(buf, &mut pos)? as usize;
        let name = buf.get(pos..pos + name_len)?;
        pos += name_len;
        let workload = std::str::from_utf8(name).ok()?.to_string();
        let input = TraceInput::from_byte(*buf.get(pos)?)?;
        pos += 1;
        let budget = get_varint(buf, &mut pos)?;
        let program_len = get_varint(buf, &mut pos)?;
        let hash = buf.get(pos..pos + 8)?;
        pos += 8;
        if pos != buf.len() {
            return None;
        }
        Some(TraceMeta {
            workload,
            input,
            budget,
            program_len,
            program_hash: u64::from_le_bytes(hash.try_into().ok()?),
        })
    }
}

/// Structural hash of a program: its full textual form (instructions,
/// data segments, procedures, entry) under FNV-1a. Any change to the
/// generated workload invalidates cached traces.
pub fn program_hash(program: &Program) -> u64 {
    fnv1a(program.to_asm().as_bytes())
}

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The emulator failed while capturing.
    Emu(EmuError),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file uses a different format version.
    Version {
        /// Version found in the file.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// The header or its checksum is malformed.
    HeaderCorrupt,
    /// The writer of this file never finished; it cannot be trusted.
    Unfinished,
    /// A frame's payload did not match its checksum.
    ChecksumMismatch {
        /// Zero-based index of the bad frame.
        frame: u64,
    },
    /// The file ended before its end marker.
    Truncated,
    /// The decoded record count disagrees with the header.
    CountMismatch {
        /// Count promised by the header.
        header: u64,
        /// Records actually decoded.
        decoded: u64,
    },
    /// A record could not be decoded.
    Corrupt(&'static str),
    /// The trace exists but was captured under a different key.
    MetaMismatch {
        /// First differing field.
        field: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Emu(e) => write!(f, "emulation error during capture: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::Version { found, expected } => {
                write!(f, "trace format version {found}, expected {expected}")
            }
            TraceError::HeaderCorrupt => write!(f, "trace header corrupt"),
            TraceError::Unfinished => write!(f, "trace capture was interrupted"),
            TraceError::ChecksumMismatch { frame } => {
                write!(f, "checksum mismatch in frame {frame}")
            }
            TraceError::Truncated => write!(f, "trace truncated before end marker"),
            TraceError::CountMismatch { header, decoded } => {
                write!(f, "trace holds {decoded} records but header promised {header}")
            }
            TraceError::Corrupt(what) => write!(f, "trace record corrupt: {what}"),
            TraceError::MetaMismatch { field } => {
                write!(f, "trace metadata mismatch on {field}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Emu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<EmuError> for TraceError {
    fn from(e: EmuError) -> TraceError {
        TraceError::Emu(e)
    }
}

/// Serializes the header (everything before the first frame).
pub fn encode_header(meta: &TraceMeta, record_count: u64) -> Vec<u8> {
    let meta_bytes = meta.encode();
    let mut out = Vec::with_capacity(26 + meta_bytes.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(meta_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_count.to_le_bytes());
    out.extend_from_slice(&meta_bytes);
    out.extend_from_slice(&fnv1a(&meta_bytes).to_le_bytes());
    out
}

/// Result of parsing a header.
pub struct Header {
    /// The stored metadata key.
    pub meta: TraceMeta,
    /// Total records promised ([`COUNT_UNFINISHED`] if never finished).
    pub record_count: u64,
}

/// Parses and validates a header from a reader positioned at the start
/// of the file.
pub fn decode_header(r: &mut impl std::io::Read) -> Result<Header, TraceError> {
    let mut fixed = [0u8; 18];
    read_exact_or(r, &mut fixed, TraceError::HeaderCorrupt)?;
    if fixed[0..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = u16::from_le_bytes([fixed[4], fixed[5]]);
    if version != FORMAT_VERSION {
        return Err(TraceError::Version { found: version, expected: FORMAT_VERSION });
    }
    let meta_len = u32::from_le_bytes([fixed[6], fixed[7], fixed[8], fixed[9]]) as usize;
    if meta_len > 1 << 16 {
        return Err(TraceError::HeaderCorrupt);
    }
    let record_count = u64::from_le_bytes(fixed[10..18].try_into().expect("8 bytes"));
    let mut meta_bytes = vec![0u8; meta_len];
    read_exact_or(r, &mut meta_bytes, TraceError::HeaderCorrupt)?;
    let mut stored_fnv = [0u8; 8];
    read_exact_or(r, &mut stored_fnv, TraceError::HeaderCorrupt)?;
    if fnv1a(&meta_bytes) != u64::from_le_bytes(stored_fnv) {
        return Err(TraceError::HeaderCorrupt);
    }
    let meta = TraceMeta::decode(&meta_bytes).ok_or(TraceError::HeaderCorrupt)?;
    if record_count == COUNT_UNFINISHED {
        return Err(TraceError::Unfinished);
    }
    Ok(Header { meta, record_count })
}

fn read_exact_or(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    on_eof: TraceError,
) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            on_eof
        } else {
            TraceError::Io(e)
        }
    })
}

const FLAG_HAS_DST: u8 = 1 << 0;
const FLAG_SAME_VALUE: u8 = 1 << 1;
const FLAG_HAS_ADDR: u8 = 1 << 2;
const FLAG_HAS_TAKEN: u8 = 1 << 3;
const FLAG_TAKEN: u8 = 1 << 4;
const FLAG_PC_SEQ: u8 = 1 << 5;
const FLAG_NEXT_SEQ: u8 = 1 << 6;

/// Shared encoder/decoder state: the codec is a deterministic function
/// of the record stream, so writer and reader evolve identical copies.
///
/// `shadow` replays the architectural register file, which is what lets
/// the format omit `old_value` entirely — it is always the shadow value
/// of the destination at decode time (the paper's prior register value).
pub struct CodecState {
    prev_next_pc: u64,
    prev_addr: u64,
    shadow: [u64; NUM_REGS],
}

impl CodecState {
    /// Initial state: registers zero except the ABI stack pointer,
    /// matching [`rvp_emu::Emulator::new`].
    pub fn new() -> CodecState {
        let mut shadow = [0u64; NUM_REGS];
        shadow[abi::SP.index()] = STACK_TOP;
        CodecState { prev_next_pc: 0, prev_addr: 0, shadow }
    }
}

impl Default for CodecState {
    fn default() -> CodecState {
        CodecState::new()
    }
}

/// Appends one record to `out`, updating `state`.
#[inline]
pub fn encode_record(state: &mut CodecState, c: &Committed, out: &mut Vec<u8>) {
    let mut flags = 0u8;
    let pc = c.pc as u64;
    let next_pc = c.next_pc as u64;
    if pc == state.prev_next_pc {
        flags |= FLAG_PC_SEQ;
    }
    if next_pc == pc + 1 {
        flags |= FLAG_NEXT_SEQ;
    }
    if let Some(dst) = c.dst {
        flags |= FLAG_HAS_DST;
        debug_assert_eq!(
            state.shadow[dst.index()],
            c.old_value,
            "shadow register file diverged from the committed stream"
        );
        if c.new_value == c.old_value {
            flags |= FLAG_SAME_VALUE;
        }
    }
    if c.eff_addr.is_some() {
        flags |= FLAG_HAS_ADDR;
    }
    if let Some(taken) = c.taken {
        flags |= FLAG_HAS_TAKEN;
        if taken {
            flags |= FLAG_TAKEN;
        }
    }
    out.push(flags);
    if flags & FLAG_PC_SEQ == 0 {
        put_varint(out, zigzag(pc.wrapping_sub(state.prev_next_pc) as i64));
    }
    if flags & FLAG_NEXT_SEQ == 0 {
        put_varint(out, zigzag(next_pc.wrapping_sub(pc + 1) as i64));
    }
    if let Some(dst) = c.dst {
        out.push(dst.index() as u8);
        if flags & FLAG_SAME_VALUE == 0 {
            put_varint(out, zigzag(c.new_value.wrapping_sub(c.old_value) as i64));
        }
        state.shadow[dst.index()] = c.new_value;
    }
    if let Some(addr) = c.eff_addr {
        put_varint(out, zigzag(addr.wrapping_sub(state.prev_addr) as i64));
        state.prev_addr = addr;
    }
    state.prev_next_pc = next_pc;
}

/// Decodes one record from `buf` at `*pos`, updating `state`.
#[inline]
pub fn decode_record(
    state: &mut CodecState,
    buf: &[u8],
    pos: &mut usize,
    seq: u64,
) -> Result<Committed, TraceError> {
    let flags = *buf.get(*pos).ok_or(TraceError::Corrupt("missing flags byte"))?;
    *pos += 1;
    if flags & 0x80 != 0 {
        return Err(TraceError::Corrupt("reserved flag bit set"));
    }
    let pc = if flags & FLAG_PC_SEQ != 0 {
        state.prev_next_pc
    } else {
        let delta = get_varint(buf, pos).ok_or(TraceError::Corrupt("bad pc delta"))?;
        state.prev_next_pc.wrapping_add(unzigzag(delta) as u64)
    };
    let next_pc = if flags & FLAG_NEXT_SEQ != 0 {
        pc + 1
    } else {
        let delta = get_varint(buf, pos).ok_or(TraceError::Corrupt("bad next_pc delta"))?;
        (pc + 1).wrapping_add(unzigzag(delta) as u64)
    };
    let (dst, old_value, new_value) = if flags & FLAG_HAS_DST != 0 {
        let idx = *buf.get(*pos).ok_or(TraceError::Corrupt("missing dst register"))? as usize;
        *pos += 1;
        if idx >= NUM_REGS {
            return Err(TraceError::Corrupt("dst register out of range"));
        }
        let old = state.shadow[idx];
        let new = if flags & FLAG_SAME_VALUE != 0 {
            old
        } else {
            let delta = get_varint(buf, pos).ok_or(TraceError::Corrupt("bad value delta"))?;
            old.wrapping_add(unzigzag(delta) as u64)
        };
        state.shadow[idx] = new;
        (Some(Reg::from_index(idx)), old, new)
    } else {
        (None, 0, 0)
    };
    let eff_addr = if flags & FLAG_HAS_ADDR != 0 {
        let delta = get_varint(buf, pos).ok_or(TraceError::Corrupt("bad address delta"))?;
        let addr = state.prev_addr.wrapping_add(unzigzag(delta) as u64);
        state.prev_addr = addr;
        Some(addr)
    } else {
        None
    };
    let taken = if flags & FLAG_HAS_TAKEN != 0 { Some(flags & FLAG_TAKEN != 0) } else { None };
    state.prev_next_pc = next_pc;
    Ok(Committed {
        seq,
        pc: pc as usize,
        next_pc: next_pc as usize,
        dst,
        old_value,
        new_value,
        eff_addr,
        taken,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, pc: usize, dst: Option<Reg>, old: u64, new: u64) -> Committed {
        Committed {
            seq,
            pc,
            next_pc: pc + 1,
            dst,
            old_value: old,
            new_value: new,
            eff_addr: None,
            taken: None,
        }
    }

    #[test]
    fn codec_round_trips_and_same_value_is_free() {
        let mut enc = CodecState::new();
        let mut buf = Vec::new();
        let records = [
            sample(0, 0, Some(Reg::int(1)), 0, 9),
            // Same-register reuse: costs flags + dst only.
            sample(1, 1, Some(Reg::int(1)), 9, 9),
            sample(2, 2, None, 0, 0),
        ];
        let mut sizes = Vec::new();
        for r in &records {
            let before = buf.len();
            encode_record(&mut enc, r, &mut buf);
            sizes.push(buf.len() - before);
        }
        assert_eq!(sizes[1], 2, "same-value record should be flags + dst");

        let mut dec = CodecState::new();
        let mut pos = 0;
        for (seq, want) in records.iter().enumerate() {
            let got = decode_record(&mut dec, &buf, &mut pos, seq as u64).unwrap();
            assert_eq!(&got, want);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn header_round_trips() {
        let meta = TraceMeta {
            workload: "m88ksim".into(),
            input: TraceInput::Train,
            budget: 1_500_000,
            program_len: 321,
            program_hash: 0xdead_beef_cafe_f00d,
        };
        let bytes = encode_header(&meta, 42);
        let h = decode_header(&mut bytes.as_slice()).unwrap();
        assert_eq!(h.meta, meta);
        assert_eq!(h.record_count, 42);
    }

    #[test]
    fn unfinished_header_is_rejected() {
        let meta = TraceMeta {
            workload: "x".into(),
            input: TraceInput::Ref,
            budget: 1,
            program_len: 1,
            program_hash: 1,
        };
        let bytes = encode_header(&meta, COUNT_UNFINISHED);
        assert!(matches!(decode_header(&mut bytes.as_slice()), Err(TraceError::Unfinished)));
    }
}
