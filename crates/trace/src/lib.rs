//! Committed-instruction trace capture and replay.
//!
//! Every experiment in this reproduction consumes the same
//! committed-instruction stream — the sequence of [`rvp_emu::Committed`]
//! records the functional emulator produces. Re-deriving that stream
//! through the emulator for every profile collection is the dominant
//! fixed cost of the figure grid, so this crate captures it once to a
//! compact on-disk format and replays it at memory speed.
//!
//! The format (see `DESIGN.md` for the byte-level layout):
//!
//! * a versioned header keyed by *(workload, input, instruction budget,
//!   program structure hash)* so stale traces are detected, not trusted;
//! * frames of up to [`FRAME_RECORDS`] records, each with a length
//!   prefix and an FNV-1a checksum, so truncation and corruption are
//!   caught at frame granularity;
//! * delta encoding inside frames: PCs and effective addresses are
//!   zigzag-varint deltas, destination old-values are reconstructed from
//!   a replayed shadow register file and never stored, and results equal
//!   to the prior register value (the paper's entire subject!) cost zero
//!   bytes.
//!
//! [`TraceWriter`] streams records to disk; [`TraceReader`] is an
//! allocation-free iterator over them; [`TraceStore`] is a cache
//! directory of traces with graceful fallback — any mismatch or
//! corruption is an automatic re-capture, never an error surfaced to an
//! experiment.
//!
//! # Examples
//!
//! ```
//! use rvp_isa::{ProgramBuilder, Reg};
//! use rvp_trace::{capture, TraceMeta, TraceReader};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::int(1), 7);
//! b.addi(Reg::int(1), Reg::int(1), 1);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let dir = std::env::temp_dir().join("rvp-trace-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.rvpt");
//! let meta = TraceMeta::for_program("doc", rvp_trace::TraceInput::Train, 100, &program);
//! capture(&program, &meta, &path).unwrap();
//!
//! let recorded: Vec<_> = TraceReader::open(&path)
//!     .unwrap()
//!     .collect::<Result<Vec<_>, _>>()
//!     .unwrap();
//! assert_eq!(recorded.len(), 3);
//! assert_eq!(recorded[1].new_value, 8);
//! ```

mod format;
mod reader;
mod store;
mod varint;
mod writer;

pub use format::{program_hash, TraceError, TraceInput, TraceMeta, FORMAT_VERSION, FRAME_RECORDS};
pub use reader::TraceReader;
pub use store::{StoreCounters, TraceStore, QUARANTINE_SUBDIR};
pub use varint::fnv1a;
pub use writer::{capture, TraceWriter};
