//! LEB128 varints, zigzag mapping and the FNV-1a checksum used by the
//! trace format.

/// Appends `v` as an LEB128 varint.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing it.
///
/// Returns `None` on truncation or a varint longer than 10 bytes.
#[inline]
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto small unsigned values (zigzag).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let cases = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small: that is the whole point.
        assert!(zigzag(-1) < 4);
        assert!(zigzag(2) < 8);
    }

    #[test]
    fn truncated_varint_is_detected() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }
}
