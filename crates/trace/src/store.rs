//! On-disk trace cache with graceful fallback and corruption quarantine.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rvp_isa::Program;
use rvp_obs::log;

use crate::format::{TraceError, TraceMeta};
use crate::reader::TraceReader;
use crate::writer::capture;

/// Counters describing how a [`TraceStore`] has been used; shared by
/// clones of the store, so a parallel grid reports one total.
#[derive(Debug, Default)]
pub struct StoreCounters {
    hits: AtomicU64,
    captures: AtomicU64,
    fallbacks: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
}

impl StoreCounters {
    /// Traces served straight from disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The counters as unified-registry samples (`rvp_trace_*`).
    pub fn metrics(&self) -> Vec<rvp_obs::Metric> {
        vec![
            rvp_obs::Metric::counter("rvp_trace_cache_hits_total", self.hits()),
            rvp_obs::Metric::counter("rvp_trace_captures_total", self.captures()),
            rvp_obs::Metric::counter("rvp_trace_fallbacks_total", self.fallbacks()),
            rvp_obs::Metric::counter("rvp_trace_quarantined_total", self.quarantined()),
            rvp_obs::Metric::counter("rvp_trace_evicted_total", self.evicted()),
        ]
    }

    /// Traces captured because none (valid) existed.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Cached traces that were rejected (corrupt, truncated, version or
    /// metadata skew) and silently re-captured.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Rejected cache files moved into the quarantine directory so they
    /// can never be re-read (and remain available for postmortems).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under the store's byte budget.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// A directory of captured traces, keyed by [`TraceMeta`].
///
/// The store never lets a bad cache entry surface to an experiment:
/// anything wrong with a cached file — stale format version, checksum
/// mismatch, truncation, a different program hash — counts as a miss
/// and triggers a fresh capture over the live emulator. The offending
/// file is *moved* into `dir/quarantine/` first, so a corrupt entry is
/// preserved for diagnosis but can never be opened again.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
    counters: Arc<StoreCounters>,
    /// Disk budget in bytes over `*.rvpt` entries and persisted
    /// sampling plans; 0 = ungoverned (never evict).
    budget_bytes: u64,
}

/// Subdirectory rejected cache entries are moved into.
pub const QUARANTINE_SUBDIR: &str = "quarantine";

/// Failpoint consulted before every capture write — the disk-full
/// drill. The same site name as the serve result cache's, so one
/// armed plan exercises both stores.
pub const DISK_FULL_SITE: &str = "store.disk.full";

impl TraceStore {
    /// Creates a store rooted at `dir` (created if absent). Stale
    /// temporary files from a previous crashed capture are swept out.
    pub fn new(dir: impl Into<PathBuf>) -> Result<TraceStore, TraceError> {
        TraceStore::with_budget(dir, 0)
    }

    /// Creates a store with a disk budget in bytes (`0` = unlimited).
    /// Beyond it, the least-recently-used traces and sampling plans are
    /// evicted after each capture; eviction only costs a re-capture.
    pub fn with_budget(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<TraceStore, TraceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = TraceStore { dir, counters: Arc::new(StoreCounters::default()), budget_bytes };
        store.sweep_stale_tmp();
        Ok(store)
    }

    /// Builds a store from the `RVP_TRACE_DIR` environment variable, or
    /// `None` when the variable is unset or empty.
    pub fn from_env() -> Option<TraceStore> {
        let dir = std::env::var("RVP_TRACE_DIR").ok()?;
        if dir.is_empty() {
            return None;
        }
        match TraceStore::new(&dir) {
            Ok(store) => Some(store),
            Err(e) => {
                log::warn(
                    "rvp_trace::store",
                    "RVP_TRACE_DIR unusable; tracing disabled",
                    &[("dir", dir.as_str().into()), ("error", e.to_string().into())],
                );
                None
            }
        }
    }

    /// Usage counters shared across clones of this store.
    pub fn counters(&self) -> &Arc<StoreCounters> {
        &self.counters
    }

    /// Root directory of the cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Directory quarantined (rejected) cache files are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_SUBDIR)
    }

    /// On-disk path for a given key.
    pub fn path_for(&self, meta: &TraceMeta) -> PathBuf {
        self.dir.join(format!("{}-{}-{}.rvpt", meta.workload, meta.input.tag(), meta.budget))
    }

    /// Removes leftover `*.tmp.<pid>` files from captures that died
    /// before their atomic rename. Only files whose pid no longer names
    /// a temp file written by *this* process are candidates, and the
    /// sweep is best-effort: a livelocked unlink never fails a run.
    ///
    /// Several stores may open the same directory at once — a second
    /// grid process starting up, or the serve daemon opening the store
    /// while a grid run is active. A candidate vanishing between the
    /// directory listing and the unlink (someone else swept it, or its
    /// owner finished the atomic rename) is the expected outcome of
    /// that race, not an error.
    fn sweep_stale_tmp(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        let own = format!(".tmp.{}", std::process::id());
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.contains(".tmp.") || name.ends_with(own.as_str()) {
                continue;
            }
            match std::fs::remove_file(&path) {
                Ok(()) => log::debug(
                    "rvp_trace::store",
                    "removed stale capture temp file",
                    &[("path", path.display().to_string().into())],
                ),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => log::debug(
                    "rvp_trace::store",
                    "could not remove stale temp file; leaving it",
                    &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
                ),
            }
        }
    }

    /// Opens the cached trace for `meta` if one exists and is valid in
    /// every respect (format, checksums deferred to iteration, and the
    /// full metadata key including the program hash).
    pub fn open(
        &self,
        meta: &TraceMeta,
    ) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, TraceError> {
        let _span = rvp_obs::span!("trace.read", {
            workload: meta.workload.as_str(),
            budget: meta.budget,
        });
        rvp_fail::io_at("trace.store.open")?;
        let path = self.path_for(meta);
        let reader = TraceReader::open(&path)?;
        if let Some(field) = meta_diff(reader.meta(), meta) {
            return Err(TraceError::MetaMismatch { field });
        }
        if self.budget_bytes > 0 {
            // Touch-on-hit keeps the budget sweep LRU rather than FIFO.
            if let Ok(f) = std::fs::File::open(&path) {
                let _ = f.set_modified(std::time::SystemTime::now());
            }
        }
        Ok(reader)
    }

    /// Opens the cached trace for `meta`, capturing it first if absent
    /// or invalid. This is the graceful-fallback entry point: a corrupt
    /// or stale cache entry is quarantined and replaced, never reported.
    pub fn open_or_capture(
        &self,
        program: &Program,
        meta: &TraceMeta,
    ) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, TraceError> {
        match self.open(meta) {
            Ok(reader) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(reader);
            }
            Err(TraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                // Stale, corrupt or foreign file: quarantine it so the
                // bad bytes can never be re-read, then fall back to a
                // fresh capture.
                self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.quarantine(&self.path_for(meta), &e);
            }
        }
        self.capture(program, meta)?;
        self.counters.captures.fetch_add(1, Ordering::Relaxed);
        self.open(meta)
    }

    /// Moves a rejected cache file into the quarantine directory under a
    /// unique name. Best-effort: when even the move fails the file is
    /// deleted instead, because leaving it in place would let the next
    /// open read the same bad bytes again.
    fn quarantine(&self, path: &Path, reason: &TraceError) {
        if !path.exists() {
            return;
        }
        let _span = rvp_obs::span!("trace.quarantine", {
            path: path.display().to_string(),
        });
        let qdir = self.quarantine_dir();
        let _ = std::fs::create_dir_all(&qdir);
        let n = self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().map_or_else(|| "trace".into(), |s| s.to_string_lossy());
        let dest = qdir.join(format!("{name}.{}.q{n}", std::process::id()));
        let moved = std::fs::rename(path, &dest);
        if moved.is_err() {
            let _ = std::fs::remove_file(path);
        }
        log::warn(
            "rvp_trace::store",
            "quarantined rejected trace cache entry",
            &[
                ("path", path.display().to_string().into()),
                ("reason", reason.to_string().into()),
                (
                    "quarantined_to",
                    if moved.is_ok() {
                        dest.display().to_string().into()
                    } else {
                        "(deleted; quarantine move failed)".into()
                    },
                ),
            ],
        );
    }

    /// Captures `program` under `meta`, atomically replacing any
    /// existing entry: the trace is written to a temp file, fsynced, and
    /// renamed into place, so a reader in another process never observes
    /// a half-written trace — and a failed capture never leaves a
    /// partial temp file behind.
    pub fn capture(&self, program: &Program, meta: &TraceMeta) -> Result<u64, TraceError> {
        let _span = rvp_obs::span!("trace.write", {
            workload: meta.workload.as_str(),
            budget: meta.budget,
        });
        let path = self.path_for(meta);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            rvp_fail::io_at(DISK_FULL_SITE)?;
            let n = capture(program, meta, &tmp)?;
            // Make the bytes durable before the rename publishes them:
            // after a crash the cache holds either the old entry or the
            // complete new one, never a torn file.
            std::fs::File::open(&tmp)?.sync_all()?;
            rvp_fail::io_at("trace.store.rename")?;
            std::fs::rename(&tmp, &path)?;
            Ok(n)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        if self.budget_bytes > 0 {
            // Enforce the budget even after a failed write (a full disk
            // is exactly when freeing space helps the next capture).
            self.evict_to_budget(&path);
        }
        result
    }

    /// Total bytes of governed files (traces and persisted sampling
    /// plans; quarantined files are diagnostic state, not cache).
    pub fn disk_bytes(&self) -> u64 {
        self.governed_files().into_iter().map(|(_, _, len)| len).sum()
    }

    fn governed_files(&self) -> Vec<(std::time::SystemTime, PathBuf, u64)> {
        let mut files = Vec::new();
        let mut scan = |dir: &Path, ext: &str| {
            let Ok(entries) = std::fs::read_dir(dir) else { return };
            for path in entries.filter_map(Result::ok).map(|e| e.path()) {
                if !path.extension().is_some_and(|x| x == ext) {
                    continue;
                }
                let Ok(meta) = std::fs::metadata(&path) else { continue };
                let Ok(mtime) = meta.modified() else { continue };
                files.push((mtime, path, meta.len()));
            }
        };
        scan(&self.dir, "rvpt");
        scan(&self.dir.join("plans"), "json");
        files
    }

    /// Evicts least-recently-used governed files (hits touch mtime)
    /// until the store fits its budget, never evicting `keep` (the
    /// entry just captured). Loss here is only a cache loss: an evicted
    /// trace re-captures, an evicted plan re-profiles.
    fn evict_to_budget(&self, keep: &Path) {
        let mut files = self.governed_files();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= self.budget_bytes {
            return;
        }
        files.sort_by_key(|(mtime, _, _)| *mtime);
        let start_us = rvp_obs::span::now_us();
        let over = total - self.budget_bytes;
        let mut evicted = 0u64;
        for (_, path, len) in files {
            if total <= self.budget_bytes {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                evicted += 1;
                self.counters.evicted.fetch_add(1, Ordering::Relaxed);
                log::debug(
                    "rvp_trace::store",
                    "evicted cache entry to stay under budget",
                    &[("path", path.display().to_string().into())],
                );
            }
        }
        if evicted > 0 && rvp_obs::span::armed() {
            rvp_obs::span::record(
                "cache.evict",
                rvp_obs::span::current(),
                start_us,
                rvp_obs::span::now_us(),
                vec![
                    ("cache".into(), "trace.store".into()),
                    ("evicted".into(), evicted.into()),
                    ("over_bytes".into(), over.into()),
                ],
            );
        }
    }
}

/// First field on which two keys differ, if any.
fn meta_diff(found: &TraceMeta, want: &TraceMeta) -> Option<&'static str> {
    if found.workload != want.workload {
        Some("workload")
    } else if found.input != want.input {
        Some("input")
    } else if found.budget != want.budget {
        Some("budget")
    } else if found.program_len != want.program_len {
        Some("program_len")
    } else if found.program_hash != want.program_hash {
        Some("program_hash")
    } else {
        None
    }
}
