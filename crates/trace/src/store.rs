//! On-disk trace cache with graceful fallback.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rvp_isa::Program;

use crate::format::{TraceError, TraceMeta};
use crate::reader::TraceReader;
use crate::writer::capture;

/// Counters describing how a [`TraceStore`] has been used; shared by
/// clones of the store, so a parallel grid reports one total.
#[derive(Debug, Default)]
pub struct StoreCounters {
    hits: AtomicU64,
    captures: AtomicU64,
    fallbacks: AtomicU64,
}

impl StoreCounters {
    /// Traces served straight from disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Traces captured because none (valid) existed.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Cached traces that were rejected (corrupt, truncated, version or
    /// metadata skew) and silently re-captured.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }
}

/// A directory of captured traces, keyed by [`TraceMeta`].
///
/// The store never lets a bad cache entry surface to an experiment:
/// anything wrong with a cached file — stale format version, checksum
/// mismatch, truncation, a different program hash — counts as a miss
/// and triggers a fresh capture over the live emulator.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
    counters: Arc<StoreCounters>,
}

impl TraceStore {
    /// Creates a store rooted at `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> Result<TraceStore, TraceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore { dir, counters: Arc::new(StoreCounters::default()) })
    }

    /// Builds a store from the `RVP_TRACE_DIR` environment variable, or
    /// `None` when the variable is unset or empty.
    pub fn from_env() -> Option<TraceStore> {
        let dir = std::env::var("RVP_TRACE_DIR").ok()?;
        if dir.is_empty() {
            return None;
        }
        match TraceStore::new(&dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("warning: RVP_TRACE_DIR={dir} unusable ({e}); tracing disabled");
                None
            }
        }
    }

    /// Usage counters shared across clones of this store.
    pub fn counters(&self) -> &Arc<StoreCounters> {
        &self.counters
    }

    /// Root directory of the cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path for a given key.
    pub fn path_for(&self, meta: &TraceMeta) -> PathBuf {
        self.dir.join(format!("{}-{}-{}.rvpt", meta.workload, meta.input.tag(), meta.budget))
    }

    /// Opens the cached trace for `meta` if one exists and is valid in
    /// every respect (format, checksums deferred to iteration, and the
    /// full metadata key including the program hash).
    pub fn open(
        &self,
        meta: &TraceMeta,
    ) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, TraceError> {
        let reader = TraceReader::open(&self.path_for(meta))?;
        if let Some(field) = meta_diff(reader.meta(), meta) {
            return Err(TraceError::MetaMismatch { field });
        }
        Ok(reader)
    }

    /// Opens the cached trace for `meta`, capturing it first if absent
    /// or invalid. This is the graceful-fallback entry point: a corrupt
    /// or stale cache entry is replaced, never reported.
    pub fn open_or_capture(
        &self,
        program: &Program,
        meta: &TraceMeta,
    ) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, TraceError> {
        match self.open(meta) {
            Ok(reader) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(reader);
            }
            Err(TraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => {
                // Stale, corrupt or foreign file: fall back to capture.
                self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.capture(program, meta)?;
        self.counters.captures.fetch_add(1, Ordering::Relaxed);
        self.open(meta)
    }

    /// Captures `program` under `meta`, atomically replacing any
    /// existing entry (write to a temp file, then rename), so a reader
    /// in another process never observes a half-written trace.
    pub fn capture(&self, program: &Program, meta: &TraceMeta) -> Result<u64, TraceError> {
        let path = self.path_for(meta);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let n = capture(program, meta, &tmp)?;
        std::fs::rename(&tmp, &path)?;
        Ok(n)
    }
}

/// First field on which two keys differ, if any.
fn meta_diff(found: &TraceMeta, want: &TraceMeta) -> Option<&'static str> {
    if found.workload != want.workload {
        Some("workload")
    } else if found.input != want.input {
        Some("input")
    } else if found.budget != want.budget {
        Some("budget")
    } else if found.program_len != want.program_len {
        Some("program_len")
    } else if found.program_hash != want.program_hash {
        Some("program_hash")
    } else {
        None
    }
}
