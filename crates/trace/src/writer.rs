//! Streaming trace writer and the emulator-driven capture entry point.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use rvp_emu::{Committed, Emulator};
use rvp_isa::Program;

use crate::format::{
    encode_header, encode_record, CodecState, TraceError, TraceMeta, COUNT_OFFSET,
    COUNT_UNFINISHED, FRAME_RECORDS,
};
use crate::varint::{fnv1a, put_varint};

/// Streams [`Committed`] records into the on-disk trace format.
///
/// Records accumulate into a frame buffer and are flushed (with length
/// prefix and checksum) every [`FRAME_RECORDS`] records. The header's
/// `record_count` stays at the unfinished sentinel until [`finish`]
/// patches it, so a crashed capture is never mistaken for a valid trace.
///
/// [`finish`]: TraceWriter::finish
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    state: CodecState,
    frame: Vec<u8>,
    frame_records: u64,
    total_records: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` (truncating any existing file) and writes the
    /// header for `meta`.
    pub fn create(path: &Path, meta: &TraceMeta) -> Result<Self, TraceError> {
        TraceWriter::new(BufWriter::new(File::create(path)?), meta)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Wraps `sink` and writes the header for `meta`.
    pub fn new(mut sink: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        sink.write_all(&encode_header(meta, COUNT_UNFINISHED))?;
        Ok(TraceWriter {
            sink,
            state: CodecState::new(),
            frame: Vec::with_capacity(FRAME_RECORDS * 4),
            frame_records: 0,
            total_records: 0,
        })
    }

    /// Appends one committed record.
    pub fn append(&mut self, record: &Committed) -> Result<(), TraceError> {
        encode_record(&mut self.state, record, &mut self.frame);
        self.frame_records += 1;
        self.total_records += 1;
        if self.frame_records as usize >= FRAME_RECORDS {
            self.flush_frame()?;
        }
        Ok(())
    }

    fn flush_frame(&mut self) -> Result<(), TraceError> {
        if self.frame_records == 0 {
            return Ok(());
        }
        // Chaos site: a torn frame write (disk full, I/O error) mid
        // capture. The caller's cleanup path must remove the partial
        // file.
        rvp_fail::io_at("trace.writer.frame")?;
        let mut prefix = Vec::with_capacity(24);
        put_varint(&mut prefix, self.frame_records);
        put_varint(&mut prefix, self.frame.len() as u64);
        prefix.extend_from_slice(&fnv1a(&self.frame).to_le_bytes());
        self.sink.write_all(&prefix)?;
        self.sink.write_all(&self.frame)?;
        self.frame.clear();
        self.frame_records = 0;
        Ok(())
    }

    /// Flushes the final frame, writes the end marker and patches the
    /// header's record count. Returns the total records written.
    pub fn finish(mut self) -> Result<u64, TraceError> {
        self.flush_frame()?;
        // Chaos site: dying between the last frame and the header
        // patch, which must leave the unfinished sentinel in place.
        rvp_fail::io_at("trace.writer.finish")?;
        // End marker: a frame with record count zero.
        self.sink.write_all(&[0u8])?;
        self.sink.seek(SeekFrom::Start(COUNT_OFFSET))?;
        self.sink.write_all(&self.total_records.to_le_bytes())?;
        self.sink.flush()?;
        Ok(self.total_records)
    }
}

/// Runs the functional emulator over `program` for up to `meta.budget`
/// committed instructions and writes the stream to `path`.
///
/// Returns the number of records captured (fewer than the budget if the
/// program halts early). On failure the partial file is removed.
pub fn capture(program: &Program, meta: &TraceMeta, path: &Path) -> Result<u64, TraceError> {
    match capture_inner(program, meta, path) {
        Ok(n) => Ok(n),
        Err(e) => {
            let _ = std::fs::remove_file(path);
            Err(e)
        }
    }
}

fn capture_inner(program: &Program, meta: &TraceMeta, path: &Path) -> Result<u64, TraceError> {
    let mut writer = TraceWriter::create(path, meta)?;
    let mut emu = Emulator::new(program);
    let mut captured = 0u64;
    while captured < meta.budget {
        match emu.step()? {
            Some(record) => {
                writer.append(&record)?;
                captured += 1;
            }
            None => break,
        }
    }
    writer.finish()
}
