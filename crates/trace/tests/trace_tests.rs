//! Round-trip and corruption tests for the on-disk trace format.
//!
//! The round-trip property drives synthetic committed streams through
//! `TraceWriter`/`TraceReader` over an in-memory cursor; the capture
//! tests run the real emulator. The corruption tests damage files on
//! disk — truncation, payload bit-flips, version skew, interrupted
//! captures, program-hash skew — and assert both the precise
//! `TraceError` and that `TraceStore::open_or_capture` silently
//! re-captures instead of surfacing the damage.

use std::io::Cursor;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rvp_emu::{Committed, Emulator, STACK_TOP};
use rvp_isa::analysis::abi;
use rvp_isa::{Program, ProgramBuilder, Reg, NUM_REGS};
use rvp_trace::{
    capture, TraceError, TraceInput, TraceMeta, TraceReader, TraceStore, TraceWriter,
    FORMAT_VERSION, FRAME_RECORDS,
};

/// A scratch directory unique to one test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(test: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("rvp-trace-test-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A program exercising every record shape — loads, stores, taken and
/// not-taken branches — long enough to span several frames.
fn looping_program(outer_iters: i64) -> Program {
    let (p, v, acc, n, outer) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[7, 11, 13, 17, 19, 23, 29, 31]);
    b.li(acc, 0).li(outer, outer_iters);
    b.label("outer");
    b.li(p, 0x1000).li(n, 8);
    b.label("inner");
    b.ld(v, p, 0);
    b.add(acc, acc, v);
    b.st(acc, p, 0);
    b.addi(p, p, 8);
    b.subi(n, n, 1);
    b.bnez(n, "inner");
    b.subi(outer, outer, 1);
    b.bnez(outer, "outer");
    b.halt();
    b.build().expect("valid program")
}

fn meta_for(program: &Program, budget: u64) -> TraceMeta {
    TraceMeta::for_program("looper", TraceInput::Train, budget, program)
}

/// The emulator's committed stream, bounded by `budget`.
fn emulated_stream(program: &Program, budget: u64) -> Vec<Committed> {
    let mut emu = Emulator::new(program);
    let mut out = Vec::new();
    while (out.len() as u64) < budget {
        match emu.step().expect("emulation") {
            Some(c) => out.push(c),
            None => break,
        }
    }
    out
}

fn replayed_stream(reader: impl Iterator<Item = Result<Committed, TraceError>>) -> Vec<Committed> {
    reader.map(|r| r.expect("decode")).collect()
}

#[test]
fn capture_replay_reproduces_committed_stream() {
    let dir = TempDir::new("roundtrip");
    let program = looping_program(300);
    let budget = 1 << 20;
    let want = emulated_stream(&program, budget);
    assert!(
        want.len() > 3 * FRAME_RECORDS,
        "program too short ({} records) to span several frames",
        want.len()
    );

    let meta = meta_for(&program, budget);
    let path = dir.path().join("trace.rvpt");
    let captured = capture(&program, &meta, &path).expect("capture");
    assert_eq!(captured, want.len() as u64);

    let reader = TraceReader::open(&path).expect("open");
    assert_eq!(reader.meta(), &meta);
    assert_eq!(reader.record_count(), want.len() as u64);
    assert_eq!(replayed_stream(reader), want);
}

#[test]
fn capture_respects_budget_mid_frame() {
    let dir = TempDir::new("budget");
    let program = looping_program(300);
    // Deliberately not a multiple of the frame size.
    let budget = FRAME_RECORDS as u64 + 123;
    let want = emulated_stream(&program, budget);
    assert_eq!(want.len() as u64, budget);

    let meta = meta_for(&program, budget);
    let path = dir.path().join("trace.rvpt");
    assert_eq!(capture(&program, &meta, &path).expect("capture"), budget);
    assert_eq!(replayed_stream(TraceReader::open(&path).expect("open")), want);
}

/// Expands generated `(dst_selector, value, pc, misc)` tuples into a
/// committed stream consistent with the codec's shadow-register
/// reconstruction: `old_value` is whatever the destination last held.
fn build_records(specs: &[(u8, u64, u32, u8)]) -> Vec<Committed> {
    let mut shadow = [0u64; NUM_REGS];
    shadow[abi::SP.index()] = STACK_TOP;
    specs
        .iter()
        .enumerate()
        .map(|(seq, &(dsel, value, pc, misc))| {
            let pc = pc as usize >> 12; // keep pcs small-ish, like real programs
            let dst = (dsel % 4 != 0).then(|| Reg::from_index(dsel as usize % NUM_REGS));
            let (old_value, new_value) = match dst {
                Some(d) => {
                    let old = shadow[d.index()];
                    // Same-value writes must be common enough to cover
                    // the FLAG_SAME_VALUE path.
                    let new = if misc & 1 != 0 { old } else { value };
                    shadow[d.index()] = new;
                    (old, new)
                }
                None => (0, 0),
            };
            let eff_addr = (misc & 2 != 0).then_some(value ^ 0x1234);
            let taken = match misc & 0b1100 {
                0b0000 => None,
                0b0100 => Some(false),
                _ => Some(true),
            };
            let next_pc = if misc & 16 != 0 { pc + 1 } else { value as usize & 0xffff };
            Committed { seq: seq as u64, pc, next_pc, dst, old_value, new_value, eff_addr, taken }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn writer_reader_round_trip(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u32>(), any::<u8>()),
            0..6000,
        ),
    ) {
        let records = build_records(&specs);
        let meta = TraceMeta {
            workload: "synthetic".into(),
            input: TraceInput::Ref,
            budget: records.len() as u64,
            program_len: 1 << 16,
            program_hash: 0x5eed,
        };
        let mut file = Cursor::new(Vec::new());
        let mut writer = TraceWriter::new(&mut file, &meta).expect("writer");
        for r in &records {
            writer.append(r).expect("append");
        }
        prop_assert_eq!(writer.finish().expect("finish"), records.len() as u64);

        file.set_position(0);
        let reader = TraceReader::new(file).expect("reader");
        prop_assert_eq!(reader.meta(), &meta);
        let got = replayed_stream(reader);
        prop_assert_eq!(got, records);
    }
}

#[test]
fn truncated_file_is_detected() {
    let dir = TempDir::new("truncated");
    let program = looping_program(300);
    let meta = meta_for(&program, 1 << 20);
    let path = dir.path().join("trace.rvpt");
    capture(&program, &meta, &path).expect("capture");

    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");

    let reader = TraceReader::open(&path).expect("header is intact");
    let last = reader.last().expect("at least one item");
    assert!(matches!(last, Err(TraceError::Truncated)), "got {last:?}");
}

#[test]
fn corrupt_payload_is_detected_and_leaks_no_records() {
    let dir = TempDir::new("checksum");
    let program = looping_program(300);
    let meta = meta_for(&program, 1 << 20);
    let path = dir.path().join("trace.rvpt");
    capture(&program, &meta, &path).expect("capture");

    // Flip a byte inside the *first* frame's payload: past the fixed
    // header (18 bytes), meta and its checksum, the frame's two varint
    // prefixes and 8-byte checksum.
    let mut bytes = std::fs::read(&path).expect("read");
    let meta_len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let first_payload = 18 + meta_len + 8 + 16;
    bytes[first_payload + 32] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted");

    let mut reader = TraceReader::open(&path).expect("header is intact");
    let first = reader.next().expect("one item");
    assert!(matches!(first, Err(TraceError::ChecksumMismatch { frame: 0 })), "got {first:?}");
    // The iterator fuses: no record of the damaged frame escapes.
    assert!(reader.next().is_none());
}

#[test]
fn version_skew_is_rejected() {
    let dir = TempDir::new("version");
    let program = looping_program(10);
    let meta = meta_for(&program, 1 << 20);
    let path = dir.path().join("trace.rvpt");
    capture(&program, &meta, &path).expect("capture");

    let mut bytes = std::fs::read(&path).expect("read");
    bytes[4] = bytes[4].wrapping_add(1);
    std::fs::write(&path, &bytes).expect("write skewed");

    match TraceReader::open(&path) {
        Err(TraceError::Version { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        Err(other) => panic!("expected version error, got {other:?}"),
        Ok(_) => panic!("expected version error, got a reader"),
    }
}

#[test]
fn interrupted_capture_is_rejected() {
    let dir = TempDir::new("unfinished");
    let program = looping_program(10);
    let meta = meta_for(&program, 1 << 20);
    let path = dir.path().join("trace.rvpt");

    let mut writer = TraceWriter::create(&path, &meta).expect("writer");
    for c in emulated_stream(&program, 100) {
        writer.append(&c).expect("append");
    }
    // Dropped without finish(): the record count keeps its sentinel.
    drop(writer);

    assert!(matches!(TraceReader::open(&path), Err(TraceError::Unfinished)));
}

#[test]
fn store_falls_back_on_version_skew() {
    let dir = TempDir::new("store-version");
    let store = TraceStore::new(dir.path()).expect("store");
    let program = looping_program(50);
    let meta = meta_for(&program, 1 << 20);
    store.capture(&program, &meta).expect("capture");

    let path = store.path_for(&meta);
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[4] = bytes[4].wrapping_add(1);
    std::fs::write(&path, &bytes).expect("write skewed");
    assert!(matches!(store.open(&meta), Err(TraceError::Version { .. })));

    // The graceful-fallback path re-captures and serves a valid trace.
    let reader = store.open_or_capture(&program, &meta).expect("fallback");
    assert_eq!(replayed_stream(reader), emulated_stream(&program, 1 << 20));
    assert_eq!(store.counters().fallbacks(), 1);
    assert_eq!(store.counters().captures(), 1);

    // And the replacement is a plain hit next time.
    store.open_or_capture(&program, &meta).expect("hit");
    assert_eq!(store.counters().hits(), 1);
    assert_eq!(store.counters().fallbacks(), 1);
}

#[test]
fn store_falls_back_on_header_truncation() {
    let dir = TempDir::new("store-truncated");
    let store = TraceStore::new(dir.path()).expect("store");
    let program = looping_program(50);
    let meta = meta_for(&program, 1 << 20);
    store.capture(&program, &meta).expect("capture");

    let path = store.path_for(&meta);
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..10]).expect("truncate into header");
    assert!(matches!(store.open(&meta), Err(TraceError::HeaderCorrupt)));

    let reader = store.open_or_capture(&program, &meta).expect("fallback");
    assert_eq!(reader.record_count(), emulated_stream(&program, 1 << 20).len() as u64);
    assert_eq!(store.counters().fallbacks(), 1);
}

#[test]
fn store_falls_back_on_program_hash_skew() {
    let dir = TempDir::new("store-hash");
    let store = TraceStore::new(dir.path()).expect("store");
    let old_program = looping_program(50);
    let new_program = looping_program(60); // same shape, different constants
    let budget = 1 << 20;
    store.capture(&old_program, &meta_for(&old_program, budget)).expect("capture old");

    // Same (workload, input, budget) key, so the cache paths collide;
    // the stored program hash must force a re-capture.
    let meta = meta_for(&new_program, budget);
    assert!(matches!(store.open(&meta), Err(TraceError::MetaMismatch { field: "program_hash" })));
    let reader = store.open_or_capture(&new_program, &meta).expect("fallback");
    assert_eq!(reader.meta().program_hash, meta.program_hash);
    assert_eq!(replayed_stream(reader), emulated_stream(&new_program, budget));
    assert_eq!(store.counters().fallbacks(), 1);
}

/// Chaos tests reconfigure the process-global failpoint schedule, so
/// they must not interleave; the `thread=` filters additionally keep
/// them from cross-firing into the other tests of this binary.
static CHAOS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn interrupted_store_write_leaves_no_partial_file() {
    let _guard = chaos_guard();
    let dir = TempDir::new("interrupted-write");
    let store = TraceStore::new(dir.path()).expect("store");
    let program = looping_program(300);
    let meta = meta_for(&program, 1 << 20);

    // Fail the first frame flush of this thread only: the capture dies
    // mid-file exactly as a full disk would kill it.
    rvp_fail::configure("seed=7;trace.writer.frame=io,thread=interrupted_store_write")
        .expect("valid spec");
    let result = store.capture(&program, &meta);
    rvp_fail::disable();
    assert!(matches!(result, Err(TraceError::Io(_))), "got {result:?}");

    // Neither a half-written trace nor a stray temp file survives.
    let leftovers: Vec<String> = std::fs::read_dir(dir.path())
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(leftovers.is_empty(), "leftover files: {leftovers:?}");

    // The store still works once the fault clears.
    store.capture(&program, &meta).expect("clean capture");
    store.open(&meta).expect("replayable");
}

#[test]
fn corrupt_cached_trace_is_quarantined() {
    let _guard = chaos_guard();
    let dir = TempDir::new("quarantine");
    let store = TraceStore::new(dir.path()).expect("store");
    let program = looping_program(50);
    let meta = meta_for(&program, 1 << 20);
    store.capture(&program, &meta).expect("capture");

    // Truncate into the header: the next open rejects the file, moves
    // it into the quarantine directory and re-captures.
    let path = store.path_for(&meta);
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..10]).expect("truncate into header");

    let reader = store.open_or_capture(&program, &meta).expect("fallback");
    assert_eq!(replayed_stream(reader), emulated_stream(&program, 1 << 20));
    assert_eq!(store.counters().quarantined(), 1);
    assert_eq!(store.counters().fallbacks(), 1);

    let qdir = dir.path().join(rvp_trace::QUARANTINE_SUBDIR);
    let quarantined = std::fs::read_dir(&qdir).expect("quarantine dir exists").count();
    assert_eq!(quarantined, 1, "the corrupt bytes are preserved for inspection");
    // The rejected bytes can never be re-read from the cache path: the
    // recapture replaced the file wholesale.
    let fresh = std::fs::read(&path).expect("recaptured file");
    assert!(fresh.len() > 10);
}

#[test]
fn concurrent_store_startups_tolerate_each_others_sweep() {
    // The serve daemon opens the store while grid runs may be starting
    // on the same directory: every startup sweeps stale temp files, so
    // a candidate can vanish between one sweeper's directory listing
    // and its unlink. Every startup must succeed regardless of who wins
    // each race, and all stale files must be gone afterwards.
    let dir = TempDir::new("concurrent-sweep");
    for round in 0..8 {
        for i in 0..64 {
            // A pid no live process on this machine plausibly owns.
            let fake_pid = 4_000_000 + i;
            let name = format!("wl-ref-{round}-{i}.rvpt.tmp.{fake_pid}");
            std::fs::write(dir.path().join(name), b"stale capture junk").expect("plant stale tmp");
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..8).map(|_| scope.spawn(|| TraceStore::new(dir.path()).map(drop))).collect();
            for h in handles {
                h.join().expect("no panic").expect("every concurrent startup succeeds");
            }
        });
        let leftovers: Vec<String> = std::fs::read_dir(dir.path())
            .expect("read dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files must be swept: {leftovers:?}");
    }
}
