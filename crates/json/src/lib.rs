//! Dependency-free JSON emission for experiment artifacts.
//!
//! The paper-grid binaries (`rvp-grid`, the `fig*` regenerators) need to
//! write machine-readable results. `serde`/`serde_json` are not
//! available in the hermetic build environment, so this crate provides
//! the small serialization layer the workspace actually needs: a
//! [`Json`] value tree, exact integer formatting (no `u64`→`f64`
//! precision loss), correct string escaping, and a [`ToJson`] trait that
//! stats types across the workspace implement.
//!
//! # Examples
//!
//! ```
//! use rvp_json::Json;
//!
//! let j = Json::obj([
//!     ("name", Json::from("m88ksim")),
//!     ("ipc", Json::from(2.5)),
//!     ("committed", Json::from(400_000u64)),
//! ]);
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"name":"m88ksim","ipc":2.5,"committed":400000}"#
//! );
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, formatted exactly.
    UInt(u64),
    /// A signed integer, formatted exactly.
    Int(i64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // value re-parses as a float.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n.into())
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integers_are_exact() {
        assert_eq!(Json::from(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::from(-42i64).to_string(), "-42");
    }

    #[test]
    fn floats_reparse_as_floats() {
        assert_eq!(Json::from(2.0).to_string(), "2.0");
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nesting() {
        let j = Json::obj([
            ("xs", Json::arr([Json::from(1u64), Json::Null])),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,null],"ok":true}"#);
    }
}
