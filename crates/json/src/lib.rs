//! Dependency-free JSON emission and parsing for experiment artifacts.
//!
//! The paper-grid binaries (`rvp-grid`, the `fig*` regenerators) need to
//! write machine-readable results, and `rvp-report` needs to read them
//! back. `serde`/`serde_json` are not available in the hermetic build
//! environment, so this crate provides the small serialization layer the
//! workspace actually needs: a [`Json`] value tree, exact integer
//! formatting (no `u64`→`f64` precision loss), correct string escaping,
//! a [`ToJson`] trait that stats types across the workspace implement,
//! and [`Json::parse`] for reading artifacts back.
//!
//! # Examples
//!
//! ```
//! use rvp_json::Json;
//!
//! let j = Json::obj([
//!     ("name", Json::from("m88ksim")),
//!     ("ipc", Json::from(2.5)),
//!     ("committed", Json::from(400_000u64)),
//! ]);
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"name":"m88ksim","ipc":2.5,"committed":400000}"#
//! );
//! ```

use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts.
///
/// The parser recurses once per nested array/object, so attacker-shaped
/// input like `[[[[...` would otherwise overflow the stack and abort
/// the process — unacceptable for a server parsing request bodies. A
/// document deeper than this fails with an ordinary [`ParseError`].
pub const MAX_PARSE_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, formatted exactly.
    UInt(u64),
    /// A signed integer, formatted exactly.
    Int(i64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Parses a JSON document.
    ///
    /// Integers without a fraction or exponent parse as [`Json::UInt`]
    /// (or [`Json::Int`] when negative), so values written by this crate
    /// round-trip exactly; everything else numeric becomes
    /// [`Json::Float`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input,
    /// including documents nested deeper than [`MAX_PARSE_DEPTH`].
    pub fn parse(s: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member of an object, by key (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members of an object, or `None` for non-objects.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// String content, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, or `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned-integer content (including in-range `Int`s), or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, or `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    fn write(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => write!(out, "{n}"),
            Json::Int(n) => write!(out, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // value re-parses as a float.
                    write!(out, "{x:?}")
                } else {
                    out.write_str("null")
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.write(out)?;
                }
                out.write_char(']')
            }
            Json::Obj(pairs) => {
                out.write_char('{')?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    escape_into(k, out)?;
                    out.write_char(':')?;
                    v.write(out)?;
                }
                out.write_char('}')
            }
        }
    }

    /// Streams the serialized document straight into an [`std::io::Write`]
    /// sink, without materializing the full text in memory first — the
    /// server uses this to write response bodies to sockets.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn to_writer(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut adaptor = IoAdaptor { inner: w, error: None };
        match self.write(&mut adaptor) {
            Ok(()) => Ok(()),
            Err(_) => Err(adaptor
                .error
                .unwrap_or_else(|| std::io::Error::other("formatter error during JSON emission"))),
        }
    }
}

/// Carries an `io::Error` out through the `fmt::Write` plumbing.
struct IoAdaptor<'a> {
    inner: &'a mut dyn std::io::Write,
    error: Option<std::io::Error>,
}

impl fmt::Write for IoAdaptor<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            fmt::Error
        })
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f)
    }
}

fn escape_into(s: &str, out: &mut dyn fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, bounded by [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while !matches!(self.peek(), None | Some(b'"' | b'\\') | Some(0x00..=0x1f)) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(0x00..=0x1f) => return Err(self.err("raw control character in string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected \\u for low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("unpaired low surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => unreachable!("consumed by the run loop"),
            }
        }
    }

    /// Four hex digits (after `\u`), leaving `pos` past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !fractional {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<i64>() {
                    return Ok(Json::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(ParseError { offset: start, message: "invalid number" }),
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n.into())
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integers_are_exact() {
        assert_eq!(Json::from(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::from(-42i64).to_string(), "-42");
    }

    #[test]
    fn floats_reparse_as_floats() {
        assert_eq!(Json::from(2.0).to_string(), "2.0");
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nesting() {
        let j = Json::obj([
            ("xs", Json::arr([Json::from(1u64), Json::Null])),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,null],"ok":true}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::from("hi"));
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(Json::parse(r#""a\"b\\c\ndA""#).unwrap(), Json::from("a\"b\\c\ndA"));
        // U+1F600 as a raw character, as an escaped surrogate pair, and a
        // BMP \u escape.
        assert_eq!(Json::parse("\"😀\"").unwrap(), Json::from("\u{1f600}"));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::from("\u{1f600}"));
        assert_eq!(Json::parse("\"\\u00e9x\"").unwrap(), Json::from("\u{e9}x"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse("\"raw\ncontrol\"").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "[1 2]", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_unterminated_strings_with_an_error() {
        for bad in ["\"abc", "\"abc\\", "\"abc\\u00", "{\"key", "{\"key\":\"va"] {
            let err = Json::parse(bad).expect_err("unterminated string must not parse");
            assert!(err.offset <= bad.len(), "offset in range for {bad:?}");
        }
    }

    #[test]
    fn parse_depth_limit_is_an_error_not_a_crash() {
        // One below the limit parses; past it is a clean ParseError
        // (without the limit this is a stack overflow, which aborts —
        // fatal for a server parsing untrusted request bodies).
        let deep_ok = format!("{}0{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());

        let too_deep = format!("{}0{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = Json::parse(&too_deep).expect_err("over-deep nesting must error");
        assert_eq!(err.message, "nesting too deep");
        let objs = "{\"k\":".repeat(100_000);
        assert_eq!(Json::parse(&objs).expect_err("deep objects too").message, "nesting too deep");

        // Siblings do not accumulate depth: only the nesting path counts.
        let wide = format!("[{}]", vec!["[0]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn to_writer_matches_to_string_and_propagates_errors() {
        let j = Json::obj([
            ("name", Json::from("a\"b\\c\nd")),
            ("xs", Json::arr([Json::from(1u64), Json::from(-2i64), Json::from(2.5), Json::Null])),
            ("nested", Json::obj([("deep", Json::arr([Json::Bool(true)]))])),
        ]);
        let mut bytes = Vec::new();
        j.to_writer(&mut bytes).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), j.to_string());

        /// A sink that fails after a few bytes, like a hung-up socket.
        struct Failing(usize);
        impl std::io::Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("peer went away"));
                }
                self.0 = self.0.saturating_sub(buf.len());
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = j.to_writer(&mut Failing(4)).expect_err("sink failure must surface");
        assert_eq!(err.to_string(), "peer went away");
    }

    #[test]
    fn emitted_json_round_trips() {
        let j = Json::obj([
            ("name", Json::from("m88ksim")),
            ("ipc", Json::from(2.5)),
            ("committed", Json::from(400_000u64)),
            ("delta", Json::from(-3i64)),
            ("tags", Json::arr([Json::from("a\nb"), Json::Null, Json::Bool(false)])),
            ("nested", Json::obj([("empty", Json::Arr(Vec::new()))])),
        ]);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"stats":{"cycles":10,"ipc":1.5},"xs":[1,2]}"#).unwrap();
        let stats = j.get("stats").unwrap();
        assert_eq!(stats.get("cycles").and_then(Json::as_u64), Some(10));
        assert_eq!(stats.get("ipc").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("xs").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.as_str(), None);
    }
}
