//! Offline stand-in for the subset of the crates.io `rand` 0.8 API this
//! workspace uses.
//!
//! The build container has no network access, so the real `rand` crate
//! cannot be fetched. This crate provides the same paths and signatures
//! (`rand::Rng::gen_range`, `rand::rngs::StdRng`, `rand::SeedableRng`)
//! backed by a deterministic xoshiro256** generator. Sequences differ
//! from the real `StdRng` (which is ChaCha-based), but every consumer in
//! this workspace only relies on seeded determinism and uniformity, not
//! on a specific stream.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

/// Types with a uniform sampler. A single blanket
/// `SampleRange<T> for Range<T>` impl hangs off this trait (as in real
/// `rand`) so integer-literal ranges keep inferring their type from the
/// surrounding code instead of falling back to `i32`.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[start, end)`.
    fn sample_one<G: RngCore>(start: Self, end: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_one(self.start, self.end, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_one<G: RngCore>(start: $t, end: $t, rng: &mut G) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_one<G: RngCore>(start: $t, end: $t, rng: &mut G) -> $t {
                assert!(start < end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                start + (end - start) * unit as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = r.gen_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
