//! Runner-side plumbing for SimPoint-style sampled measurement.
//!
//! The [`rvp_sample`] crate owns the methodology (BBV profiling,
//! clustering, window extraction, weighted reconstruction); this module
//! owns the *caching*: a sampling plan is a pure function of
//! (program, budget, [`SampleSpec`]), so it is memoized in memory across
//! the scheme cells of a grid — every cell of a workload column shares
//! one plan and one set of extracted windows — and persisted
//! content-addressed next to the trace store, so re-running a sweep
//! skips the profiling pass entirely.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rvp_emu::Emulator;
use rvp_isa::Program;
use rvp_json::{Json, ToJson};
use rvp_obs::log;
use rvp_sample::{extract_windows, BbvConfig, BbvProfiler, SamplePlan, SampleSpec, SampleWindow};
use rvp_uarch::SimError;

/// Content key for a sampling plan (and the windows extracted under
/// it): everything the plan is a function of, hashed. The program hash
/// covers the workload, input, scale factor *and* any register
/// reallocation; the resolved interval/warmup cover the auto knobs.
pub(crate) fn sample_key(
    workload: &str,
    budget: u64,
    program_hash: u64,
    interval: u64,
    warmup: u64,
    spec: &SampleSpec,
) -> u64 {
    let key = format!(
        "{workload}|{budget}|{program_hash:016x}|{interval}|{warmup}|{}",
        spec.fingerprint_component()
    );
    rvp_trace::fnv1a(key.as_bytes())
}

type PlanSlot = Arc<Mutex<Option<Arc<SamplePlan>>>>;
type WindowSlot = Arc<Mutex<Option<Arc<Vec<SampleWindow>>>>>;

/// Thread-safe memos of sampling plans and extracted windows, shared by
/// clones of a [`crate::Runner`] exactly like its profile and trace
/// caches: entries are locked individually, so grid threads racing on
/// the same workload profile it once while different workloads proceed
/// in parallel.
#[derive(Clone, Default)]
pub struct SamplingCaches {
    plans: Arc<Mutex<HashMap<u64, PlanSlot>>>,
    windows: Arc<Mutex<HashMap<u64, WindowSlot>>>,
}

impl SamplingCaches {
    /// The plan for `key`, from (in order) the in-memory memo, the
    /// content-addressed file under `dir`, or `build`. A freshly built
    /// plan is persisted to `dir` best-effort — a read-only store slows
    /// the next sweep down but never fails this one.
    pub(crate) fn plan(
        &self,
        key: u64,
        dir: Option<&Path>,
        build: impl FnOnce() -> Result<SamplePlan, SimError>,
    ) -> Result<Arc<SamplePlan>, SimError> {
        let slot = {
            let mut slots = self.plans.lock().expect("plan cache poisoned");
            slots.entry(key).or_default().clone()
        };
        let mut entry = slot.lock().expect("plan slot poisoned");
        if let Some(plan) = entry.as_ref() {
            return Ok(Arc::clone(plan));
        }
        let path = dir.map(|d| plan_path(d, key));
        if let Some(plan) = path.as_ref().and_then(|p| load_plan(p)) {
            let plan = Arc::new(plan);
            *entry = Some(Arc::clone(&plan));
            return Ok(plan);
        }
        let plan = Arc::new(build()?);
        if let Some(p) = &path {
            store_plan(p, &plan);
        }
        *entry = Some(Arc::clone(&plan));
        Ok(plan)
    }

    /// The extracted windows for `key`, memoized like [`Self::plan`].
    /// Windows are a few MB of committed records — worth sharing across
    /// a workload's scheme cells, not worth persisting (re-extraction is
    /// one streaming emulation pass).
    pub(crate) fn windows(
        &self,
        key: u64,
        extract: impl FnOnce() -> Result<Vec<SampleWindow>, SimError>,
    ) -> Result<Arc<Vec<SampleWindow>>, SimError> {
        let slot = {
            let mut slots = self.windows.lock().expect("window cache poisoned");
            slots.entry(key).or_default().clone()
        };
        let mut entry = slot.lock().expect("window slot poisoned");
        if let Some(windows) = entry.as_ref() {
            return Ok(Arc::clone(windows));
        }
        let windows = Arc::new(extract()?);
        *entry = Some(Arc::clone(&windows));
        Ok(windows)
    }

    /// Number of cached plans.
    pub fn plans_len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Number of cached window sets.
    pub fn windows_len(&self) -> usize {
        self.windows.lock().expect("window cache poisoned").len()
    }
}

impl fmt::Debug for SamplingCaches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SamplingCaches({} plans, {} window sets)", self.plans_len(), self.windows_len())
    }
}

/// The content-addressed path of a plan: `<dir>/plan-<key>.json`.
pub(crate) fn plan_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("plan-{key:016x}.json"))
}

fn load_plan(path: &Path) -> Option<SamplePlan> {
    let text = std::fs::read_to_string(path).ok()?;
    match Json::parse(&text).ok().as_ref().map(SamplePlan::from_json) {
        Some(Ok(plan)) => Some(plan),
        _ => {
            log::warn(
                "rvp_core::sampling",
                "cached sampling plan unreadable; rebuilding",
                &[("path", path.display().to_string().into())],
            );
            None
        }
    }
}

fn store_plan(path: &Path, plan: &SamplePlan) {
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        crate::journal::write_atomic(path, plan.to_json().to_string().as_bytes())
    };
    if let Err(e) = write() {
        log::warn(
            "rvp_core::sampling",
            "failed to persist sampling plan; it will be rebuilt next sweep",
            &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
        );
    }
}

/// One full pipeline run up to the plan: stream the committed
/// instructions through the BBV profiler ([`sample.profile`] span),
/// then cluster ([`sample.cluster`] span inside
/// [`SamplePlan::build`]).
/// Cancel polls in the streaming emulation passes happen every
/// `CANCEL_CHECK_MASK + 1` committed records — the same amortization
/// idea as the cycle loop's, so a sampled cell squashes within
/// milliseconds of its token firing even while profiling.
const CANCEL_CHECK_MASK: u64 = 0x1FFF;

pub(crate) fn build_plan(
    workload: &'static str,
    program: &Program,
    budget: u64,
    interval: u64,
    warmup: u64,
    spec: &SampleSpec,
    cancel: Option<&rvp_obs::CancelToken>,
) -> Result<SamplePlan, SimError> {
    let profile = {
        let _span = rvp_obs::span!("sample.profile", { workload, budget, interval });
        let cfg = BbvConfig { interval_insts: interval, dims: spec.dims, seed: spec.seed };
        let mut prof = BbvProfiler::new(program.len(), cfg);
        let mut emu = Emulator::new(program);
        let mut seen = 0u64;
        while seen < budget {
            if seen & CANCEL_CHECK_MASK == 0 {
                if let Some(reason) = cancel.and_then(rvp_obs::CancelToken::poll) {
                    return Err(SimError::Cancelled { cycle: 0, committed: seen, reason });
                }
            }
            match emu.step().map_err(SimError::Emu)? {
                Some(rec) => {
                    prof.observe(rec.pc, rec.next_pc);
                    seen += 1;
                }
                None => break,
            }
        }
        prof.finish()
    };
    Ok(SamplePlan::build(&profile, spec, warmup))
}

/// The second streaming pass: re-emulate the program and pull out just
/// the planned windows. A fired cancel token ends the stream early and
/// surfaces as [`SimError::Cancelled`] rather than a short-trace error.
pub(crate) fn extract_plan_windows(
    plan: &SamplePlan,
    program: &Program,
    cancel: Option<&rvp_obs::CancelToken>,
) -> Result<Vec<SampleWindow>, SimError> {
    let mut emu = Emulator::new(program);
    let mut seen = 0u64;
    let result = extract_windows(
        plan,
        std::iter::from_fn(|| {
            if seen & CANCEL_CHECK_MASK == 0
                && cancel.and_then(rvp_obs::CancelToken::poll).is_some()
            {
                return None;
            }
            seen += 1;
            emu.step().transpose()
        }),
    );
    if let Some(reason) = cancel.and_then(|t| t.reason()) {
        return Err(SimError::Cancelled { cycle: 0, committed: seen, reason });
    }
    result.map_err(SimError::Emu)
}
