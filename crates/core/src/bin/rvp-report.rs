//! `rvp-report` — render a directory of grid cell JSON files (written
//! by `rvp-grid` / `RVP_JSON_DIR`) as aligned text tables.
//!
//! ```text
//! rvp-report <RESULTS_DIR>
//! ```
//!
//! Sections:
//!
//! 1. an IPC table (scheme rows × workload columns, plus the mean),
//! 2. per-workload CPI stacks (% of cycles in each attribution bucket),
//! 3. observability highlights for cells carrying an instrumentation
//!    artifact (`obs`): warm-up vs. steady IPC and the costliest static
//!    instruction,
//! 4. a sampling section for cells that carry a `sampling` plan (the
//!    shape a `--sample` sweep writes into `*.sampled.json` files):
//!    interval size, chosen k, warmup length, detail share, the
//!    per-cluster representative weights, and — when the directory
//!    also holds the matching detailed cell — the sampled-vs-full
//!    IPC error,
//! 5. committed-stream source counters (captures / shared hits / live
//!    fallbacks per workload) when the directory holds a grid summary
//!    written with `rvp-grid --metrics-out`,
//! 6. a resilience section from the same summary: poisoned cells (with
//!    the ladder stage and error that killed them), total retries,
//!    quarantined trace files, resumed cells and any injected
//!    failpoint hits from a chaos run,
//! 7. a serving section for any `rvp-serve` metrics snapshot in the
//!    directory (a `/metrics` download, or the `server_metrics` object
//!    embedded in `BENCH_serve.json`): request/error/job counters,
//!    cache hit rate, queue high-water mark and the latency histogram
//!    quantiles. A directory holding only serve metrics (the CI
//!    artifact case) renders without any cell files,
//! 8. a spans section for any Chrome trace-event JSON in the directory
//!    (written by `--trace-out` or downloaded from `GET /trace`):
//!    top spans by self time, the critical path under the longest
//!    root, and the per-job queue-wait vs exec-time breakdown.
//!
//! The binary is read-only: it never simulates, so it renders in
//! milliseconds even for a full 135-cell grid.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

use rvp_core::span::{self, FieldValue};
use rvp_core::{fatal, list_schemes, log, CpiBucket, Json, EXIT_CONFIG, EXIT_IO, EXIT_USAGE};

/// One parsed cell file.
struct Cell {
    workload: String,
    scheme: String,
    stats: Json,
    /// The `SamplePlan` object a sampled run embeds; `None` for
    /// detailed cells.
    sampling: Option<Json>,
}

fn usage() -> ExitCode {
    eprintln!("usage: rvp-report <RESULTS_DIR>");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir] = args.as_slice() else { return usage() };
    let cells = match load_cells(Path::new(dir)) {
        Ok(cells) => cells,
        Err(e) => {
            return fatal(
                "rvp-report",
                "cannot read results directory",
                EXIT_IO,
                &[("dir", dir.as_str().into()), ("error", e.to_string().into())],
            );
        }
    };
    if cells.is_empty() {
        // A serve-metrics or trace artifact directory has no cells;
        // render those sections alone rather than refusing.
        if print_serve_metrics(Path::new(dir)) + print_spans(Path::new(dir)) > 0 {
            return ExitCode::SUCCESS;
        }
        return fatal(
            "rvp-report",
            "no cell JSON files found",
            EXIT_CONFIG,
            &[("dir", dir.as_str().into())],
        );
    }

    let workloads: Vec<String> =
        cells.iter().map(|c| c.workload.clone()).collect::<BTreeSet<_>>().into_iter().collect();
    let schemes = scheme_order(&cells);

    println!(
        "== rvp-report: {} cells, {} workloads x {} schemes ({dir}) ==",
        cells.len(),
        workloads.len(),
        schemes.len()
    );

    print_ipc_table(&cells, &workloads, &schemes);
    print_cpi_stacks(&cells, &workloads, &schemes);
    print_obs_highlights(&cells);
    print_sampling(&cells);
    print_trace_sources(Path::new(dir));
    print_resilience(Path::new(dir));
    print_serve_metrics(Path::new(dir));
    print_spans(Path::new(dir));
    ExitCode::SUCCESS
}

/// Renders the spans section for every Chrome trace-event JSON file in
/// `dir` (a `traceEvents` key marks one): top spans by self time, the
/// critical path under the longest root, and — when the trace carries
/// serve-side spans — the per-job queue-wait vs exec-time breakdown.
/// Returns how many traces were rendered.
fn print_spans(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut rendered = 0;
    for path in paths {
        let Some(data) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .filter(|j| j.get("traceEvents").is_some())
            .and_then(|j| span::from_chrome_trace(&j))
        else {
            continue;
        };
        if data.spans.is_empty() {
            continue;
        }
        rendered += 1;
        println!(
            "\nspans ({}, {} spans, {} dropped)",
            path.display(),
            data.spans.len(),
            data.dropped
        );
        println!("{:>26} {:>8} {:>12}", "name", "count", "self_us");
        for (name, self_us, count) in span::self_time_by_name(&data).into_iter().take(10) {
            println!("{name:>26} {count:>8} {self_us:>12}");
        }
        if let Some(root) = span::roots(&data).first() {
            let chain: Vec<String> = span::critical_path(&data, root)
                .iter()
                .map(|s| format!("{} ({}us)", s.name, s.dur_us))
                .collect();
            println!("  critical path: {}", chain.join(" -> "));
        }
        // Queue-wait vs exec, keyed by the `job` correlation field the
        // daemon stamps onto both span kinds.
        let mut jobs: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &data.spans {
            let Some(FieldValue::U64(job)) = s.field("job") else { continue };
            let slot = jobs.entry(*job).or_default();
            match s.name.as_ref() {
                "serve.queue.wait" => slot.0 += s.dur_us,
                "serve.cell.exec" => slot.1 += s.dur_us,
                _ => {}
            }
        }
        if jobs.values().any(|&(wait, exec)| wait > 0 || exec > 0) {
            println!("{:>12} {:>14} {:>12} {:>7}", "job", "queue_wait_us", "exec_us", "wait%");
            for (job, (wait, exec)) in jobs {
                let total = wait + exec;
                let share = if total > 0 { 100.0 * wait as f64 / total as f64 } else { 0.0 };
                println!("{job:>12} {wait:>14} {exec:>12} {share:>6.1}%");
            }
        }
    }
    rendered
}

/// Renders the daemon-side counters from any `rvp-serve` metrics
/// snapshot in `dir`: either a raw `/metrics` download or a
/// `BENCH_serve.json` with the snapshot embedded as `server_metrics`.
/// Returns how many snapshots were rendered.
fn print_serve_metrics(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut rendered = 0;
    for path in paths {
        let Some(parsed) = std::fs::read_to_string(&path).ok().and_then(|t| Json::parse(&t).ok())
        else {
            continue;
        };
        let metrics = if parsed.get("request_latency").is_some() {
            parsed.clone()
        } else {
            match parsed.get("server_metrics") {
                Some(m) if m.get("request_latency").is_some() => m.clone(),
                _ => continue,
            }
        };
        rendered += 1;
        let count = |key: &str| metrics.get(key).and_then(Json::as_u64).unwrap_or(0);
        println!("\nserving ({})", path.display());
        println!(
            "  requests {}  4xx {}  5xx {}  rejected {}",
            count("requests"),
            count("client_errors"),
            count("server_errors"),
            count("rejected")
        );
        println!(
            "  jobs: submitted {}  completed {}  resumed {}  queue peak {}",
            count("jobs_submitted"),
            count("jobs_completed"),
            count("jobs_resumed"),
            count("queue_peak")
        );
        let hit_rate = metrics.get("cache_hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "  cells: computed {}  failed {}  cache hits {} ({:.1}% hit rate)",
            count("cells_computed"),
            count("cells_failed"),
            count("cache_hits"),
            100.0 * hit_rate
        );
        if let Some(latency) = metrics.get("request_latency") {
            let us = |key: &str| latency.get(key).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "  latency (us): p50 {}  p90 {}  p99 {}  max {}  ({} samples)",
                us("p50_us"),
                us("p90_us"),
                us("p99_us"),
                us("max_us"),
                us("count")
            );
        }
        // Runtime governance: squashes, shedding, drains and eviction.
        // Older snapshots predate these counters; print only when the
        // daemon that wrote the snapshot had the governance layer.
        if metrics.get("jobs_cancelled").is_some() {
            println!(
                "  governance: jobs cancelled {}  cells squashed {}  shed {}  drains {}",
                count("jobs_cancelled"),
                count("cells_cancelled"),
                count("shed"),
                count("drains"),
            );
            println!(
                "  governance: 408s {}  disconnects {}  cache evictions {}  queue-delay ewma {}us",
                count("request_timeouts"),
                count("client_disconnects"),
                count("cache_evictions"),
                count("queue_delay_ewma_us"),
            );
        }
    }
    rendered
}

/// Parses every `*.json` file in `dir` that has the cell shape; files
/// with other shapes (e.g. grid summaries) are skipped with a debug
/// event, unreadable ones with a warning.
fn load_cells(dir: &Path) -> std::io::Result<Vec<Cell>> {
    let mut cells = Vec::new();
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    for path in names {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                log::warn(
                    "rvp-report",
                    "skipping unreadable file",
                    &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
                );
                continue;
            }
        };
        let parsed = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                log::warn(
                    "rvp-report",
                    "skipping malformed JSON",
                    &[("path", path.display().to_string().into()), ("error", e.to_string().into())],
                );
                continue;
            }
        };
        let cell = (|| {
            Some(Cell {
                workload: parsed.get("workload")?.as_str()?.to_owned(),
                scheme: parsed.get("scheme")?.as_str()?.to_owned(),
                stats: parsed.get("stats")?.clone(),
                sampling: parsed.get("sampling").cloned(),
            })
        })();
        match cell {
            Some(c) => cells.push(c),
            None => log::debug(
                "rvp-report",
                "skipping non-cell JSON",
                &[("path", path.display().to_string().into())],
            ),
        }
    }
    Ok(cells)
}

/// Schemes in registry order (the paper's figures first, then the
/// zoo), then any labels the registry does not know — parameterized
/// cells, future schemes — alphabetically.
fn scheme_order(cells: &[Cell]) -> Vec<String> {
    let present: BTreeSet<&str> = cells.iter().map(|c| c.scheme.as_str()).collect();
    let mut out: Vec<String> = list_schemes()
        .iter()
        .map(|s| s.name)
        .filter(|l| present.contains(l))
        .map(str::to_owned)
        .collect();
    for s in present {
        if !out.iter().any(|o| o == s) {
            out.push(s.to_owned());
        }
    }
    out
}

/// When a cell exists both detailed and sampled (a `.json` next to a
/// `.sampled.json`), the main tables show the detailed one; the
/// sampling section compares the two.
fn find<'a>(cells: &'a [Cell], workload: &str, scheme: &str) -> Option<&'a Cell> {
    let mut matches = cells.iter().filter(|c| c.workload == workload && c.scheme == scheme);
    let first = matches.next()?;
    if first.sampling.is_none() {
        return Some(first);
    }
    Some(matches.find(|c| c.sampling.is_none()).unwrap_or(first))
}

fn stat_f64(stats: &Json, key: &str) -> Option<f64> {
    stats.get(key)?.as_f64()
}

fn print_ipc_table(cells: &[Cell], workloads: &[String], schemes: &[String]) {
    println!("\nIPC");
    print!("{:>22}", "");
    for wl in workloads {
        print!(" {wl:>8}");
    }
    println!(" {:>8}", "average");
    for scheme in schemes {
        print!("{scheme:>22}");
        let mut row = Vec::new();
        for wl in workloads {
            match find(cells, wl, scheme).and_then(|c| stat_f64(&c.stats, "ipc")) {
                Some(ipc) => {
                    print!(" {ipc:8.3}");
                    row.push(ipc);
                }
                None => print!(" {:>8}", "-"),
            }
        }
        if row.is_empty() {
            println!(" {:>8}", "-");
        } else {
            println!(" {:8.3}", row.iter().sum::<f64>() / row.len() as f64);
        }
    }
}

fn print_cpi_stacks(cells: &[Cell], workloads: &[String], schemes: &[String]) {
    for wl in workloads {
        println!("\nCPI stack (% of cycles), {wl}");
        print!("{:>22}", "");
        for bucket in CpiBucket::all() {
            print!(" {:>9}", bucket.key());
        }
        println!();
        for scheme in schemes {
            let Some(cell) = find(cells, wl, scheme) else { continue };
            let Some(cpi) = cell.stats.get("cpi") else { continue };
            let total: f64 = CpiBucket::all()
                .iter()
                .filter_map(|b| cpi.get(b.key()).and_then(Json::as_f64))
                .sum();
            print!("{scheme:>22}");
            for bucket in CpiBucket::all() {
                let cycles = cpi.get(bucket.key()).and_then(Json::as_f64).unwrap_or(0.0);
                if total > 0.0 {
                    print!(" {:9.1}", 100.0 * cycles / total);
                } else {
                    print!(" {:>9}", "-");
                }
            }
            println!();
        }
    }
}

fn print_obs_highlights(cells: &[Cell]) {
    let instrumented: Vec<&Cell> = cells.iter().filter(|c| c.stats.get("obs").is_some()).collect();
    if instrumented.is_empty() {
        return;
    }
    println!("\nobservability highlights ({} instrumented cells)", instrumented.len());
    println!(
        "{:>22} {:>10} {:>10} {:>8} {:>14}",
        "cell", "warmup_ipc", "steady_ipc", "dropped", "worst_pc(cost)"
    );
    for cell in instrumented {
        let obs = cell.stats.get("obs").expect("filtered");
        let samples = obs.get("samples").and_then(Json::as_arr).unwrap_or(&[]);
        let warmup = samples.first().and_then(|w| w.get("ipc")).and_then(Json::as_f64);
        let steady = steady_ipc(samples);
        let dropped = obs.get("dropped_windows").and_then(Json::as_u64).unwrap_or(0);
        let worst = obs
            .get("top_costly")
            .and_then(Json::as_arr)
            .and_then(<[Json]>::first)
            .and_then(|e| Some((e.get("pc")?.as_u64()?, e.get("costly")?.as_u64()?)));
        print!("{:>22}", format!("{}/{}", cell.workload, cell.scheme));
        match warmup {
            Some(v) => print!(" {v:10.3}"),
            None => print!(" {:>10}", "-"),
        }
        match steady {
            Some(v) => print!(" {v:10.3}"),
            None => print!(" {:>10}", "-"),
        }
        print!(" {dropped:8}");
        match worst {
            Some((pc, costly)) => println!(" {:>14}", format!("{pc}({costly})")),
            None => println!(" {:>14}", "-"),
        }
    }
}

/// Renders the sampling section for every cell carrying a `sampling`
/// plan: the interval size / k / warmup knobs, how much of the full
/// stream was simulated in detail, the representative-interval cluster
/// weights, and the sampled-vs-full IPC error whenever the directory
/// also holds the matching detailed cell.
fn print_sampling(cells: &[Cell]) {
    let sampled: Vec<&Cell> = cells.iter().filter(|c| c.sampling.is_some()).collect();
    if sampled.is_empty() {
        return;
    }
    println!("\nsampling ({} sampled cells)", sampled.len());
    println!(
        "{:>26} {:>9} {:>3} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "cell", "interval", "k", "warmup", "detail%", "ipc", "full_ipc", "err%"
    );
    for cell in sampled {
        let plan = cell.sampling.as_ref().expect("filtered");
        let num = |key: &str| plan.get(key).and_then(Json::as_u64).unwrap_or(0);
        let intervals = plan.get("intervals").and_then(Json::as_arr).unwrap_or(&[]);
        let total = num("total_insts");
        let detail: u64 =
            intervals.iter().filter_map(|r| r.get("len").and_then(Json::as_u64)).sum();
        let share = if total > 0 { 100.0 * detail as f64 / total as f64 } else { 0.0 };
        let ipc = stat_f64(&cell.stats, "ipc");
        let full = cells
            .iter()
            .find(|c| {
                c.sampling.is_none() && c.workload == cell.workload && c.scheme == cell.scheme
            })
            .and_then(|c| stat_f64(&c.stats, "ipc"));
        print!(
            "{:>26} {:>9} {:>3} {:>8} {:>7.2}%",
            format!("{}/{}", cell.workload, cell.scheme),
            num("interval_insts"),
            num("k"),
            num("warmup_insts"),
            share
        );
        match ipc {
            Some(v) => print!(" {v:8.3}"),
            None => print!(" {:>8}", "-"),
        }
        match full {
            Some(v) => print!(" {v:9.3}"),
            None => print!(" {:>9}", "-"),
        }
        match (ipc, full) {
            (Some(s), Some(f)) if f > 0.0 => println!(" {:6.2}%", 100.0 * (s - f).abs() / f),
            _ => println!(" {:>7}", "-"),
        }
        let weights: Vec<String> = intervals
            .iter()
            .map(|r| {
                let rn = |key: &str| r.get(key).and_then(Json::as_u64).unwrap_or(0);
                let w = r.get("weight").and_then(Json::as_f64).unwrap_or(0.0);
                format!("c{}@{}:{:.3}", rn("cluster"), rn("index"), w)
            })
            .collect();
        println!("{:>26}   weights: {}", "", weights.join("  "));
    }
}

/// Renders the per-workload committed-stream source tallies from any
/// grid summary JSON in `dir` (a file with `source_mode` and
/// `trace_sources` keys — the shape `rvp-grid --metrics-out` writes).
fn print_trace_sources(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let Some(summary) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .filter(|j| j.get("trace_sources").is_some())
        else {
            continue;
        };
        let mode = summary.get("source_mode").and_then(Json::as_str).unwrap_or("?");
        let Some(Json::Obj(sources)) = summary.get("trace_sources") else { continue };
        if sources.is_empty() {
            continue;
        }
        println!("\ncommitted-stream sources ({mode} mode, {})", path.display());
        println!(
            "{:>22} {:>10} {:>13} {:>16}",
            "workload", "captures", "shared_hits", "live_fallbacks"
        );
        let mut totals = [0u64; 3];
        for (wl, tally) in sources {
            let count = |key: &str| tally.get(key).and_then(Json::as_u64).unwrap_or(0);
            let row = [count("captures"), count("shared_hits"), count("live_fallbacks")];
            for (t, v) in totals.iter_mut().zip(row) {
                *t += v;
            }
            println!("{wl:>22} {:>10} {:>13} {:>16}", row[0], row[1], row[2]);
        }
        println!("{:>22} {:>10} {:>13} {:>16}", "total", totals[0], totals[1], totals[2]);
    }
}

/// Renders the failure-containment section of any grid summary in
/// `dir` (a file with a structured `failures` object — the shape
/// `rvp-grid` writes): poisoned cells with the degradation-ladder stage
/// and error that ended them, retry/quarantine/resume counters, and
/// per-site injected-fault counts from a chaos run.
fn print_resilience(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let Some(summary) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .filter(|j| j.get("failures").is_some_and(|f| f.as_obj().is_some()))
        else {
            continue;
        };
        let failures = summary.get("failures").expect("filtered");
        let count = |key: &str| failures.get(key).and_then(Json::as_u64).unwrap_or(0);
        let resumed = summary.get("resumed_cells").and_then(Json::as_u64).unwrap_or(0);
        let cancelled = failures
            .get("poisoned")
            .and_then(Json::as_arr)
            .map(|list| {
                list.iter()
                    .filter(|p| p.get("cancelled").and_then(Json::as_bool) == Some(true))
                    .count()
            })
            .unwrap_or(0);
        println!("\nresilience ({})", path.display());
        println!(
            "  poisoned {}  cancelled {}  retries {}  quarantined {}  resumed {}",
            count("count"),
            cancelled,
            count("retries"),
            count("quarantined"),
            resumed
        );
        if let Some(poisoned) = failures.get("poisoned").and_then(Json::as_arr) {
            if !poisoned.is_empty() {
                println!("{:>22} {:>8} {:>9}  error", "cell", "stage", "attempts");
                for p in poisoned {
                    let text = |key: &str| p.get(key).and_then(Json::as_str).unwrap_or("?");
                    let squashed = if p.get("cancelled").and_then(Json::as_bool) == Some(true) {
                        " [cancelled]"
                    } else {
                        ""
                    };
                    println!(
                        "{:>22} {:>8} {:>9}  {}{}",
                        text("cell"),
                        text("stage"),
                        p.get("attempts").and_then(Json::as_u64).unwrap_or(0),
                        text("error"),
                        squashed
                    );
                }
            }
        }
        if let Some(Json::Obj(injected)) = failures.get("injected") {
            if !injected.is_empty() {
                println!("  injected faults:");
                for (site, n) in injected {
                    println!("{site:>26} {}", n.as_u64().unwrap_or(0));
                }
            }
        }
    }
}

/// Committed-weighted IPC over all but the first retained window;
/// mirrors `ObsReport::steady_ipc` on the JSON side.
fn steady_ipc(samples: &[Json]) -> Option<f64> {
    let rest = samples.get(1..)?;
    let cycles: f64 = rest.iter().filter_map(|w| w.get("cycles").and_then(Json::as_f64)).sum();
    let committed: f64 =
        rest.iter().filter_map(|w| w.get("committed").and_then(Json::as_f64)).sum();
    (cycles > 0.0).then(|| committed / cycles)
}
