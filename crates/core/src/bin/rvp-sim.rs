//! `rvp-sim` — run an assembly file (or named workload) through the
//! out-of-order simulator under any prediction scheme.
//!
//! ```text
//! rvp-sim program.asm [options]
//! rvp-sim --workload li [options]
//!
//! options:
//!   --scheme S        any registry scheme that needs no train-input
//!                     profile (no_predict, lvp, lvp_all, drvp,
//!                     drvp_all, Grp_all, stride_all, stride2_all,
//!                     fcm_all, hybrid_all, rvp_lvp_all, tage_drvp_all,
//!                     hwcorr_all, ...), optionally with predictor
//!                     parameters: e.g. drvp_all:entries=4096 [drvp_all]
//!   --recovery R      refetch | reissue | selective               [selective]
//!   --machine M       table1 | wide16                             [table1]
//!   --max-insts N     committed-instruction budget                [1000000]
//!   --scale N         multiply a named workload's outer pass counts
//!                     (paper-scale instruction counts; workloads only) [1]
//!   --metrics-out P   write full stats (CPI stack, time series,
//!                     per-PC top-K tables) as JSON to path P
//!   --trace-out P     arm the span tracer and write the run's spans
//!                     (warmup, steady state, recovery bursts, finalize)
//!                     to P: Chrome trace-event JSON for Perfetto /
//!                     chrome://tracing, or folded stacks if P ends in
//!                     `.folded`
//!   --emulate         run the functional emulator only
//! ```
//!
//! Diagnostics go through the structured log facade: set `RVP_LOG`
//! (`off`/`error`/`warn`/`info`/`debug`) and optionally `RVP_LOG_FILE`.
//! Fatal failures emit a one-line JSON diagnostic on stderr and exit
//! with a class-specific code: 2 usage, 10 emulator error, 11 pipeline
//! deadlock, 12 train/ref structure mismatch, 13 I/O, 14 unknown
//! workload/scheme/recovery/machine.

use std::process::ExitCode;

use rvp_core::{
    fatal, fatal_sim, CpiBucket, Emulator, Input, ObsConfig, Program, Scheme, SchemeSpec,
    Simulator, ToJson, UarchConfig, EXIT_CONFIG, EXIT_EMU, EXIT_IO, EXIT_USAGE,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: rvp-sim <program.asm | --workload NAME> [--scheme S] [--recovery R] \
         [--machine M] [--max-insts N] [--scale N] [--metrics-out PATH] [--trace-out PATH] \
         [--emulate]"
    );
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut scheme = "drvp_all".to_owned();
    let mut recovery = "selective".to_owned();
    let mut machine = "table1".to_owned();
    let mut max_insts: u64 = 1_000_000;
    let mut scale: u64 = 1;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut emulate = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => workload = it.next(),
            "--scheme" => scheme = it.next().unwrap_or_default(),
            "--recovery" => recovery = it.next().unwrap_or_default(),
            "--machine" => machine = it.next().unwrap_or_default(),
            "--max-insts" => {
                max_insts = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                }
            }
            "--scale" => {
                scale = match it.next().and_then(|v| v.parse().ok()).filter(|&n: &u64| n > 0) {
                    Some(v) => v,
                    None => return usage(),
                }
            }
            "--metrics-out" => {
                metrics_out = it.next();
                if metrics_out.is_none() {
                    return usage();
                }
            }
            "--trace-out" => {
                trace_out = it.next();
                if trace_out.is_none() {
                    return usage();
                }
            }
            "--emulate" => emulate = true,
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') && path.is_none() => path = Some(a),
            _ => return usage(),
        }
    }

    let program: Program = match (&path, &workload) {
        (Some(p), None) => {
            let src = match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => {
                    return fatal(
                        "rvp-sim",
                        "cannot read program file",
                        EXIT_IO,
                        &[("path", p.as_str().into()), ("error", e.to_string().into())],
                    );
                }
            };
            match rvp_core::parse_asm(&src) {
                Ok(p) => p,
                Err(e) => {
                    return fatal(
                        "rvp-sim",
                        "parse error",
                        EXIT_CONFIG,
                        &[("error", e.to_string().into())],
                    );
                }
            }
        }
        // The registry-listing error, mirroring unknown-scheme UX.
        (None, Some(w)) => match rvp_core::by_name_or_err(w) {
            Ok(wl) => wl.program_scaled(Input::Ref, scale),
            Err(e) => {
                return fatal("rvp-sim", "unknown workload", EXIT_CONFIG, &[("error", e.into())]);
            }
        },
        _ => return usage(),
    };

    if emulate {
        let mut emu = Emulator::new(&program);
        match emu.run(max_insts) {
            Ok(s) => {
                println!("committed {} instructions, halted: {}", s.committed, s.halted);
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                return fatal(
                    "rvp-sim",
                    "emulation error",
                    EXIT_EMU,
                    &[("error", e.to_string().into())],
                );
            }
        }
    }

    // Pre-registry CLI names that are not registry labels.
    let scheme = match scheme.as_str() {
        "grp_all" => "Grp_all".to_owned(),
        "context_all" => "fcm_all".to_owned(),
        _ => scheme,
    };
    let spec = match SchemeSpec::parse(&scheme) {
        Ok(spec) => spec,
        Err(e) => {
            return fatal("rvp-sim", "unknown scheme", EXIT_CONFIG, &[("error", e.into())]);
        }
    };
    // This tool runs one raw program with no train input, so
    // profile-guided schemes have nothing to profile.
    if spec.needs_profile() {
        return fatal(
            "rvp-sim",
            "scheme needs a train-input profile; use rvp-grid",
            EXIT_CONFIG,
            &[("scheme", spec.label().into())],
        );
    }
    let scheme = match spec.build_predictor() {
        Some(p) => Scheme::new(spec.label().to_owned(), spec.info().scope, p),
        None => Scheme::no_predict(),
    };
    let recovery = match rvp_core::parse_recovery(&recovery) {
        Some(r) => r,
        None => {
            return fatal(
                "rvp-sim",
                "unknown recovery",
                EXIT_CONFIG,
                &[("recovery", recovery.as_str().into())],
            );
        }
    };
    let config = match machine.as_str() {
        "table1" => UarchConfig::table1(),
        "wide16" => UarchConfig::wide16(),
        other => {
            return fatal("rvp-sim", "unknown machine", EXIT_CONFIG, &[("machine", other.into())]);
        }
    };

    // A metrics file wants the full artifact, so turn the optional
    // instrumentation on for that case only.
    let obs = if metrics_out.is_some() { ObsConfig::standard() } else { ObsConfig::off() };
    if trace_out.is_some() {
        rvp_core::span::arm(rvp_core::span::DEFAULT_RING_CAPACITY);
    }

    match Simulator::new(config, scheme, recovery).with_obs(obs).run(&program, max_insts) {
        Ok(s) => {
            println!("committed:       {}", s.committed);
            println!("cycles:          {}", s.cycles);
            println!("ipc:             {:.4}", s.ipc());
            println!("predictions:     {} ({:.2}% of insts)", s.predictions, 100.0 * s.coverage());
            println!("accuracy:        {:.2}%", 100.0 * s.accuracy());
            println!("costly mispred.: {}", s.costly_mispredictions);
            println!("squashed insts:  {}", s.squashed_insts);
            println!("reissued insts:  {}", s.reissued_insts);
            println!("branch accuracy: {:.2}%", 100.0 * s.branch.direction_accuracy());
            println!("l1d miss rate:   {:.4}", s.mem.l1d.miss_rate());
            println!("cpi stack:");
            for bucket in CpiBucket::all() {
                println!(
                    "  {:<18} {:>12}  ({:5.1}%)",
                    bucket.key(),
                    s.cpi.get(bucket),
                    100.0 * s.cpi.fraction(bucket)
                );
            }
            if let Some(path) = metrics_out {
                if let Err(e) = std::fs::write(&path, format!("{}\n", s.to_json())) {
                    return fatal(
                        "rvp-sim",
                        "cannot write metrics file",
                        EXIT_IO,
                        &[("path", path.as_str().into()), ("error", e.to_string().into())],
                    );
                }
                println!("metrics written: {path}");
            }
            if let Some(path) = trace_out {
                let data = rvp_core::span::drain();
                if let Err(e) = rvp_core::span::write_trace_file(std::path::Path::new(&path), &data)
                {
                    return fatal(
                        "rvp-sim",
                        "cannot write trace file",
                        EXIT_IO,
                        &[("path", path.as_str().into()), ("error", e.to_string().into())],
                    );
                }
                println!("trace written:   {path} ({} spans)", data.spans.len());
            }
            ExitCode::SUCCESS
        }
        Err(e) => fatal_sim("rvp-sim", &e, &[]),
    }
}
