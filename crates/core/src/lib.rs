//! Experiment facade for the ISCA 1999 *Storageless Value Prediction
//! Using Prior Register Values* reproduction.
//!
//! This crate wires the substrates together the way the paper's
//! methodology does (Sections 5–6):
//!
//! 1. build a workload's **train** program and profile its register-value
//!    reuse ([`rvp_profile`]);
//! 2. derive the compiler product the scheme under test assumes — static
//!    `rvp_` marking, an idealized reallocation plan, or a *real*
//!    register reallocation ([`rvp_realloc`]);
//! 3. simulate the **ref** program on the out-of-order machine
//!    ([`rvp_uarch`]) under the chosen prediction scheme and recovery
//!    model.
//!
//! The paper's figure legends are entries in the string-keyed scheme
//! registry ([`list_schemes`]); a [`SchemeSpec`] names one — optionally
//! with predictor parameters (`"drvp_all:entries=4096"`) — and
//! [`Runner`] executes a (workload, scheme) cell of any figure.
//!
//! # Examples
//!
//! ```no_run
//! use rvp_core::{Runner, SchemeSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let runner = Runner::default();
//! let wl = rvp_workloads::by_name("li").expect("exists");
//! let base = runner.run(&wl, &SchemeSpec::parse("no_predict")?)?;
//! let drvp = runner.run(&wl, &SchemeSpec::parse("drvp_all_dead_lv")?)?;
//! println!("speedup: {:.3}", drvp.stats.speedup_over(&base.stats));
//! # Ok(())
//! # }
//! ```

mod fatal;
mod journal;
mod runner;
mod sampling;
mod schemes;

pub use fatal::{
    fatal, fatal_sim, sim_error_kind, sim_exit_code, EXIT_CANCELLED, EXIT_CONFIG, EXIT_DEADLOCK,
    EXIT_EMU, EXIT_IO, EXIT_POISONED, EXIT_STRUCTURE, EXIT_USAGE,
};
pub use journal::{journal_line, parse_journal_line, write_atomic};
pub use runner::{
    grid_config_fnv, ProfileCache, RunResult, Runner, SharedTraceCache, SourceCounters, SourceMode,
    SourceTally,
};
pub use sampling::SamplingCaches;
pub use schemes::{
    list_schemes, paper_schemes, parse_recovery, recovery_name, scheme_names, PlanSource,
    SchemeInfo, SchemeSpec,
};

pub use rvp_bpred::{
    branch_predictor_names, list_branch_predictors, new_branch_predictor, BpredConfig,
    BranchPredictor, BranchUnit,
};
pub use rvp_emu::{Committed, EmuError, Emulator};
pub use rvp_isa::{parse_asm, AsmError, Program, ProgramBuilder, Reg};
pub use rvp_json::{Json, ToJson};
pub use rvp_mem::{Hierarchy, MemConfig};
pub use rvp_obs::{
    log, span, CancelReason, CancelToken, Clock, CpiBucket, CpiStack, Metric, MetricsRegistry,
    ObsConfig, ObsReport, PcEntry, WindowSample,
};
pub use rvp_profile::{Assist, Fig1Row, PlanScope, Profile, ProfileConfig, ReuseLists, SrvpLevel};
pub use rvp_realloc::{reallocate, ReallocOptions, ReallocOutcome};
pub use rvp_sample::{
    combine_weighted, BbvConfig, BbvProfile, BbvProfiler, RepInterval, SamplePlan, SampleSpec,
    SampleWindow,
};
pub use rvp_trace::{
    capture, fnv1a, program_hash, StoreCounters, TraceError, TraceInput, TraceMeta, TraceReader,
    TraceStore, TraceWriter,
};
pub use rvp_uarch::{
    CommittedSource, EmuSource, Latencies, PlanMode, Recovery, ReplaySource, Scheme, SharedSource,
    SimError, SimStats, Simulator, SourceKind, UarchConfig,
};
pub use rvp_vpred::{
    list_value_predictors, new_value_predictor, value_predictor_names, BufferConfig,
    BufferPredictor, ConfidenceCounter, ConfidenceTable, ContextConfig, ContextPredictor,
    CorrelationConfig, CorrelationPredictor, CounterPolicy, DrvpConfig, DrvpPredictor,
    GabbayPredictor, LastValuePredictor, LvpConfig, PredictionPlan, ReuseKind, Scope, StrideConfig,
    StridePredictor, TableConfig, ValuePredictor,
};
pub use rvp_workloads::{
    all as all_workloads, by_name, by_name_or_err, unknown_workload_error, Input, Lang, Workload,
};
