use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rvp_emu::Committed;
use rvp_isa::Program;
use rvp_json::{Json, ToJson};
use rvp_obs::log;
use rvp_profile::{Fig1Row, PlanScope, Profile, ProfileConfig};
use rvp_realloc::{reallocate, ReallocOptions};
use rvp_sample::{combine_weighted, SamplePlan, SampleSpec};
use rvp_trace::{TraceInput, TraceMeta, TraceStore};
use rvp_uarch::TraceColumns;
use rvp_uarch::{
    CommittedSource, ObsConfig, PlanMode, Recovery, ReplaySource, Scheme, SharedSource, SimError,
    SimStats, Simulator, UarchConfig,
};
use rvp_workloads::{Input, Workload};

use crate::sampling::{build_plan, extract_plan_windows, sample_key, SamplingCaches};
use crate::schemes::{PlanSource, SchemeSpec};

/// Result of one (workload, scheme) simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Label of the scheme simulated ([`SchemeSpec::label`]).
    pub scheme: String,
    /// Timing and prediction statistics.
    pub stats: SimStats,
    /// The sampling plan behind the stats, when the cell was measured
    /// by sampled simulation ([`Runner::sampling`]); `None` for a full
    /// detailed run.
    pub sampling: Option<Arc<SamplePlan>>,
}

impl ToJson for RunResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload", self.workload.into()),
            ("scheme", self.scheme.as_str().into()),
            ("stats", self.stats.to_json()),
        ];
        if let Some(plan) = &self.sampling {
            fields.push(("sampling", plan.to_json()));
        }
        Json::obj(fields)
    }
}

/// Cache key for a collected profile: (workload, input, instruction
/// budget, workload scale). The program itself is a pure function of
/// (workload, input, scale), so it needs no separate key component.
type ProfileKey = (&'static str, Input, u64, u64);

/// A thread-safe memo of collected [`Profile`]s, shared by clones of a
/// [`Runner`].
///
/// `Runner::run` needs the train profile for most schemes, and a figure
/// column runs every scheme over the same workload — without the cache
/// the (expensive) profile is recollected per scheme. Entries are locked
/// individually, so two grid threads asking for the *same* profile
/// compute it once while profiles of different workloads proceed in
/// parallel.
#[derive(Clone, Default)]
pub struct ProfileCache {
    slots: Arc<Mutex<HashMap<ProfileKey, ProfileSlot>>>,
}

/// One cache entry, locked independently of the map.
type ProfileSlot = Arc<Mutex<Option<Arc<Profile>>>>;

impl ProfileCache {
    /// Returns the cached profile for `key`, collecting it with
    /// `collect` on first use. Failures are returned and not cached.
    fn get_or_collect(
        &self,
        key: ProfileKey,
        collect: impl FnOnce() -> Result<Profile, SimError>,
    ) -> Result<Arc<Profile>, SimError> {
        let slot = {
            let mut slots = self.slots.lock().expect("profile cache poisoned");
            slots.entry(key).or_default().clone()
        };
        let mut entry = slot.lock().expect("profile slot poisoned");
        if let Some(profile) = entry.as_ref() {
            return Ok(Arc::clone(profile));
        }
        let profile = Arc::new(collect()?);
        *entry = Some(Arc::clone(&profile));
        Ok(profile)
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("profile cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ProfileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProfileCache({} entries)", self.len())
    }
}

/// Where a measurement run's committed-instruction stream comes from.
///
/// Value misprediction never changes architectural state, so every
/// scheme × recovery cell of a workload consumes the *same* committed
/// stream; all three modes produce bit-identical [`SimStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceMode {
    /// Re-emulate the workload inside every cell (the pre-refactor
    /// behaviour, and the fallback whenever no trace can serve).
    Live,
    /// Stream each cell from the on-disk trace cache ([`TraceStore`]),
    /// degrading to live emulation mid-run on corruption.
    Replay,
    /// Decode the committed trace once per workload into an
    /// columnar [`TraceColumns`] shared by every cell — the default: a grid
    /// pays for functional emulation once per workload, not per cell.
    #[default]
    Shared,
}

impl SourceMode {
    /// Stable lowercase name (CLI flag values and summary JSON).
    pub fn name(self) -> &'static str {
        match self {
            SourceMode::Live => "live",
            SourceMode::Replay => "replay",
            SourceMode::Shared => "shared",
        }
    }

    /// Parses a [`SourceMode::name`] back; `None` for anything else.
    pub fn parse(s: &str) -> Option<SourceMode> {
        match s {
            "live" => Some(SourceMode::Live),
            "replay" => Some(SourceMode::Replay),
            "shared" => Some(SourceMode::Shared),
            _ => None,
        }
    }
}

/// Cache key for a shared decoded trace: (workload, input, budget,
/// scale) — the same key shape as [`ProfileKey`], and for the same
/// reason.
type TraceKey = (&'static str, Input, u64, u64);

/// One shared-trace entry, locked independently of the map.
type TraceSlot = Arc<Mutex<Option<Arc<TraceColumns>>>>;

/// A thread-safe memo of decoded in-memory traces, shared by clones of
/// a [`Runner`] exactly like [`ProfileCache`]: entries are locked
/// individually, so grid threads racing on the *same* workload decode
/// it once while different workloads decode in parallel.
///
/// With a byte budget set ([`SharedTraceCache::set_budget_bytes`],
/// accounted via [`TraceColumns::approx_bytes`]), the least-recently
/// used traces are dropped after each materialization until the cache
/// fits — threads still holding an evicted trace keep their `Arc` (the
/// memory frees when the last one drops); the next request for that
/// key simply re-materializes.
#[derive(Clone, Default)]
pub struct SharedTraceCache {
    slots: Arc<Mutex<HashMap<TraceKey, (TraceSlot, u64)>>>,
    tick: Arc<AtomicU64>,
    budget_bytes: Arc<AtomicU64>,
    evicted: Arc<AtomicU64>,
}

impl SharedTraceCache {
    /// Returns the cached trace for `key`, materializing it with
    /// `capture` on first use; the flag reports whether this call did
    /// the capture. Failures are returned and not cached.
    fn get_or_capture(
        &self,
        key: TraceKey,
        capture: impl FnOnce() -> Result<Arc<TraceColumns>, SimError>,
    ) -> Result<(Arc<TraceColumns>, bool), SimError> {
        let slot = {
            let mut slots = self.slots.lock().expect("trace cache poisoned");
            let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            let entry = slots.entry(key).or_default();
            entry.1 = tick;
            entry.0.clone()
        };
        let mut entry = slot.lock().expect("trace slot poisoned");
        if let Some(trace) = entry.as_ref() {
            return Ok((Arc::clone(trace), false));
        }
        let trace = capture()?;
        *entry = Some(Arc::clone(&trace));
        drop(entry);
        self.evict_to_budget(&key);
        Ok((trace, true))
    }

    /// Sets the resident-byte budget (`0` = ungoverned). Shared across
    /// clones, so one call governs every runner of a grid or daemon.
    pub fn set_budget_bytes(&self, bytes: u64) {
        self.budget_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Traces dropped by the budget governor so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Drops least-recently-used traces until resident bytes fit the
    /// budget, never dropping `keep` (just materialized). Slots being
    /// filled right now hold their own lock — `try_lock` skips them,
    /// which is correct: an in-progress fill is by definition in use.
    fn evict_to_budget(&self, keep: &TraceKey) {
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let slots = self.slots.lock().expect("trace cache poisoned");
        let mut resident: Vec<(u64, TraceKey, u64)> = Vec::new();
        for (key, (slot, last_use)) in slots.iter() {
            if let Ok(guard) = slot.try_lock() {
                if let Some(trace) = guard.as_ref() {
                    resident.push((*last_use, *key, trace.approx_bytes()));
                }
            }
        }
        let mut total: u64 = resident.iter().map(|(_, _, bytes)| bytes).sum();
        if total <= budget {
            return;
        }
        resident.sort_by_key(|(last_use, _, _)| *last_use);
        let mut dropped = 0u64;
        for (_, key, bytes) in resident {
            if total <= budget {
                break;
            }
            if key == *keep {
                continue;
            }
            if let Some((slot, _)) = slots.get(&key) {
                if let Ok(mut guard) = slot.try_lock() {
                    *guard = None;
                    total -= bytes;
                    dropped += 1;
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if dropped > 0 && rvp_obs::span::armed() {
            rvp_obs::span::record(
                "cache.evict",
                rvp_obs::span::current(),
                rvp_obs::span::now_us(),
                rvp_obs::span::now_us(),
                vec![("cache".into(), "shared.traces".into()), ("evicted".into(), dropped.into())],
            );
        }
    }

    /// Number of materialized traces.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("trace cache poisoned")
            .values()
            .filter(|(slot, _)| slot.try_lock().map(|g| g.is_some()).unwrap_or(true))
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for SharedTraceCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedTraceCache({} entries)", self.len())
    }
}

/// Per-workload tally of how measurement runs were fed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceTally {
    /// Traces materialized (decoded into memory, or captured to disk
    /// on behalf of replay runs) for this workload.
    pub captures: u64,
    /// Measurement runs served from a captured trace (shared memory or
    /// clean disk replay).
    pub shared_hits: u64,
    /// Measurement runs that fell back to live emulation despite a
    /// trace-backed mode: register-reallocated programs (no trace
    /// describes the transformed stream), missing stores, or mid-run
    /// trace corruption.
    pub live_fallbacks: u64,
}

impl ToJson for SourceTally {
    fn to_json(&self) -> Json {
        Json::obj([
            ("captures", self.captures.into()),
            ("shared_hits", self.shared_hits.into()),
            ("live_fallbacks", self.live_fallbacks.into()),
        ])
    }
}

/// Thread-safe per-workload [`SourceTally`] counters, shared by clones
/// of a [`Runner`] (and so across grid threads).
#[derive(Clone, Default)]
pub struct SourceCounters {
    tallies: Arc<Mutex<HashMap<&'static str, SourceTally>>>,
}

impl SourceCounters {
    fn bump(&self, workload: &'static str, f: impl FnOnce(&mut SourceTally)) {
        let mut tallies = self.tallies.lock().expect("source counters poisoned");
        f(tallies.entry(workload).or_default());
    }

    /// All tallies, sorted by workload name.
    pub fn snapshot(&self) -> Vec<(&'static str, SourceTally)> {
        let tallies = self.tallies.lock().expect("source counters poisoned");
        let mut out: Vec<_> = tallies.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// The tallies as unified-registry samples (`rvp_source_*_total`,
    /// one labelled sample per workload).
    pub fn metrics(&self) -> Vec<rvp_obs::Metric> {
        let mut out = Vec::new();
        for (workload, tally) in self.snapshot() {
            out.push(
                rvp_obs::Metric::counter("rvp_source_captures_total", tally.captures)
                    .with_label("workload", workload),
            );
            out.push(
                rvp_obs::Metric::counter("rvp_source_shared_hits_total", tally.shared_hits)
                    .with_label("workload", workload),
            );
            out.push(
                rvp_obs::Metric::counter("rvp_source_live_fallbacks_total", tally.live_fallbacks)
                    .with_label("workload", workload),
            );
        }
        out
    }

    /// Sum over all workloads.
    pub fn total(&self) -> SourceTally {
        self.snapshot().into_iter().fold(SourceTally::default(), |mut acc, (_, t)| {
            acc.captures += t.captures;
            acc.shared_hits += t.shared_hits;
            acc.live_fallbacks += t.live_fallbacks;
            acc
        })
    }
}

impl fmt::Debug for SourceCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        write!(
            f,
            "SourceCounters(captures {}, shared_hits {}, live_fallbacks {})",
            t.captures, t.shared_hits, t.live_fallbacks
        )
    }
}

/// Executes paper experiments: profile on train, measure on ref.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Machine configuration (Table 1 by default).
    pub config: UarchConfig,
    /// Value-misprediction recovery model (the paper uses selective
    /// reissue everywhere except Figure 4).
    pub recovery: Recovery,
    /// Profile threshold for candidate selection (0.80; Figure 4 uses
    /// 0.90).
    pub threshold: f64,
    /// Committed-instruction budget for profiling runs.
    pub profile_insts: u64,
    /// Committed-instruction budget for measurement runs.
    pub measure_insts: u64,
    /// When set, measurement runs are *sampled*: the committed stream
    /// is BBV-profiled and clustered into phases, one representative
    /// interval per phase is simulated in detail after functional
    /// warmup, and whole-run stats are reconstructed by weight. `None`
    /// (the default) measures every committed instruction in detail.
    pub sampling: Option<SampleSpec>,
    /// Multiplier on every workload's outer pass counts
    /// ([`Workload::program_scaled`]); 1 (the default) is the seed-era
    /// program. A few hundred reaches the paper's 100M+ committed
    /// instructions — pair with [`Runner::sampling`] to keep such runs
    /// tractable.
    pub workload_scale: u64,
    /// Memos of sampling plans and extracted windows, shared across
    /// clones (and therefore across the threads of a parallel grid).
    pub samples: SamplingCaches,
    /// Memo of collected profiles, shared across clones (and therefore
    /// across the threads of a parallel grid).
    pub profiles: ProfileCache,
    /// On-disk committed-trace cache; when present, profiles are
    /// collected by replaying traces instead of re-running the emulator.
    /// Defaults to the `RVP_TRACE_DIR` environment variable.
    pub traces: Option<TraceStore>,
    /// Where measurement runs get their committed stream (shared
    /// in-memory traces by default).
    pub source_mode: SourceMode,
    /// Memo of decoded in-memory traces, shared across clones (and
    /// therefore across the threads of a parallel grid).
    pub shared_traces: SharedTraceCache,
    /// Per-workload capture / shared-hit / live-fallback telemetry,
    /// shared across clones.
    pub source_counters: SourceCounters,
    /// Optional instrumentation for measurement runs (time-series
    /// sampling and per-PC telemetry). Off by default; the CPI stack is
    /// always collected.
    pub obs: ObsConfig,
    /// Cooperative cancellation handle. When set, measurement cycle
    /// loops and the sampling passes poll it on an amortized schedule
    /// and fail fast with [`SimError::Cancelled`]; `None` (the default)
    /// costs nothing.
    pub cancel: Option<rvp_obs::CancelToken>,
}

impl Default for Runner {
    fn default() -> Runner {
        let shared_traces = SharedTraceCache::default();
        // Resource governance knob: cap the resident bytes of decoded
        // shared traces (`RVP_SHARED_TRACE_BUDGET_MB`); unset or 0
        // leaves the cache ungoverned, the seed-era behavior.
        if let Some(mb) = std::env::var("RVP_SHARED_TRACE_BUDGET_MB")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|mb| *mb > 0)
        {
            shared_traces.set_budget_bytes(mb * 1024 * 1024);
        }
        Runner {
            config: UarchConfig::table1(),
            recovery: Recovery::Selective,
            threshold: 0.8,
            profile_insts: 1_500_000,
            measure_insts: 400_000,
            sampling: None,
            workload_scale: 1,
            samples: SamplingCaches::default(),
            profiles: ProfileCache::default(),
            traces: TraceStore::from_env(),
            source_mode: SourceMode::default(),
            shared_traces,
            source_counters: SourceCounters::default(),
            obs: ObsConfig::off(),
            cancel: None,
        }
    }
}

impl Runner {
    /// A runner for the 16-wide machine of Figure 8.
    pub fn wide16() -> Runner {
        Runner { config: UarchConfig::wide16(), ..Runner::default() }
    }

    /// The workload's program at this runner's [`Runner::workload_scale`].
    pub fn program_for(&self, wl: &Workload, input: Input) -> Program {
        wl.program_scaled(input, self.workload_scale)
    }

    /// Fails fast with [`SimError::Cancelled`] if this runner's token
    /// has fired — called between the coarse stages of a cell (profile,
    /// plan, window, measure) so cancellation lands promptly even when
    /// the current stage is not a polled cycle loop.
    fn check_cancel(&self) -> Result<(), SimError> {
        if let Some(token) = &self.cancel {
            if let Some(reason) = token.poll() {
                return Err(SimError::Cancelled { cycle: 0, committed: 0, reason });
            }
        }
        Ok(())
    }

    /// The train-input profile used by every profile-guided scheme,
    /// memoized in [`Runner::profiles`] (and served from the trace cache
    /// when one is configured).
    ///
    /// # Errors
    ///
    /// Propagates emulator errors from a live profiling run.
    pub fn train_profile(&self, wl: &Workload) -> Result<Arc<Profile>, SimError> {
        self.train_profile_for(wl, &self.program_for(wl, Input::Train))
    }

    fn train_profile_for(&self, wl: &Workload, train: &Program) -> Result<Arc<Profile>, SimError> {
        let key = (wl.name(), Input::Train, self.profile_insts, self.workload_scale);
        self.profiles.get_or_collect(key, || {
            self.collect_profile(wl.name(), Input::Train, train, self.profile_insts)
        })
    }

    /// Collects a profile, replaying a cached trace when a [`TraceStore`]
    /// is configured. Any trouble with the trace path — capture failure,
    /// corruption discovered mid-replay — falls back to live emulation;
    /// the trace subsystem can slow an experiment down but never fail it.
    fn collect_profile(
        &self,
        name: &'static str,
        input: Input,
        program: &Program,
        budget: u64,
    ) -> Result<Profile, SimError> {
        let _span = rvp_obs::span!("runner.profile", { workload: name, budget });
        let cfg = ProfileConfig { max_insts: budget, min_execs: 32 };
        if let Some(store) = &self.traces {
            let meta = TraceMeta::for_program(name, trace_input(input), budget, program);
            match store
                .open_or_capture(program, &meta)
                .and_then(|reader| Profile::collect_stream(program, &cfg, reader))
            {
                Ok(profile) => return Ok(profile),
                Err(e) => {
                    log::warn(
                        "rvp_core::runner",
                        "trace replay failed; falling back to live emulation",
                        &[("workload", name.into()), ("error", e.to_string().into())],
                    );
                }
            }
        }
        Profile::collect(program, &cfg).map_err(SimError::Emu)
    }

    /// Runs one (workload, scheme) cell.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; these indicate workload or model
    /// bugs, not expected outcomes.
    pub fn run(&self, wl: &Workload, scheme: &SchemeSpec) -> Result<RunResult, SimError> {
        self.check_cancel()?;
        let info = scheme.info();
        let mut program = self.program_for(wl, Input::Ref);
        let train = self.program_for(wl, Input::Train);
        if program.len() != train.len() {
            return Err(SimError::StructureMismatch {
                train_len: train.len(),
                ref_len: program.len(),
            });
        }

        let profile =
            if scheme.needs_profile() { Some(self.train_profile_for(wl, &train)?) } else { None };

        let mut sim_scheme = match scheme.build_predictor() {
            Some(p) => Scheme::new(scheme.label().to_owned(), info.scope, p),
            None => Scheme::no_predict(),
        };
        match info.plan {
            PlanSource::NoPlan => {}
            PlanSource::Static(level) => {
                let profile = profile.as_ref().expect("profiled");
                let plan = profile.static_plan(&train, self.threshold, level);
                // Mark the loads in the program text (`rvp_` opcodes).
                program = program.map_insts(|pc, inst| {
                    if plan.contains(pc) {
                        inst.clone().with_rvp()
                    } else {
                        inst.clone()
                    }
                });
                sim_scheme = sim_scheme.with_plan(plan, PlanMode::Exhaustive);
            }
            PlanSource::Assist(assist) => {
                let profile = profile.as_ref().expect("profiled");
                let plan = profile.assist_plan(&train, self.threshold, info.scope, assist);
                sim_scheme = sim_scheme.with_plan(plan, PlanMode::Overlay);
            }
            PlanSource::Realloc => {
                // Actually transform the program; the hardware then runs
                // the plain predictor with no oracle plan.
                let profile = profile.as_ref().expect("profiled");
                let opts = ReallocOptions {
                    threshold: self.threshold,
                    scope: PlanScope::AllInsts,
                    use_dead: true,
                    use_lv: true,
                };
                program = reallocate(&program, profile, &opts).program;
            }
        }

        let reallocated = info.plan == PlanSource::Realloc;
        let (stats, sampling) = match self.sampling {
            Some(spec) => {
                let (stats, plan) = self.measure_sampled(wl, &program, sim_scheme, &spec)?;
                (stats, Some(plan))
            }
            None => (self.measure(wl, &program, sim_scheme, reallocated)?, None),
        };
        Ok(RunResult { workload: wl.name(), scheme: scheme.label().to_owned(), stats, sampling })
    }

    /// Runs one timing simulation, feeding the committed stream per
    /// [`Runner::source_mode`]. A register-reallocated program always
    /// runs live — the transformation changes the instruction stream
    /// itself, so no captured trace describes it. (Profile-marked
    /// `rvp_` opcodes are fine: marking does not change semantics, so
    /// the unmarked base trace still matches.)
    fn measure(
        &self,
        wl: &Workload,
        program: &Program,
        sim_scheme: Scheme,
        reallocated: bool,
    ) -> Result<SimStats, SimError> {
        let name = wl.name();
        let mut sim = Simulator::new(self.config.clone(), sim_scheme, self.recovery)
            .with_obs(self.obs.clone());
        if let Some(token) = &self.cancel {
            sim = sim.with_cancel(token.clone());
        }
        let mode = if reallocated { SourceMode::Live } else { self.source_mode };
        let _span = rvp_obs::span!("runner.measure", { workload: name, source: mode.name() });

        match mode {
            SourceMode::Live => {
                if self.source_mode != SourceMode::Live {
                    self.source_counters.bump(name, |t| t.live_fallbacks += 1);
                }
                sim.run(program, self.measure_insts)
            }
            SourceMode::Shared => {
                let trace = self.shared_ref_trace(wl)?;
                self.source_counters.bump(name, |t| t.shared_hits += 1);
                let mut source = SharedSource::new(trace);
                sim.run_with_source(program, &mut source, self.measure_insts)
            }
            SourceMode::Replay => {
                let reader = self.traces.as_ref().and_then(|store| {
                    let base = self.program_for(wl, Input::Ref);
                    let meta =
                        TraceMeta::for_program(name, TraceInput::Ref, self.measure_insts, &base);
                    match store.open(&meta) {
                        Ok(reader) => Some(reader),
                        Err(_) => match store.capture(&base, &meta).and_then(|_| store.open(&meta))
                        {
                            Ok(reader) => {
                                self.source_counters.bump(name, |t| t.captures += 1);
                                Some(reader)
                            }
                            Err(e) => {
                                log::warn(
                                    "rvp_core::runner",
                                    "trace unavailable for replay; running live",
                                    &[("workload", name.into()), ("error", e.to_string().into())],
                                );
                                None
                            }
                        },
                    }
                });
                let Some(reader) = reader else {
                    self.source_counters.bump(name, |t| t.live_fallbacks += 1);
                    return sim.run(program, self.measure_insts);
                };
                let mut source = ReplaySource::new(program, reader);
                let stats = sim.run_with_source(program, &mut source, self.measure_insts)?;
                if source.degraded() {
                    self.source_counters.bump(name, |t| t.live_fallbacks += 1);
                } else {
                    self.source_counters.bump(name, |t| t.shared_hits += 1);
                }
                Ok(stats)
            }
        }
    }

    /// Runs one *sampled* timing simulation: plan (cached in memory and
    /// content-addressed on disk next to the trace store), extract the
    /// representative windows (cached in memory across the workload's
    /// scheme cells), then per window run functional warmup followed by
    /// a detailed simulation of just that interval, and reconstruct
    /// whole-run stats by cluster weight.
    ///
    /// Register-reallocated programs need no special casing here: both
    /// streaming passes emulate `program` itself, and the plan key
    /// hashes the program text, so a transformed program gets its own
    /// plan and windows.
    fn measure_sampled(
        &self,
        wl: &Workload,
        program: &Program,
        sim_scheme: Scheme,
        spec: &SampleSpec,
    ) -> Result<(SimStats, Arc<SamplePlan>), SimError> {
        let name = wl.name();
        let (interval, warmup) = spec.resolve(self.measure_insts);
        let key = sample_key(
            name,
            self.measure_insts,
            rvp_trace::program_hash(program),
            interval,
            warmup,
            spec,
        );
        let _span = rvp_obs::span!("runner.measure", { workload: name, source: "sampled" });

        let plan_dir = self.traces.as_ref().map(|s| s.dir().join("plans"));
        let plan = self.samples.plan(key, plan_dir.as_deref(), || {
            build_plan(name, program, self.measure_insts, interval, warmup, spec, self.cancel.as_ref())
        })?;
        let windows = self
            .samples
            .windows(key, || extract_plan_windows(&plan, program, self.cancel.as_ref()))?;

        let mut parts = Vec::with_capacity(windows.len());
        for w in windows.iter() {
            self.check_cancel()?;
            let _span = rvp_obs::span!("sample.interval", {
                workload: name,
                index: w.index as u64,
                start: w.start,
                insts: w.detail.len() as u64
            });
            let mut sim = Simulator::new(self.config.clone(), sim_scheme.clone(), self.recovery);
            if let Some(token) = &self.cancel {
                sim = sim.with_cancel(token.clone());
            }
            let warm = sim.functional_warmup(program, &w.warmup);
            let mut source = SharedSource::new(Arc::clone(&w.detail));
            let stats =
                sim.run_warmed_with_source(program, &mut source, w.detail.len() as u64, &warm)?;
            parts.push((w.weight, stats));
        }
        Ok((combine_weighted(plan.total_insts, &parts), plan))
    }

    /// The shared decoded ref trace for `wl`, materialized on first use
    /// (per (workload, input, budget) key): decoded from the on-disk
    /// store when one is configured — a decode failure falls back to
    /// direct in-memory capture — else captured straight from the
    /// emulator.
    fn shared_ref_trace(&self, wl: &Workload) -> Result<Arc<TraceColumns>, SimError> {
        let name = wl.name();
        let key = (name, Input::Ref, self.measure_insts, self.workload_scale);
        let (trace, captured) = self.shared_traces.get_or_capture(key, || {
            let _span = rvp_obs::span!("runner.trace.load", { workload: name });
            let base = self.program_for(wl, Input::Ref);
            if let Some(store) = &self.traces {
                let meta = TraceMeta::for_program(name, TraceInput::Ref, self.measure_insts, &base);
                match store
                    .open_or_capture(&base, &meta)
                    .and_then(|reader| reader.collect::<Result<Vec<Committed>, _>>())
                {
                    Ok(records) => return Ok(Arc::new(TraceColumns::from_records(&records))),
                    Err(e) => log::warn(
                        "rvp_core::runner",
                        "trace decode failed; capturing shared trace live",
                        &[("workload", name.into()), ("error", e.to_string().into())],
                    ),
                }
            }
            SharedSource::capture(&base, self.measure_insts)
        })?;
        if captured {
            self.source_counters.bump(name, |t| t.captures += 1);
        }
        Ok(trace)
    }

    /// Materializes the committed trace serving `wl`'s measurement runs
    /// ahead of time, so a grid can pay all captures up front before
    /// fanning cells out to threads. A no-op in [`SourceMode::Live`].
    ///
    /// # Errors
    ///
    /// Propagates emulator errors from a live capture. (A replay-mode
    /// store failure is *not* an error: measurement will fall back to
    /// live emulation.)
    pub fn prewarm_trace(&self, wl: &Workload) -> Result<(), SimError> {
        match self.source_mode {
            SourceMode::Live => Ok(()),
            SourceMode::Shared => self.shared_ref_trace(wl).map(drop),
            SourceMode::Replay => {
                if let Some(store) = &self.traces {
                    let base = self.program_for(wl, Input::Ref);
                    let meta = TraceMeta::for_program(
                        wl.name(),
                        TraceInput::Ref,
                        self.measure_insts,
                        &base,
                    );
                    if store.open(&meta).is_err() {
                        match store.capture(&base, &meta) {
                            Ok(_) => {
                                self.source_counters.bump(wl.name(), |t| t.captures += 1);
                            }
                            Err(e) => log::warn(
                                "rvp_core::runner",
                                "trace prewarm failed; replay will run live",
                                &[("workload", wl.name().into()), ("error", e.to_string().into())],
                            ),
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Figure 1 measurement: register-value reuse of loads on the ref
    /// input.
    ///
    /// # Errors
    ///
    /// Propagates emulator errors.
    pub fn fig1(&self, wl: &Workload) -> Result<Fig1Row, SimError> {
        let program = self.program_for(wl, Input::Ref);
        let key = (wl.name(), Input::Ref, self.measure_insts, self.workload_scale);
        let profile = self.profiles.get_or_collect(key, || {
            self.collect_profile(wl.name(), Input::Ref, &program, self.measure_insts)
        })?;
        Ok(profile.fig1())
    }
}

/// A fingerprint of everything that makes two runs of a (workload ×
/// scheme) grid comparable: the workloads, the schemes, the
/// committed-stream source, the instruction budgets, the profile
/// threshold and the recovery model. The grid manifest journals it in
/// its header (a manifest written under a different configuration must
/// not be resumed from), and the serve daemon keys its
/// content-addressed result cache with the single-cell case.
pub fn grid_config_fnv(workloads: &[Workload], schemes: &[SchemeSpec], runner: &Runner) -> u64 {
    let mut key = String::new();
    for wl in workloads {
        key.push_str(wl.name());
        key.push(',');
    }
    key.push('|');
    for s in schemes {
        key.push_str(s.label());
        key.push(',');
    }
    key.push_str(&format!(
        "|{}|{}|{}|{:.6}|{:?}",
        runner.source_mode.name(),
        runner.measure_insts,
        runner.profile_insts,
        runner.threshold,
        runner.recovery,
    ));
    // Sampled and scaled configurations extend the key *only when
    // active*, so every pre-sampling fingerprint — and the manifests
    // and cached results journalled under them — stays valid.
    if let Some(spec) = &runner.sampling {
        key.push('|');
        key.push_str(&spec.fingerprint_component());
    }
    if runner.workload_scale > 1 {
        key.push_str(&format!("|scale={}", runner.workload_scale));
    }
    rvp_trace::fnv1a(key.as_bytes())
}

fn trace_input(input: Input) -> TraceInput {
    match input {
        Input::Train => TraceInput::Train,
        Input::Ref => TraceInput::Ref,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_workloads::by_name;

    fn quick_runner() -> Runner {
        Runner { profile_insts: 250_000, measure_insts: 120_000, ..Runner::default() }
    }

    fn spec(label: &str) -> SchemeSpec {
        SchemeSpec::parse(label).unwrap()
    }

    #[test]
    fn m88ksim_has_much_more_reuse_than_go() {
        let r = quick_runner();
        let m88k = r.run(&by_name("m88ksim").unwrap(), &spec("drvp_all")).unwrap();
        let go = r.run(&by_name("go").unwrap(), &spec("drvp_all")).unwrap();
        assert!(
            m88k.stats.coverage() > 2.0 * go.stats.coverage(),
            "m88k {:.3} vs go {:.3}",
            m88k.stats.coverage(),
            go.stats.coverage()
        );
    }

    #[test]
    fn drvp_accuracy_is_high() {
        let r = quick_runner();
        for name in ["m88ksim", "hydro2d"] {
            let res = r.run(&by_name(name).unwrap(), &spec("drvp_all")).unwrap();
            assert!(res.stats.accuracy() > 0.9, "{name}: accuracy {:.3}", res.stats.accuracy());
        }
    }

    #[test]
    fn dead_lv_assistance_increases_coverage() {
        let r = quick_runner();
        let wl = by_name("hydro2d").unwrap();
        let plain = r.run(&wl, &spec("drvp_all")).unwrap();
        let assisted = r.run(&wl, &spec("drvp_all_dead_lv")).unwrap();
        assert!(
            assisted.stats.coverage() >= plain.stats.coverage(),
            "assisted {:.3} < plain {:.3}",
            assisted.stats.coverage(),
            plain.stats.coverage()
        );
    }

    #[test]
    fn gabbay_has_lower_coverage_than_drvp() {
        // The paper's key comparison: register-indexed counters suffer
        // destructive interference that PC-indexed counters avoid.
        let r = quick_runner();
        let wl = by_name("m88ksim").unwrap();
        let drvp = r.run(&wl, &spec("drvp_all")).unwrap();
        let grp = r.run(&wl, &spec("Grp_all")).unwrap();
        assert!(
            grp.stats.coverage() < drvp.stats.coverage(),
            "Grp {:.3} !< dRVP {:.3}",
            grp.stats.coverage(),
            drvp.stats.coverage()
        );
    }

    #[test]
    fn prediction_never_changes_committed_count() {
        let r = quick_runner();
        let wl = by_name("ijpeg").unwrap();
        let base = r.run(&wl, &spec("no_predict")).unwrap();
        for scheme in [&spec("lvp"), &spec("drvp_all"), &spec("srvp_dead")] {
            let res = r.run(&wl, scheme).unwrap();
            assert_eq!(res.stats.committed, base.stats.committed, "{scheme:?}");
        }
    }

    #[test]
    fn fig1_fractions_are_monotone() {
        let r = quick_runner();
        for name in ["li", "mgrid"] {
            let row = r.fig1(&by_name(name).unwrap()).unwrap();
            let [same, dead, any, lvp] = row.fractions();
            assert!(same <= dead + 1e-12, "{name}");
            assert!(dead <= any + 1e-12, "{name}");
            assert!(any <= lvp + 1e-12, "{name}");
            assert!(lvp <= 1.0);
        }
    }

    #[test]
    fn train_profiles_are_memoized_per_workload() {
        let r = quick_runner();
        let wl = by_name("li").unwrap();
        r.run(&wl, &spec("drvp_all")).unwrap();
        r.run(&wl, &spec("srvp_dead")).unwrap();
        assert_eq!(r.profiles.len(), 1, "two runs must share one train profile");
    }

    #[test]
    fn trace_replay_run_matches_live_run() {
        let dir =
            std::env::temp_dir().join(format!("rvp-runner-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        let wl = by_name("li").unwrap();
        let scheme = &spec("drvp_all_dead_lv");

        let live = Runner { traces: None, source_mode: SourceMode::Live, ..quick_runner() };
        let want = live.run(&wl, scheme).unwrap();

        // First traced runner captures train (profile) and ref
        // (measurement) traces, then replays them.
        let traced = Runner { traces: Some(store.clone()), ..quick_runner() };
        let replayed = traced.run(&wl, scheme).unwrap();
        assert_eq!(want.stats, replayed.stats);
        assert_eq!(store.counters().captures(), 2);

        // A fresh runner (empty profile and trace caches) hits the
        // on-disk traces.
        let warm = Runner { traces: Some(store.clone()), ..quick_runner() };
        let from_disk = warm.run(&wl, scheme).unwrap();
        assert_eq!(want.stats, from_disk.stats);
        assert!(store.counters().hits() >= 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_source_modes_agree_and_are_counted() {
        let dir =
            std::env::temp_dir().join(format!("rvp-runner-source-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        let wl = by_name("m88ksim").unwrap();

        let run_mode = |mode: SourceMode| {
            let r = Runner { traces: Some(store.clone()), source_mode: mode, ..quick_runner() };
            r.prewarm_trace(&wl).unwrap();
            let a = r.run(&wl, &spec("drvp_all")).unwrap();
            let b = r.run(&wl, &spec("no_predict")).unwrap();
            let fallback = r.run(&wl, &spec("drvp_all_realloc")).unwrap();
            (a.stats, b.stats, fallback.stats, r.source_counters.total())
        };

        let (la, lb, lf, lt) = run_mode(SourceMode::Live);
        let (ra, rb, rf, rt) = run_mode(SourceMode::Replay);
        let (sa, sb, sf, st) = run_mode(SourceMode::Shared);
        assert_eq!(la, ra);
        assert_eq!(la, sa);
        assert_eq!(lb, rb);
        assert_eq!(lb, sb);
        assert_eq!(lf, rf);
        assert_eq!(lf, sf);

        // Live mode counts nothing; trace-backed modes each capture one
        // trace at prewarm (replay to disk, shared into memory — served
        // from the disk file replay already wrote), serve two runs from
        // it, and fall back to live for the reallocated cell.
        assert_eq!(lt, SourceTally::default());
        assert_eq!(rt, SourceTally { captures: 1, shared_hits: 2, live_fallbacks: 1 });
        assert_eq!(st, SourceTally { captures: 1, shared_hits: 2, live_fallbacks: 1 });

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Paper-scale methodology gate: for every paper scheme, sampled
    /// measurement must land within 2% relative IPC error of the full
    /// detailed run on multiple workloads.
    #[test]
    fn sampled_ipc_tracks_full_ipc_for_all_paper_schemes() {
        let full = quick_runner();
        let sampled = Runner {
            sampling: Some(SampleSpec {
                interval_insts: 20_000,
                max_k: 4,
                ..SampleSpec::default()
            }),
            ..quick_runner()
        };
        for name in ["m88ksim", "ijpeg"] {
            let wl = by_name(name).unwrap();
            for scheme in crate::schemes::paper_schemes() {
                let want = full.run(&wl, &scheme).unwrap();
                let got = sampled.run(&wl, &scheme).unwrap();
                let plan = got.sampling.as_ref().expect("sampled cell must carry its plan");
                assert!(
                    plan.sampled_insts() < full.measure_insts,
                    "{name}/{}: plan simulates the whole run in detail",
                    scheme.label()
                );
                assert_eq!(got.stats.committed, want.stats.committed);
                let err = (got.stats.ipc() - want.stats.ipc()).abs() / want.stats.ipc();
                assert!(
                    err <= 0.02,
                    "{name}/{}: sampled IPC {:.4} vs full {:.4} ({:.2}% error)",
                    scheme.label(),
                    got.stats.ipc(),
                    want.stats.ipc(),
                    100.0 * err
                );
            }
        }
    }

    /// Sampled cells reconstruct a CPI stack that still sums to the
    /// cycle count, and the plan/window memos are shared across scheme
    /// cells of a workload.
    #[test]
    fn sampled_cells_share_one_plan_per_workload() {
        let r = Runner {
            sampling: Some(SampleSpec { interval_insts: 20_000, ..SampleSpec::default() }),
            ..quick_runner()
        };
        let wl = by_name("li").unwrap();
        let a = r.run(&wl, &spec("no_predict")).unwrap();
        let b = r.run(&wl, &spec("drvp_all")).unwrap();
        assert_eq!(a.sampling, b.sampling, "scheme cells must share the workload's plan");
        assert_eq!(r.samples.plans_len(), 1);
        assert_eq!(r.samples.windows_len(), 1);
        for res in [&a, &b] {
            let s = &res.stats;
            let stack = s.cpi.base
                + s.cpi.reissue
                + s.cpi.dcache
                + s.cpi.queue_full
                + s.cpi.value_refetch
                + s.cpi.branch_mispredict
                + s.cpi.icache
                + s.cpi.fetch_stall;
            assert_eq!(s.cycles, stack, "combined CPI stack must sum to cycles");
        }
        // The reallocated variant transforms the program, so it gets
        // its own plan under a distinct content key.
        r.run(&wl, &spec("drvp_all_realloc")).unwrap();
        assert_eq!(r.samples.plans_len(), 2);
    }

    /// The sampling plan is persisted content-addressed next to the
    /// trace store and reloaded by a fresh runner; a corrupt file is
    /// rebuilt, not trusted.
    #[test]
    fn sample_plan_is_cached_on_disk_and_reloaded() {
        let dir = std::env::temp_dir().join(format!("rvp-runner-plan-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        let wl = by_name("li").unwrap();
        let sampled = || Runner {
            traces: Some(store.clone()),
            sampling: Some(SampleSpec { interval_insts: 20_000, ..SampleSpec::default() }),
            ..quick_runner()
        };

        let first = sampled().run(&wl, &spec("no_predict")).unwrap();
        let plans: Vec<_> = std::fs::read_dir(dir.join("plans"))
            .expect("plan dir exists after a sampled run")
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(plans.len(), 1, "one content-addressed plan file");

        // A fresh runner (cold in-memory caches) must load the same
        // plan from disk.
        let reloaded = sampled().run(&wl, &spec("no_predict")).unwrap();
        assert_eq!(first.sampling, reloaded.sampling);
        assert_eq!(first.stats, reloaded.stats);

        // Corruption is detected (plans are parsed, not trusted) and
        // the plan is rebuilt to the same content.
        std::fs::write(&plans[0], b"{ not a plan").unwrap();
        let rebuilt = sampled().run(&wl, &spec("no_predict")).unwrap();
        assert_eq!(first.sampling, rebuilt.sampling);
        assert_eq!(first.stats, rebuilt.stats);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sampled and scaled grids must never share a fingerprint with
    /// detailed seed-era grids (resume and the serve result cache key
    /// on it) — while an inactive sampling/scale config leaves the
    /// seed-era fingerprint untouched.
    #[test]
    fn sampled_and_scaled_cells_fingerprint_distinctly() {
        let wls = vec![by_name("li").unwrap()];
        let schemes = vec![spec("no_predict")];
        let base = quick_runner();
        let sampled = Runner { sampling: Some(SampleSpec::default()), ..quick_runner() };
        let scaled = Runner { workload_scale: 8, ..quick_runner() };
        let both =
            Runner { sampling: Some(SampleSpec::default()), workload_scale: 8, ..quick_runner() };
        let f = |r: &Runner| grid_config_fnv(&wls, &schemes, r);
        let fps = [f(&base), f(&sampled), f(&scaled), f(&both)];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "fingerprints {i} and {j} collide");
            }
        }
        // Different sampling knobs → different fingerprints too.
        let other_spec = Runner {
            sampling: Some(SampleSpec { max_k: 3, ..SampleSpec::default() }),
            ..quick_runner()
        };
        assert_ne!(f(&sampled), f(&other_spec));
    }

    /// The columnar (SoA) trace view must be bit-identical, record for
    /// record, with the AoS `Committed` streams all three source modes
    /// are built on — the structure-of-arrays split is a layout change,
    /// never a value change.
    #[test]
    fn source_equivalence_soa_view_matches_aos_records() {
        use rvp_uarch::EmuSource;

        let dir = std::env::temp_dir().join(format!("rvp-runner-soa-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        let wl = by_name("li").unwrap();
        let budget = 50_000u64;
        let program = wl.program(Input::Ref);

        // AoS reference stream straight from the live emulator source.
        let mut live = EmuSource::new(&program);
        let mut live_records: Vec<Committed> = Vec::new();
        while (live_records.len() as u64) < budget {
            match live.next_record().unwrap() {
                Some(rec) => live_records.push(rec),
                None => break,
            }
        }

        // AoS stream decoded back from the on-disk trace container.
        let meta = TraceMeta::for_program(wl.name(), TraceInput::Ref, budget, &program);
        store.capture(&program, &meta).unwrap();
        let replay_records: Vec<Committed> =
            store.open(&meta).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(live_records, replay_records);

        // The SoA view the shared source serves: identical records, and
        // the hot PC column agrees with the assembled record at every
        // index (the fetch stage trusts `peek_pc` alone).
        let columns = SharedSource::capture(&program, budget).unwrap();
        assert_eq!(columns.len(), live_records.len());
        let soa_records: Vec<Committed> = columns.records().collect();
        assert_eq!(soa_records, live_records);

        let mut shared = SharedSource::new(columns.clone());
        for want in &live_records {
            assert_eq!(shared.peek_pc().unwrap(), Some(want.pc));
            assert_eq!(shared.next_record().unwrap().as_ref(), Some(want));
        }
        assert_eq!(shared.next_record().unwrap(), None);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
