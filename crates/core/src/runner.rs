use rvp_profile::{Assist, Fig1Row, PlanScope, Profile, ProfileConfig, SrvpLevel};
use rvp_realloc::{reallocate, ReallocOptions};
use rvp_uarch::{Recovery, Scheme, SimError, SimStats, Simulator, UarchConfig};
use rvp_vpred::{DrvpConfig, LvpConfig, PredictionPlan, Scope};
use rvp_workloads::{Input, Workload};

/// The prediction configurations named in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperScheme {
    /// `no_predict` — the baseline.
    NoPredict,
    /// `lvp` — last-value prediction of loads (Figs. 3, 5).
    Lvp,
    /// `lvp_all` — last-value prediction of all instructions (Figs. 6, 8).
    LvpAll,
    /// `srvp_same` — static RVP, natural same-register reuse only.
    SrvpSame,
    /// `srvp_dead` — plus dead-register correlation (Figs. 3, 4).
    SrvpDead,
    /// `srvp_live` — plus live-register correlation (move not charged).
    SrvpLive,
    /// `srvp_live_lv` — plus last-value registers.
    SrvpLiveLv,
    /// `drvp` — dynamic RVP of loads, no compiler support (Fig. 5).
    Drvp,
    /// `drvp_dead` — dynamic RVP of loads with dead-register
    /// reallocation assumed (Fig. 5).
    DrvpDead,
    /// `drvp_dead_lv` — plus last-value reallocation (Fig. 5).
    DrvpDeadLv,
    /// `drvp_all` — dynamic RVP of all instructions (Figs. 6, 8).
    DrvpAll,
    /// `drvp_all_dead` — with dead-register reallocation (Fig. 6).
    DrvpAllDead,
    /// `drvp_all_dead_lv` — with dead + last-value reallocation
    /// (Figs. 6, 8; the "ideal realloc" bar of Fig. 7).
    DrvpAllDeadLv,
    /// `Grp_all` — the Gabbay & Mendelson register predictor (Fig. 6).
    GrpAll,
    /// `drvp_all_dead_lv_realloc` — dynamic RVP over a program actually
    /// transformed by the register-reallocation pass (Fig. 7's
    /// "realistic" bar). No oracle plan: the hardware sees only
    /// same-register reuse, which the transformation created.
    DrvpAllRealloc,
}

impl PaperScheme {
    /// The paper's label for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            PaperScheme::NoPredict => "no_predict",
            PaperScheme::Lvp => "lvp",
            PaperScheme::LvpAll => "lvp_all",
            PaperScheme::SrvpSame => "srvp_same",
            PaperScheme::SrvpDead => "srvp_dead",
            PaperScheme::SrvpLive => "srvp_live",
            PaperScheme::SrvpLiveLv => "srvp_live_lv",
            PaperScheme::Drvp => "drvp",
            PaperScheme::DrvpDead => "drvp_dead",
            PaperScheme::DrvpDeadLv => "drvp_dead_lv",
            PaperScheme::DrvpAll => "drvp_all",
            PaperScheme::DrvpAllDead => "drvp_all_dead",
            PaperScheme::DrvpAllDeadLv => "drvp_all_dead_lv",
            PaperScheme::GrpAll => "Grp_all",
            PaperScheme::DrvpAllRealloc => "drvp_all_realloc",
        }
    }

    /// All schemes, in a stable order.
    pub fn all() -> &'static [PaperScheme] {
        &[
            PaperScheme::NoPredict,
            PaperScheme::Lvp,
            PaperScheme::LvpAll,
            PaperScheme::SrvpSame,
            PaperScheme::SrvpDead,
            PaperScheme::SrvpLive,
            PaperScheme::SrvpLiveLv,
            PaperScheme::Drvp,
            PaperScheme::DrvpDead,
            PaperScheme::DrvpDeadLv,
            PaperScheme::DrvpAll,
            PaperScheme::DrvpAllDead,
            PaperScheme::DrvpAllDeadLv,
            PaperScheme::GrpAll,
            PaperScheme::DrvpAllRealloc,
        ]
    }
}

/// Result of one (workload, scheme) simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme simulated.
    pub scheme: PaperScheme,
    /// Timing and prediction statistics.
    pub stats: SimStats,
}

/// Executes paper experiments: profile on train, measure on ref.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Machine configuration (Table 1 by default).
    pub config: UarchConfig,
    /// Value-misprediction recovery model (the paper uses selective
    /// reissue everywhere except Figure 4).
    pub recovery: Recovery,
    /// Profile threshold for candidate selection (0.80; Figure 4 uses
    /// 0.90).
    pub threshold: f64,
    /// Committed-instruction budget for profiling runs.
    pub profile_insts: u64,
    /// Committed-instruction budget for measurement runs.
    pub measure_insts: u64,
}

impl Default for Runner {
    fn default() -> Runner {
        Runner {
            config: UarchConfig::table1(),
            recovery: Recovery::Selective,
            threshold: 0.8,
            profile_insts: 1_500_000,
            measure_insts: 400_000,
        }
    }
}

impl Runner {
    /// A runner for the 16-wide machine of Figure 8.
    pub fn wide16() -> Runner {
        Runner { config: UarchConfig::wide16(), ..Runner::default() }
    }

    fn profile(&self, wl: &Workload) -> Result<Profile, SimError> {
        let train = wl.program(Input::Train);
        let cfg = ProfileConfig { max_insts: self.profile_insts, min_execs: 32 };
        Profile::collect(&train, &cfg).map_err(SimError::Emu)
    }

    /// Runs one (workload, scheme) cell.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; these indicate workload or model
    /// bugs, not expected outcomes.
    pub fn run(&self, wl: &Workload, scheme: PaperScheme) -> Result<RunResult, SimError> {
        use PaperScheme as P;
        let mut program = wl.program(Input::Ref);
        let train = wl.program(Input::Train);
        debug_assert_eq!(
            program.len(),
            train.len(),
            "train and ref must share static structure"
        );

        let needs_profile = !matches!(scheme, P::NoPredict | P::Lvp | P::LvpAll | P::GrpAll | P::Drvp | P::DrvpAll);
        let profile = if needs_profile { Some(self.profile(wl)?) } else { None };

        let sim_scheme = match scheme {
            P::NoPredict => Scheme::NoPredict,
            P::Lvp => Scheme::Lvp { scope: Scope::LoadsOnly, config: LvpConfig::paper() },
            P::LvpAll => Scheme::Lvp { scope: Scope::AllInsts, config: LvpConfig::paper() },
            P::SrvpSame | P::SrvpDead | P::SrvpLive | P::SrvpLiveLv => {
                let level = match scheme {
                    P::SrvpSame => SrvpLevel::Same,
                    P::SrvpDead => SrvpLevel::Dead,
                    P::SrvpLive => SrvpLevel::Live,
                    _ => SrvpLevel::LiveLv,
                };
                let profile = profile.as_ref().expect("profiled");
                let plan = profile.static_plan(&train, self.threshold, level);
                // Mark the loads in the program text (`rvp_` opcodes).
                program = program.map_insts(|pc, inst| {
                    if plan.contains(pc) {
                        inst.clone().with_rvp()
                    } else {
                        inst.clone()
                    }
                });
                Scheme::StaticRvp { plan }
            }
            P::Drvp => Scheme::DynamicRvp {
                scope: Scope::LoadsOnly,
                plan: PredictionPlan::new(),
                config: DrvpConfig::paper(),
            },
            P::DrvpAll => Scheme::DynamicRvp {
                scope: Scope::AllInsts,
                plan: PredictionPlan::new(),
                config: DrvpConfig::paper(),
            },
            P::DrvpDead | P::DrvpDeadLv | P::DrvpAllDead | P::DrvpAllDeadLv => {
                let scope = match scheme {
                    P::DrvpDead | P::DrvpDeadLv => Scope::LoadsOnly,
                    _ => Scope::AllInsts,
                };
                let assist = match scheme {
                    P::DrvpDead | P::DrvpAllDead => Assist::Dead,
                    _ => Assist::DeadLv,
                };
                let profile = profile.as_ref().expect("profiled");
                let plan = profile.assist_plan(&train, self.threshold, scope, assist);
                Scheme::DynamicRvp { scope, plan, config: DrvpConfig::paper() }
            }
            P::GrpAll => Scheme::Gabbay { scope: Scope::AllInsts },
            P::DrvpAllRealloc => {
                // Actually transform the program; the hardware then runs
                // plain dynamic RVP with no oracle plan.
                let profile = profile.as_ref().expect("profiled");
                let opts = ReallocOptions {
                    threshold: self.threshold,
                    scope: PlanScope::AllInsts,
                    use_dead: true,
                    use_lv: true,
                };
                program = reallocate(&program, profile, &opts).program;
                Scheme::DynamicRvp {
                    scope: Scope::AllInsts,
                    plan: PredictionPlan::new(),
                    config: DrvpConfig::paper(),
                }
            }
        };

        let stats = Simulator::new(self.config.clone(), sim_scheme, self.recovery)
            .run(&program, self.measure_insts)?;
        Ok(RunResult { workload: wl.name(), scheme, stats })
    }

    /// Figure 1 measurement: register-value reuse of loads on the ref
    /// input.
    ///
    /// # Errors
    ///
    /// Propagates emulator errors.
    pub fn fig1(&self, wl: &Workload) -> Result<Fig1Row, SimError> {
        let program = wl.program(Input::Ref);
        let cfg = ProfileConfig { max_insts: self.measure_insts, min_execs: 32 };
        Ok(Profile::collect(&program, &cfg).map_err(SimError::Emu)?.fig1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_workloads::by_name;

    fn quick_runner() -> Runner {
        Runner { profile_insts: 250_000, measure_insts: 120_000, ..Runner::default() }
    }

    #[test]
    fn m88ksim_has_much_more_reuse_than_go() {
        let r = quick_runner();
        let m88k = r.run(&by_name("m88ksim").unwrap(), PaperScheme::DrvpAll).unwrap();
        let go = r.run(&by_name("go").unwrap(), PaperScheme::DrvpAll).unwrap();
        assert!(
            m88k.stats.coverage() > 2.0 * go.stats.coverage(),
            "m88k {:.3} vs go {:.3}",
            m88k.stats.coverage(),
            go.stats.coverage()
        );
    }

    #[test]
    fn drvp_accuracy_is_high() {
        let r = quick_runner();
        for name in ["m88ksim", "hydro2d"] {
            let res = r.run(&by_name(name).unwrap(), PaperScheme::DrvpAll).unwrap();
            assert!(
                res.stats.accuracy() > 0.9,
                "{name}: accuracy {:.3}",
                res.stats.accuracy()
            );
        }
    }

    #[test]
    fn dead_lv_assistance_increases_coverage() {
        let r = quick_runner();
        let wl = by_name("hydro2d").unwrap();
        let plain = r.run(&wl, PaperScheme::DrvpAll).unwrap();
        let assisted = r.run(&wl, PaperScheme::DrvpAllDeadLv).unwrap();
        assert!(
            assisted.stats.coverage() >= plain.stats.coverage(),
            "assisted {:.3} < plain {:.3}",
            assisted.stats.coverage(),
            plain.stats.coverage()
        );
    }

    #[test]
    fn gabbay_has_lower_coverage_than_drvp() {
        // The paper's key comparison: register-indexed counters suffer
        // destructive interference that PC-indexed counters avoid.
        let r = quick_runner();
        let wl = by_name("m88ksim").unwrap();
        let drvp = r.run(&wl, PaperScheme::DrvpAll).unwrap();
        let grp = r.run(&wl, PaperScheme::GrpAll).unwrap();
        assert!(
            grp.stats.coverage() < drvp.stats.coverage(),
            "Grp {:.3} !< dRVP {:.3}",
            grp.stats.coverage(),
            drvp.stats.coverage()
        );
    }

    #[test]
    fn prediction_never_changes_committed_count() {
        let r = quick_runner();
        let wl = by_name("ijpeg").unwrap();
        let base = r.run(&wl, PaperScheme::NoPredict).unwrap();
        for scheme in [PaperScheme::Lvp, PaperScheme::DrvpAll, PaperScheme::SrvpDead] {
            let res = r.run(&wl, scheme).unwrap();
            assert_eq!(res.stats.committed, base.stats.committed, "{scheme:?}");
        }
    }

    #[test]
    fn fig1_fractions_are_monotone() {
        let r = quick_runner();
        for name in ["li", "mgrid"] {
            let row = r.fig1(&by_name(name).unwrap()).unwrap();
            let [same, dead, any, lvp] = row.fractions();
            assert!(same <= dead + 1e-12, "{name}");
            assert!(dead <= any + 1e-12, "{name}");
            assert!(any <= lvp + 1e-12, "{name}");
            assert!(lvp <= 1.0);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = PaperScheme::all().iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PaperScheme::all().len());
    }
}
