//! Durable-write primitives shared by everything that persists run
//! state: the grid's cell files and manifest, and the serve daemon's
//! job journal and result cache.
//!
//! Two building blocks:
//!
//! * [`write_atomic`] — write-temp/fsync/rename, so a crash at any
//!   point leaves either the previous contents or the complete new
//!   ones, never a torn file;
//! * [`journal_line`] / [`parse_journal_line`] — one checksummed JSON
//!   record per line (`<fnv1a:016x> <json>\n`), so an append-only
//!   journal tolerates a torn final line from a crash mid-append: the
//!   unverifiable line is detected and dropped rather than trusted.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use rvp_json::Json;
use rvp_trace::fnv1a;

/// Write-temp/fsync/rename: after a crash at any point, `path` holds
/// either its previous contents or the complete new ones.
///
/// The temp name is unique per process *and* per call, so concurrent
/// writers targeting the same path (e.g. two serve workers emitting
/// the same cell label) never share a temp file — each rename
/// publishes its own complete bytes and the last rename wins.
///
/// # Errors
///
/// Returns the underlying I/O error; the temp file is removed on
/// failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Renders one journal record as `<fnv1a-of-json:016x> <json>\n`.
pub fn journal_line(json: &Json) -> String {
    let text = json.to_string();
    format!("{:016x} {text}\n", fnv1a(text.as_bytes()))
}

/// Parses one journal line back, returning `None` for anything
/// unverifiable: a missing checksum, a checksum mismatch (torn or
/// tampered line), or malformed JSON.
pub fn parse_journal_line(line: &str) -> Option<Json> {
    let (sum, text) = line.split_once(' ')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if fnv1a(text.as_bytes()) != sum {
        return None;
    }
    Json::parse(text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_lines_round_trip_and_reject_tampering() {
        let j = Json::obj([("kind", "job".into()), ("id", 7u64.into())]);
        let line = journal_line(&j);
        assert!(line.ends_with('\n'));
        assert_eq!(parse_journal_line(line.trim_end()), Some(j));

        // A flipped byte in the payload fails the checksum.
        let tampered = line.trim_end().replace("\"id\":7", "\"id\":8");
        assert_eq!(parse_journal_line(&tampered), None);
        // A torn line (truncated mid-record) is dropped.
        assert_eq!(parse_journal_line(&line[..line.len() / 2]), None);
        assert_eq!(parse_journal_line("nonsense"), None);
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("rvp-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        // A failed write (missing parent) leaves no temp file behind.
        assert!(write_atomic(&dir.join("nope").join("x"), b"data").is_err());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_to_one_path_never_collide() {
        let dir = std::env::temp_dir().join(format!("rvp-journal-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.json");
        // Same-process threads used to share one temp name, so one
        // writer's rename could steal (or truncate) another's temp
        // file mid-write — surfacing as spurious ENOENT under two
        // serve workers emitting the same cell label.
        std::thread::scope(|scope| {
            for t in 0u8..8 {
                let path = &path;
                scope.spawn(move || {
                    let payload = vec![b'a' + t; 4096];
                    for _ in 0..50 {
                        write_atomic(path, &payload).expect("concurrent write_atomic");
                    }
                });
            }
        });
        // The survivor is one writer's complete payload, never a mix.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4096);
        assert!(bytes.windows(2).all(|w| w[0] == w[1]), "torn interleaved write");
        // No temp droppings left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
