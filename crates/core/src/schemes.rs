//! The string-keyed scheme registry: every prediction configuration a
//! figure, grid cell, sweep request or CLI flag can name.
//!
//! A *scheme* is a predictor plus the methodology around it: the scope
//! filter, and the profile-derived compiler product (static `rvp_`
//! marking, an assistance plan, or a real register reallocation) the
//! [`crate::Runner`] prepares before the timing run. The registry maps
//! a stable label (the paper's figure legends, e.g. `drvp_all_dead_lv`)
//! to that recipe; predictor parameters ride along in the label itself
//! (`lvp_all:entries=4096` forwards `entries=4096` to the `lvp`
//! predictor builder), so one string names a complete, reproducible
//! cell configuration.
//!
//! This replaced a closed `PaperScheme` enum: new predictors registered
//! in `rvp-vpred` become sweepable here by adding one table row, and
//! every consumer (grid, serve, report) validates against
//! [`list_schemes`] instead of its own copy of the label set.

use rvp_profile::{Assist, SrvpLevel};
use rvp_uarch::Recovery;
use rvp_vpred::{new_value_predictor, Scope, ValuePredictor};

/// Where a scheme's prediction plan comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// No profile involvement: the hardware is on its own.
    NoPlan,
    /// Exhaustive static plan at the given profiling level; the runner
    /// also marks the listed loads in the program text (`rvp_`
    /// opcodes).
    Static(SrvpLevel),
    /// Idealized compiler assistance: an overlay plan listing the
    /// instructions whose reuse the compiler would have exposed.
    Assist(Assist),
    /// A real register reallocation of the program; the hardware then
    /// sees only the same-register reuse the transformation created.
    Realloc,
}

/// One registered scheme: label, recipe, and the registry name of its
/// value predictor.
#[derive(Debug, Clone, Copy)]
pub struct SchemeInfo {
    /// Stable label (the paper's figure legend where one exists).
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// Which instructions may be predicted.
    pub scope: Scope,
    /// Profile product the runner prepares.
    pub plan: PlanSource,
    /// Value-predictor registry name ([`rvp_vpred::new_value_predictor`]);
    /// `None` for the no-prediction baseline.
    pub predictor: Option<&'static str>,
}

/// Number of leading [`SCHEMES`] rows that are the paper's figure
/// configurations (in figure order).
const PAPER_SCHEMES: usize = 15;

static SCHEMES: &[SchemeInfo] = &[
    SchemeInfo {
        name: "no_predict",
        summary: "the baseline: no value prediction",
        scope: Scope::LoadsOnly,
        plan: PlanSource::NoPlan,
        predictor: None,
    },
    SchemeInfo {
        name: "lvp",
        summary: "last-value prediction of loads (Figs. 3, 5)",
        scope: Scope::LoadsOnly,
        plan: PlanSource::NoPlan,
        predictor: Some("lvp"),
    },
    SchemeInfo {
        name: "lvp_all",
        summary: "last-value prediction of all instructions (Figs. 6, 8)",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("lvp"),
    },
    SchemeInfo {
        name: "srvp_same",
        summary: "static RVP, natural same-register reuse only",
        scope: Scope::LoadsOnly,
        plan: PlanSource::Static(SrvpLevel::Same),
        predictor: Some("srvp"),
    },
    SchemeInfo {
        name: "srvp_dead",
        summary: "static RVP plus dead-register correlation (Figs. 3, 4)",
        scope: Scope::LoadsOnly,
        plan: PlanSource::Static(SrvpLevel::Dead),
        predictor: Some("srvp"),
    },
    SchemeInfo {
        name: "srvp_live",
        summary: "static RVP plus live-register correlation (move not charged)",
        scope: Scope::LoadsOnly,
        plan: PlanSource::Static(SrvpLevel::Live),
        predictor: Some("srvp"),
    },
    SchemeInfo {
        name: "srvp_live_lv",
        summary: "static RVP plus last-value registers",
        scope: Scope::LoadsOnly,
        plan: PlanSource::Static(SrvpLevel::LiveLv),
        predictor: Some("srvp"),
    },
    SchemeInfo {
        name: "drvp",
        summary: "dynamic RVP of loads, no compiler support (Fig. 5)",
        scope: Scope::LoadsOnly,
        plan: PlanSource::NoPlan,
        predictor: Some("drvp"),
    },
    SchemeInfo {
        name: "drvp_dead",
        summary: "dynamic RVP of loads with dead-register reallocation assumed (Fig. 5)",
        scope: Scope::LoadsOnly,
        plan: PlanSource::Assist(Assist::Dead),
        predictor: Some("drvp"),
    },
    SchemeInfo {
        name: "drvp_dead_lv",
        summary: "dynamic RVP of loads plus last-value reallocation (Fig. 5)",
        scope: Scope::LoadsOnly,
        plan: PlanSource::Assist(Assist::DeadLv),
        predictor: Some("drvp"),
    },
    SchemeInfo {
        name: "drvp_all",
        summary: "dynamic RVP of all instructions (Figs. 6, 8)",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("drvp"),
    },
    SchemeInfo {
        name: "drvp_all_dead",
        summary: "dynamic RVP of all instructions with dead-register reallocation (Fig. 6)",
        scope: Scope::AllInsts,
        plan: PlanSource::Assist(Assist::Dead),
        predictor: Some("drvp"),
    },
    SchemeInfo {
        name: "drvp_all_dead_lv",
        summary: "dynamic RVP with dead + last-value reallocation (Figs. 6, 8; Fig. 7 ideal)",
        scope: Scope::AllInsts,
        plan: PlanSource::Assist(Assist::DeadLv),
        predictor: Some("drvp"),
    },
    SchemeInfo {
        name: "Grp_all",
        summary: "the Gabbay & Mendelson register predictor (Fig. 6)",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("gabbay"),
    },
    SchemeInfo {
        name: "drvp_all_realloc",
        summary: "dynamic RVP over an actually-reallocated program (Fig. 7 realistic)",
        scope: Scope::AllInsts,
        plan: PlanSource::Realloc,
        predictor: Some("drvp"),
    },
    // --- beyond the paper: the predictor zoo ---
    SchemeInfo {
        name: "stride_all",
        summary: "1-delta stride buffer over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("stride"),
    },
    SchemeInfo {
        name: "stride2_all",
        summary: "2-delta stride buffer over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("stride2"),
    },
    SchemeInfo {
        name: "fcm_all",
        summary: "finite-context-method buffer over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("fcm"),
    },
    SchemeInfo {
        name: "hybrid_all",
        summary: "stride+last-value hybrid buffer over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("stride_lvp"),
    },
    SchemeInfo {
        name: "rvp_lvp_all",
        summary: "RVP+LVP tournament hybrid over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("rvp_lvp"),
    },
    SchemeInfo {
        name: "tage_drvp_all",
        summary: "TAGE-style reuse confidence for DRVP over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("tage_drvp"),
    },
    SchemeInfo {
        name: "hwcorr_all",
        summary: "hardware-learned register correlation over all instructions",
        scope: Scope::AllInsts,
        plan: PlanSource::NoPlan,
        predictor: Some("hwcorr"),
    },
];

/// All registered schemes, in a stable order (the paper's 15 figure
/// configurations first, then the zoo additions).
pub fn list_schemes() -> &'static [SchemeInfo] {
    SCHEMES
}

/// All registered scheme names, in [`list_schemes`] order.
pub fn scheme_names() -> Vec<&'static str> {
    SCHEMES.iter().map(|s| s.name).collect()
}

/// The paper's 15 figure configurations, parsed, in figure order.
pub fn paper_schemes() -> Vec<SchemeSpec> {
    SCHEMES[..PAPER_SCHEMES]
        .iter()
        .map(|s| SchemeSpec::parse(s.name).expect("registry rows parse"))
        .collect()
}

/// A validated scheme configuration string: a registry name plus
/// optional predictor parameters (`drvp_all:entries=4096,ctr=2`).
///
/// The full string is the scheme's *label* — it keys cell files, grid
/// fingerprints and the serve result cache, so two labels differing
/// only in parameters address different cells while the bare paper
/// labels stay byte-identical to the pre-registry era.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchemeSpec {
    spec: String,
    name_len: usize,
}

impl SchemeSpec {
    /// Parses and fully validates a scheme string: the name must be
    /// registered, and any parameter tail must be accepted by the
    /// scheme's predictor builder.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending part and listing
    /// the registered schemes for unknown names (serve returns these
    /// verbatim as 400 bodies).
    pub fn parse(spec: &str) -> Result<SchemeSpec, String> {
        let name_len = spec.find(':').unwrap_or(spec.len());
        let name = &spec[..name_len];
        let info = SCHEMES.iter().find(|i| i.name == name).ok_or_else(|| {
            format!("unknown scheme {name:?} (known: {})", scheme_names().join(", "))
        })?;
        let parsed = SchemeSpec { spec: spec.to_owned(), name_len };
        if name_len < spec.len() {
            if info.predictor.is_none() {
                return Err(format!("scheme {name:?} takes no parameters"));
            }
            // Forward the tail through the predictor builder so every
            // key/value is validated up front, not at cell run time.
            let forwarded = parsed.predictor_spec().expect("predictor present");
            new_value_predictor(&forwarded).map_err(|e| format!("scheme {name:?}: {e}"))?;
        }
        Ok(parsed)
    }

    /// The full configuration string — the scheme's stable label.
    pub fn label(&self) -> &str {
        &self.spec
    }

    /// The registry name (the label minus any parameter tail).
    pub fn name(&self) -> &str {
        &self.spec[..self.name_len]
    }

    /// The registry row behind this spec.
    pub fn info(&self) -> &'static SchemeInfo {
        SCHEMES.iter().find(|i| i.name == self.name()).expect("validated at parse")
    }

    /// The predictor config string this scheme forwards to
    /// [`rvp_vpred::new_value_predictor`]; `None` for `no_predict`.
    pub fn predictor_spec(&self) -> Option<String> {
        self.info().predictor.map(|p| format!("{}{}", p, &self.spec[self.name_len..]))
    }

    /// Builds this scheme's value predictor; `None` for `no_predict`.
    pub fn build_predictor(&self) -> Option<Box<dyn ValuePredictor>> {
        self.predictor_spec()
            .map(|s| new_value_predictor(&s).expect("predictor spec validated at parse"))
    }

    /// Whether running this scheme requires a train-input profile.
    pub fn needs_profile(&self) -> bool {
        self.info().plan != PlanSource::NoPlan
    }
}

impl std::str::FromStr for SchemeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<SchemeSpec, String> {
        SchemeSpec::parse(s)
    }
}

impl std::fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec)
    }
}

/// Wire/journal name of a recovery model (CLI flags, sweep specs,
/// report labels — one mapping for every consumer).
pub fn recovery_name(r: Recovery) -> &'static str {
    match r {
        Recovery::Refetch => "refetch",
        Recovery::Reissue => "reissue",
        Recovery::Selective => "selective",
    }
}

/// Inverse of [`recovery_name`]; `None` for anything unknown.
pub fn parse_recovery(s: &str) -> Option<Recovery> {
    match s {
        "refetch" => Some(Recovery::Refetch),
        "reissue" => Some(Recovery::Reissue),
        "selective" => Some(Recovery::Selective),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_paper_prefix_is_stable() {
        let mut names = scheme_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCHEMES.len());
        // The paper labels, in figure order, byte-identical to the
        // pre-registry enum era (cell filenames and grid fingerprints
        // depend on this).
        let paper: Vec<&str> = paper_schemes().iter().map(|s| s.info().name).collect();
        assert_eq!(
            paper,
            [
                "no_predict",
                "lvp",
                "lvp_all",
                "srvp_same",
                "srvp_dead",
                "srvp_live",
                "srvp_live_lv",
                "drvp",
                "drvp_dead",
                "drvp_dead_lv",
                "drvp_all",
                "drvp_all_dead",
                "drvp_all_dead_lv",
                "Grp_all",
                "drvp_all_realloc",
            ]
        );
    }

    #[test]
    fn every_registered_scheme_builds_its_predictor() {
        for info in list_schemes() {
            let spec = SchemeSpec::parse(info.name).unwrap();
            let p = spec.build_predictor();
            assert_eq!(p.is_some(), info.predictor.is_some(), "{}", info.name);
            if let (Some(p), Some(name)) = (p, info.predictor) {
                assert_eq!(p.name(), name);
            }
        }
    }

    #[test]
    fn parameter_tails_forward_to_the_predictor() {
        let s = SchemeSpec::parse("drvp_all:entries=4096,ctr=2").unwrap();
        assert_eq!(s.name(), "drvp_all");
        assert_eq!(s.label(), "drvp_all:entries=4096,ctr=2");
        assert_eq!(s.predictor_spec().unwrap(), "drvp:entries=4096,ctr=2");
        let p = s.build_predictor().unwrap();
        assert!(p.spec().contains("entries=4096"));
        assert!(p.spec().contains("ctr=2"));
    }

    #[test]
    fn bad_specs_are_errors_listing_the_registry() {
        let e = SchemeSpec::parse("nope").unwrap_err();
        assert!(e.contains("unknown scheme"));
        assert!(e.contains("drvp_all"), "error should list known schemes: {e}");
        assert!(SchemeSpec::parse("no_predict:entries=4").is_err());
        assert!(SchemeSpec::parse("drvp_all:bogus=1").is_err());
        assert!(SchemeSpec::parse("drvp_all:entries=3").is_err(), "non-power-of-two entries");
    }

    #[test]
    fn recovery_names_round_trip() {
        for r in [Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
            assert_eq!(parse_recovery(recovery_name(r)), Some(r));
        }
        assert_eq!(parse_recovery("nope"), None);
    }
}
