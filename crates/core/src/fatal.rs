//! Fatal-error reporting for the CLI binaries: distinct exit codes per
//! failure class and a structured one-line JSON diagnostic.
//!
//! Every fatal path in `rvp-sim`, `rvp-grid` and `rvp-report` funnels
//! through [`fatal`]: the process emits exactly one machine-parseable
//! JSON line on stderr (unconditionally — fatal diagnostics are not
//! subject to the `RVP_LOG` filter) and exits with a code that names
//! the failure class, so driver scripts can distinguish a workload bug
//! from a full disk from a poisoned sweep without scraping prose.

use std::process::ExitCode;

use rvp_json::Json;
use rvp_uarch::SimError;

/// Bad command-line usage (also what `--help` returns).
pub const EXIT_USAGE: u8 = 2;
/// The functional emulator rejected the program ([`SimError::Emu`]).
pub const EXIT_EMU: u8 = 10;
/// The pipeline deadlocked ([`SimError::Deadlock`]).
pub const EXIT_DEADLOCK: u8 = 11;
/// Train/ref builds disagree ([`SimError::StructureMismatch`]).
pub const EXIT_STRUCTURE: u8 = 12;
/// A filesystem operation failed (unwritable output, unreadable input).
pub const EXIT_IO: u8 = 13;
/// A named thing does not exist (unknown workload, scheme, machine...).
pub const EXIT_CONFIG: u8 = 14;
/// The sweep completed but recorded at least one poisoned cell.
pub const EXIT_POISONED: u8 = 20;
/// The run was cancelled cooperatively ([`SimError::Cancelled`]: a
/// deadline, an operator abort, or a drain-window squash).
pub const EXIT_CANCELLED: u8 = 21;

/// The exit code for a [`SimError`], one per variant.
pub fn sim_exit_code(e: &SimError) -> u8 {
    match e {
        SimError::Emu(_) => EXIT_EMU,
        SimError::Deadlock { .. } => EXIT_DEADLOCK,
        SimError::StructureMismatch { .. } => EXIT_STRUCTURE,
        SimError::Cancelled { .. } => EXIT_CANCELLED,
    }
}

/// Stable kind tag for a [`SimError`], embedded in the fatal JSON line.
pub fn sim_error_kind(e: &SimError) -> &'static str {
    match e {
        SimError::Emu(_) => "emu",
        SimError::Deadlock { .. } => "deadlock",
        SimError::StructureMismatch { .. } => "structure_mismatch",
        SimError::Cancelled { .. } => "cancelled",
    }
}

/// Emits a one-line JSON fatal diagnostic on stderr and returns the
/// `ExitCode` for `code`. The line always carries `"fatal": true`, the
/// reporting module, a message, and the exit code, plus any
/// caller-provided fields.
pub fn fatal(module: &str, msg: &str, code: u8, fields: &[(&str, Json)]) -> ExitCode {
    let mut pairs: Vec<(String, Json)> = vec![
        ("fatal".into(), true.into()),
        ("module".into(), module.into()),
        ("msg".into(), msg.into()),
        ("exit_code".into(), u64::from(code).into()),
    ];
    pairs.extend(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    eprintln!("{}", Json::Obj(pairs));
    ExitCode::from(code)
}

/// [`fatal`] for a [`SimError`], mapping the variant to its exit code
/// and embedding the error kind and text.
pub fn fatal_sim(module: &str, e: &SimError, fields: &[(&str, Json)]) -> ExitCode {
    let mut all: Vec<(&str, Json)> =
        vec![("error", e.to_string().into()), ("error_kind", sim_error_kind(e).into())];
    all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
    fatal(module, "simulation failed", sim_exit_code(e), &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_emu::EmuError;

    #[test]
    fn sim_error_codes_are_distinct() {
        let errs = [
            SimError::Emu(EmuError::PcOutOfRange { pc: 0 }),
            SimError::Deadlock { cycle: 1, committed: 0 },
            SimError::StructureMismatch { train_len: 1, ref_len: 2 },
            SimError::Cancelled {
                cycle: 1,
                committed: 0,
                reason: rvp_obs::CancelReason::Cancelled,
            },
        ];
        let mut codes: Vec<u8> = errs.iter().map(sim_exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
        for code in codes {
            assert!(code != 0 && code != EXIT_USAGE);
        }
    }
}
