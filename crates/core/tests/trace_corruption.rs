//! Degradation path: a trace that turns out to be truncated mid-replay
//! must fall back to live emulation without changing a single stat, and
//! must announce the degradation as a structured log event.
//!
//! This test lives in its own binary because it claims the process-wide
//! log sink (`RVP_LOG_FILE`) before the first event is emitted.

use std::fs;

use rvp_core::{
    by_name, Input, Json, Runner, SchemeSpec, SourceMode, TraceInput, TraceMeta, TraceStore,
};

#[test]
fn truncated_trace_falls_back_to_live_with_structured_event() {
    let base = std::env::temp_dir().join(format!("rvp-corruption-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).unwrap();
    let log_path = base.join("events.jsonl");
    std::env::set_var("RVP_LOG_FILE", &log_path);
    std::env::set_var("RVP_LOG", "warn");

    let store = TraceStore::new(base.join("traces")).unwrap();
    let wl = by_name("li").unwrap();
    let mk = |mode| Runner {
        source_mode: mode,
        traces: Some(store.clone()),
        profile_insts: 40_000,
        measure_insts: 20_000,
        ..Runner::default()
    };

    let no_predict = SchemeSpec::parse("no_predict").unwrap();
    let want = mk(SourceMode::Live).run(&wl, &no_predict).unwrap();

    let replay = mk(SourceMode::Replay);
    replay.prewarm_trace(&wl).unwrap();

    // Chop the tail off the captured ref trace: the header and early
    // frames stay valid, so the reader fails mid-run, not at open.
    let program = wl.program(Input::Ref);
    let meta = TraceMeta::for_program(wl.name(), TraceInput::Ref, 20_000, &program);
    let path = store.path_for(&meta);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let got = replay.run(&wl, &no_predict).unwrap();
    assert_eq!(want.stats, got.stats, "degraded replay must stay bit-identical");
    assert_eq!(replay.source_counters.total().live_fallbacks, 1);

    let events = fs::read_to_string(&log_path).unwrap();
    let event = events
        .lines()
        .filter_map(|line| Json::parse(line).ok())
        .find(|j| {
            j.get("module").and_then(Json::as_str) == Some("uarch::source")
                && j.get("msg").and_then(Json::as_str)
                    == Some("trace replay failed; falling back to live emulation")
        })
        .expect("structured degradation event in the log file");
    assert_eq!(event.get("level").and_then(Json::as_str), Some("warn"));
    assert!(event.get("error").and_then(Json::as_str).is_some(), "event names the error");
    assert!(event.get("produced").and_then(Json::as_u64).is_some(), "event records progress");

    let _ = fs::remove_dir_all(&base);
}
