//! The [`rvp_core::SourceMode`] contract: live emulation, on-disk
//! replay and the shared in-memory trace must produce bit-identical
//! `SimStats` (CPI stacks included) for every paper scheme under every
//! recovery model. One test per recovery so the matrix parallelizes.

use rvp_core::{
    by_name, paper_schemes, ProfileCache, Recovery, Runner, SourceMode, TraceStore, Workload,
};

const WORKLOADS: [&str; 2] = ["li", "hydro2d"];

fn runner(
    mode: SourceMode,
    recovery: Recovery,
    store: &TraceStore,
    profiles: &ProfileCache,
) -> Runner {
    Runner {
        recovery,
        profile_insts: 40_000,
        measure_insts: 20_000,
        profiles: profiles.clone(),
        traces: Some(store.clone()),
        source_mode: mode,
        ..Runner::default()
    }
}

fn check_recovery(recovery: Recovery) {
    let dir = std::env::temp_dir()
        .join(format!("rvp-source-equivalence-{recovery:?}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::new(&dir).unwrap();
    // One profile collection per workload, shared by all nine runners.
    let profiles = ProfileCache::default();

    for name in WORKLOADS {
        let wl: Workload = by_name(name).unwrap();
        let live = runner(SourceMode::Live, recovery, &store, &profiles);
        let replay = runner(SourceMode::Replay, recovery, &store, &profiles);
        let shared = runner(SourceMode::Shared, recovery, &store, &profiles);

        for scheme in &paper_schemes() {
            let want = live.run(&wl, scheme).unwrap();
            let r = replay.run(&wl, scheme).unwrap();
            let s = shared.run(&wl, scheme).unwrap();
            assert_eq!(want.stats, r.stats, "{name}/{}/{recovery:?}: replay", scheme.label());
            assert_eq!(want.stats, s.stats, "{name}/{}/{recovery:?}: shared", scheme.label());
        }

        // The trace-backed runners must actually have served from
        // traces: only the register-reallocated cell may run live.
        for (label, r) in [("replay", &replay), ("shared", &shared)] {
            let tally = r.source_counters.total();
            assert_eq!(tally.live_fallbacks, 1, "{name}/{recovery:?}: {label} fallbacks");
            assert_eq!(
                tally.shared_hits,
                paper_schemes().len() as u64 - 1,
                "{name}/{recovery:?}: {label} served runs"
            );
        }
        assert_eq!(live.source_counters.total().shared_hits, 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sources_bit_identical_under_refetch() {
    check_recovery(Recovery::Refetch);
}

#[test]
fn sources_bit_identical_under_reissue() {
    check_recovery(Recovery::Reissue);
}

#[test]
fn sources_bit_identical_under_selective() {
    check_recovery(Recovery::Selective);
}
