//! Property tests: `RegSet` behaves exactly like a reference `HashSet`.

use std::collections::HashSet;

use proptest::prelude::*;
use rvp_isa::analysis::RegSet;
use rvp_isa::Reg;

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![(0..64usize).prop_map(Op::Insert), (0..64usize).prop_map(Op::Remove),],
        0..64,
    )
}

proptest! {
    #[test]
    fn regset_matches_hashset(ops in ops(), others in proptest::collection::vec(0..64usize, 0..16)) {
        let mut set = RegSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for op in &ops {
            match *op {
                Op::Insert(i) => {
                    let a = set.insert(Reg::from_index(i));
                    let b = model.insert(i);
                    prop_assert_eq!(a, b);
                }
                Op::Remove(i) => {
                    let a = set.remove(Reg::from_index(i));
                    let b = model.remove(&i);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(set.len(), model.len());
        }
        // Membership agrees everywhere.
        for i in 0..64 {
            prop_assert_eq!(set.contains(Reg::from_index(i)), model.contains(&i));
        }
        // Iteration yields exactly the members, in index order.
        let mut got: Vec<usize> = set.iter().map(|r| r.index()).collect();
        let mut want: Vec<usize> = model.iter().copied().collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);

        // Set algebra against a second set.
        let other: RegSet = others.iter().map(|&i| Reg::from_index(i)).collect();
        let other_model: HashSet<usize> = others.iter().copied().collect();
        let union: HashSet<usize> =
            set.union(other).iter().map(|r| r.index()).collect();
        let inter: HashSet<usize> =
            set.intersection(other).iter().map(|r| r.index()).collect();
        let diff: HashSet<usize> =
            set.difference(other).iter().map(|r| r.index()).collect();
        prop_assert_eq!(union, model.union(&other_model).copied().collect::<HashSet<_>>());
        prop_assert_eq!(inter, model.intersection(&other_model).copied().collect::<HashSet<_>>());
        prop_assert_eq!(diff, model.difference(&other_model).copied().collect::<HashSet<_>>());
    }
}
