//! Property tests over the dataflow analyses: liveness and CFG
//! invariants on randomly generated single-procedure programs.

use proptest::prelude::*;
use rvp_isa::analysis::{effective_uses, Liveness};
use rvp_isa::cfg::Cfg;
use rvp_isa::{Program, ProgramBuilder, Reg};

/// Random structured programs: straight-line ALU segments joined by a
/// diamond and a counted loop — enough shape to exercise joins, back
/// edges and fallthroughs without risking non-termination.
fn arb_program() -> impl Strategy<Value = Program> {
    let seg = proptest::collection::vec((0..8u8, 1..8u8, 1..8u8), 1..8);
    (seg.clone(), seg.clone(), seg, 1..10i64).prop_map(|(s1, s2, s3, iters)| {
        let emit = |b: &mut ProgramBuilder, ops: &[(u8, u8, u8)]| {
            for &(op, d, a) in ops {
                let (d, a) = (Reg::int(d), Reg::int(a));
                match op {
                    0 => b.add(d, a, 1),
                    1 => b.sub(d, a, 2),
                    2 => b.and(d, a, 0xff),
                    3 => b.or(d, a, 1),
                    4 => b.xor(d, a, a),
                    5 => b.mul(d, a, 3),
                    6 => b.cmpeq(d, a, 0),
                    _ => b.mov(d, a),
                };
            }
        };
        let mut b = ProgramBuilder::new();
        let n = Reg::int(27);
        b.li(n, iters);
        emit(&mut b, &s1);
        b.beqz(Reg::int(1), "else");
        emit(&mut b, &s2);
        b.br("join");
        b.label("else");
        emit(&mut b, &s3);
        b.label("join");
        b.label("loop");
        emit(&mut b, &s1);
        b.subi(n, n, 1);
        b.bnez(n, "loop");
        b.halt();
        b.build().expect("generated programs build")
    })
}

proptest! {
    /// Soundness: every register an instruction reads is live just
    /// before it.
    #[test]
    fn reads_are_live_before(program in arb_program()) {
        let proc = &program.procedures()[0];
        let cfg = Cfg::build(&program, proc);
        let live = Liveness::compute(&program, &cfg);
        for pc in proc.range.clone() {
            let before = live.live_before(&program, pc);
            for r in effective_uses(&program.insts()[pc]).iter() {
                prop_assert!(
                    before.contains(r),
                    "pc {pc}: read register {r} not live before"
                );
            }
        }
    }

    /// Consistency: a register reported dead after `pc` is never read by
    /// the instruction at `pc + 1` in the same block (the cheapest
    /// falsifiable slice of the dead-after contract).
    #[test]
    fn dead_after_is_not_read_next(program in arb_program()) {
        let proc = &program.procedures()[0];
        let cfg = Cfg::build(&program, proc);
        let live = Liveness::compute(&program, &cfg);
        for block in cfg.blocks() {
            for pc in block.range.clone() {
                if pc + 1 >= block.range.end {
                    continue;
                }
                let next = &program.insts()[pc + 1];
                for r in effective_uses(next).iter() {
                    prop_assert!(
                        !live.is_dead_after(pc, r),
                        "pc {pc}: {r} dead-after but read at {}",
                        pc + 1
                    );
                }
            }
        }
    }

    /// CFG structural invariants: successor/predecessor symmetry, full
    /// coverage of the instruction range, and entry-reachable loops with
    /// their headers inside the body.
    #[test]
    fn cfg_structure_is_consistent(program in arb_program()) {
        let proc = &program.procedures()[0];
        let cfg = Cfg::build(&program, proc);
        let blocks = cfg.blocks();
        let mut covered = 0;
        for (i, b) in blocks.iter().enumerate() {
            covered += b.range.len();
            for &s in &b.succs {
                prop_assert!(blocks[s].preds.contains(&i));
            }
            for &p in &b.preds {
                prop_assert!(blocks[p].succs.contains(&i));
            }
            for pc in b.range.clone() {
                prop_assert_eq!(cfg.block_of(pc), i);
            }
        }
        prop_assert_eq!(covered, proc.range.len());
        for l in cfg.loops() {
            prop_assert!(l.contains(l.header));
        }
    }
}
