use std::fmt;

/// Number of architectural registers per class (integer / floating point).
pub const NUM_REGS_PER_CLASS: u8 = 32;

/// Total number of architectural registers across both classes.
///
/// Registers are densely indexed `0..NUM_REGS` by [`Reg::index`]: integer
/// registers occupy `0..32`, floating-point registers `32..64`.
pub const NUM_REGS: usize = 64;

/// The two architectural register classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer registers `r0..r31`; `r31` is a hardwired zero.
    Int,
    /// Floating-point registers `f0..f31`; `f31` is a hardwired zero.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => f.write_str("int"),
            RegClass::Fp => f.write_str("fp"),
        }
    }
}

/// An architectural register: class plus number within the class.
///
/// Packed into a single byte so that register-indexed tables (profilers,
/// rename maps, shadow register files) can use [`Reg::index`] directly.
///
/// # Examples
///
/// ```
/// use rvp_isa::{Reg, RegClass};
///
/// let r5 = Reg::int(5);
/// assert_eq!(r5.class(), RegClass::Int);
/// assert_eq!(r5.num(), 5);
/// assert!(!r5.is_zero());
/// assert!(Reg::ZERO.is_zero());
/// assert_eq!(Reg::from_index(Reg::fp(3).index()), Reg::fp(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The integer zero register `r31`. Reads yield 0; writes are discarded.
    pub const ZERO: Reg = Reg(NUM_REGS_PER_CLASS - 1);

    /// The floating-point zero register `f31`.
    pub const FZERO: Reg = Reg(2 * NUM_REGS_PER_CLASS - 1);

    /// Const constructor from a dense index, for ABI register constants.
    pub(crate) const fn const_from_index(index: u8) -> Reg {
        assert!(index < NUM_REGS as u8);
        Reg(index)
    }

    /// Creates the integer register `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(n < NUM_REGS_PER_CLASS, "integer register {n} out of range");
        Reg(n)
    }

    /// Creates the floating-point register `f{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(n < NUM_REGS_PER_CLASS, "fp register {n} out of range");
        Reg(NUM_REGS_PER_CLASS + n)
    }

    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(class: RegClass, n: u8) -> Reg {
        match class {
            RegClass::Int => Reg::int(n),
            RegClass::Fp => Reg::fp(n),
        }
    }

    /// Reconstructs a register from its dense index (inverse of
    /// [`Reg::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    pub fn from_index(index: usize) -> Reg {
        assert!(index < NUM_REGS, "register index {index} out of range");
        Reg(index as u8)
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        if self.0 < NUM_REGS_PER_CLASS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The register number within its class (`0..32`).
    pub fn num(self) -> u8 {
        self.0 % NUM_REGS_PER_CLASS
    }

    /// Dense index over both classes (`0..64`), suitable for table lookup.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is a hardwired zero register (`r31` or `f31`).
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO || self == Reg::FZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.num()),
            RegClass::Fp => write!(f, "f{}", self.num()),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_do_not_collide() {
        assert_ne!(Reg::int(0), Reg::fp(0));
        assert_ne!(Reg::int(0).index(), Reg::fp(0).index());
    }

    #[test]
    fn dense_indexing_round_trips() {
        for i in 0..NUM_REGS {
            let r = Reg::from_index(i);
            assert_eq!(r.index(), i);
            assert_eq!(Reg::new(r.class(), r.num()), r);
        }
    }

    #[test]
    fn zero_registers() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::FZERO.is_zero());
        assert_eq!(Reg::ZERO.class(), RegClass::Int);
        assert_eq!(Reg::FZERO.class(), RegClass::Fp);
        assert!(!Reg::int(0).is_zero());
        assert!(!Reg::fp(30).is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::int(7).to_string(), "r7");
        assert_eq!(Reg::fp(12).to_string(), "f12");
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_register_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let _ = Reg::from_index(64);
    }
}
