use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use crate::inst::Inst;

/// A block of initialized memory shipped with a program, analogous to a
/// `.data` section: 64-bit words starting at a byte address.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataSegment {
    /// Starting byte address (8-byte aligned).
    pub base: u64,
    /// The 64-bit words stored from `base` upward.
    pub words: Vec<u64>,
}

impl DataSegment {
    /// Byte range `[base, base + 8 * words.len())` covered by this segment.
    pub fn byte_range(&self) -> Range<u64> {
        self.base..self.base + 8 * self.words.len() as u64
    }
}

/// A named procedure: a contiguous range of instruction indices. Dataflow
/// analyses and register reallocation operate one procedure at a time, as
/// in the paper (Section 7.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Procedure name (unique within a program).
    pub name: String,
    /// Instruction-index range `[start, end)`.
    pub range: Range<usize>,
}

/// An assembled program: instructions, initialized data, procedure
/// boundaries and resolved labels.
///
/// Instruction addresses are instruction indices; for the instruction-cache
/// model each instruction occupies 4 bytes, so the byte address of
/// instruction `i` is `4 * i` (see [`Program::byte_addr`]).
///
/// Programs are created with [`crate::ProgramBuilder`]; an existing program
/// can be rewritten (e.g. by the register-reallocation pass) via
/// [`Program::map_insts`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    insts: Vec<Inst>,
    data: Vec<DataSegment>,
    procedures: Vec<Procedure>,
    labels: BTreeMap<String, usize>,
    entry: usize,
}

impl Program {
    pub(crate) fn from_parts(
        insts: Vec<Inst>,
        data: Vec<DataSegment>,
        procedures: Vec<Procedure>,
        labels: BTreeMap<String, usize>,
        entry: usize,
    ) -> Program {
        Program { insts, data, procedures, labels, entry }
    }

    /// The instructions, indexed by PC.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn inst(&self, pc: usize) -> Option<&Inst> {
        self.insts.get(pc)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Entry PC (defaults to 0 unless the builder set one).
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Initialized data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// Declared procedures, in program order. If the builder declared
    /// none, the whole program is reported as a single procedure named
    /// `"main"`.
    pub fn procedures(&self) -> Vec<Procedure> {
        if self.procedures.is_empty() {
            vec![Procedure { name: "main".to_owned(), range: 0..self.insts.len() }]
        } else {
            self.procedures.clone()
        }
    }

    /// The procedure containing instruction `pc`, if any.
    pub fn procedure_of(&self, pc: usize) -> Option<Procedure> {
        self.procedures().into_iter().find(|p| p.range.contains(&pc))
    }

    /// Looks up a label, returning its instruction index.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels and their instruction indices, sorted by name.
    pub fn labels(&self) -> impl Iterator<Item = (&str, usize)> {
        self.labels.iter().map(|(n, &i)| (n.as_str(), i))
    }

    /// Byte address of instruction `pc` for the instruction cache (4 bytes
    /// per instruction).
    pub fn byte_addr(pc: usize) -> u64 {
        4 * pc as u64
    }

    /// Returns a copy of the program with every instruction rewritten by
    /// `f` (which receives the PC and the instruction). Data, labels and
    /// procedures are preserved. Used by the register-reallocation pass and
    /// by static-RVP marking.
    pub fn map_insts(&self, mut f: impl FnMut(usize, &Inst) -> Inst) -> Program {
        let insts = self.insts.iter().enumerate().map(|(pc, i)| f(pc, i)).collect();
        Program { insts, ..self.clone() }
    }

    /// Count of static load instructions.
    pub fn load_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_load()).count()
    }

    /// Renders the program as assembly text (one instruction per line, with
    /// label and procedure comments), mainly for debugging and tests.
    pub fn disassemble(&self) -> String {
        let mut by_pc: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, pc) in self.labels() {
            by_pc.entry(pc).or_default().push(name);
        }
        let mut out = String::new();
        let procs = self.procedures();
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(p) = procs.iter().find(|p| p.range.start == pc) {
                out.push_str(&format!("; proc {}\n", p.name));
            }
            if let Some(names) = by_pc.get(&pc) {
                for n in names {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {pc:4}  {inst}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.proc("main");
        b.li(Reg::int(1), 5);
        b.label("top");
        b.subi(Reg::int(1), Reg::int(1), 1);
        b.bnez(Reg::int(1), "top");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn labels_resolve() {
        let p = sample();
        assert_eq!(p.label("top"), Some(1));
        assert_eq!(p.label("missing"), None);
    }

    #[test]
    fn procedures_default_to_main() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let procs = p.procedures();
        assert_eq!(procs.len(), 1);
        assert_eq!(procs[0].name, "main");
        assert_eq!(procs[0].range, 0..1);
    }

    #[test]
    fn procedure_of_locates_pc() {
        let p = sample();
        assert_eq!(p.procedure_of(2).unwrap().name, "main");
        assert!(p.procedure_of(99).is_none());
    }

    #[test]
    fn map_insts_preserves_structure() {
        let p = sample();
        let marked = p.map_insts(|_, i| if i.is_load() { i.clone().with_rvp() } else { i.clone() });
        assert_eq!(marked.len(), p.len());
        assert_eq!(marked.label("top"), p.label("top"));
    }

    #[test]
    fn byte_addresses_are_4_per_inst() {
        assert_eq!(Program::byte_addr(0), 0);
        assert_eq!(Program::byte_addr(10), 40);
    }

    #[test]
    fn disassembly_contains_labels_and_insts() {
        let text = sample().disassemble();
        assert!(text.contains("top:"));
        assert!(text.contains("halt"));
        assert!(text.contains("; proc main"));
    }

    #[test]
    fn data_segment_ranges() {
        let seg = DataSegment { base: 0x1000, words: vec![1, 2, 3] };
        assert_eq!(seg.byte_range(), 0x1000..0x1018);
    }
}
