//! Control-flow graphs, dominators and natural loops.
//!
//! CFGs are built per procedure (see [`crate::Program::procedures`]), the
//! granularity at which the paper's compiler analyses operate. Calls
//! (`bsr`) do not end a block's fall-through path — their interprocedural
//! effects are modelled by the liveness analysis via the ABI register
//! conventions instead.

use std::collections::BTreeSet;

use crate::inst::Flow;
use crate::program::{Procedure, Program};

/// Identifier of a basic block within one [`Cfg`].
pub type BlockId = usize;

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instruction-index range `[start, end)` (absolute program indices).
    pub range: std::ops::Range<usize>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header block.
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
}

impl Loop {
    /// Whether the loop contains the given block.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Control-flow graph of one procedure.
///
/// # Examples
///
/// ```
/// use rvp_isa::{ProgramBuilder, Reg};
/// use rvp_isa::cfg::Cfg;
///
/// # fn main() -> Result<(), rvp_isa::BuildError> {
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::int(1), 4);
/// b.label("loop");
/// b.subi(Reg::int(1), Reg::int(1), 1);
/// b.bnez(Reg::int(1), "loop");
/// b.halt();
/// let p = b.build()?;
/// let cfg = Cfg::build(&p, &p.procedures()[0]);
/// assert_eq!(cfg.blocks().len(), 3);
/// assert_eq!(cfg.loops().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    proc: Procedure,
    blocks: Vec<Block>,
    /// Block id for each instruction offset within the procedure.
    block_of: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG for `proc` within `program`.
    ///
    /// # Panics
    ///
    /// Panics if the procedure range is out of bounds for the program.
    pub fn build(program: &Program, proc: &Procedure) -> Cfg {
        let range = proc.range.clone();
        assert!(range.end <= program.len(), "procedure range out of bounds");
        let n = range.len();
        let in_proc = |t: usize| range.contains(&t);

        // Mark leaders.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for pc in range.clone() {
            let inst = &program.insts()[pc];
            match inst.flow() {
                Flow::FallThrough => {}
                Flow::Always(t) => {
                    // A call falls through; its target is another procedure.
                    if inst.is_call() {
                        continue;
                    }
                    if in_proc(t) {
                        leader[t - range.start] = true;
                    }
                    if pc + 1 < range.end {
                        leader[pc + 1 - range.start] = true;
                    }
                }
                Flow::Conditional(t) => {
                    if in_proc(t) {
                        leader[t - range.start] = true;
                    }
                    if pc + 1 < range.end {
                        leader[pc + 1 - range.start] = true;
                    }
                }
                Flow::Indirect(ts) => {
                    for t in ts {
                        if in_proc(t) {
                            leader[t - range.start] = true;
                        }
                    }
                    if pc + 1 < range.end {
                        leader[pc + 1 - range.start] = true;
                    }
                }
                Flow::Return | Flow::Halt => {
                    if pc + 1 < range.end {
                        leader[pc + 1 - range.start] = true;
                    }
                }
            }
        }

        // Carve blocks.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0; n];
        let mut start = 0;
        for off in 0..n {
            if off > start && leader[off] {
                blocks.push(Block {
                    range: range.start + start..range.start + off,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = off;
            }
            block_of[off] = blocks.len();
        }
        if n > 0 {
            blocks.push(Block {
                range: range.start + start..range.end,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }

        // Wire edges.
        let ids: Vec<BlockId> = (0..blocks.len()).collect();
        for &b in &ids {
            let last = blocks[b].range.end - 1;
            let inst = &program.insts()[last];
            let mut succs: Vec<BlockId> = Vec::new();
            let fall = |succs: &mut Vec<BlockId>| {
                if last + 1 < range.end {
                    succs.push(block_of[last + 1 - range.start]);
                }
            };
            match inst.flow() {
                Flow::FallThrough => fall(&mut succs),
                Flow::Always(t) => {
                    if inst.is_call() {
                        fall(&mut succs);
                    } else if in_proc(t) {
                        succs.push(block_of[t - range.start]);
                    }
                }
                Flow::Conditional(t) => {
                    fall(&mut succs);
                    if in_proc(t) {
                        succs.push(block_of[t - range.start]);
                    }
                }
                Flow::Indirect(ts) => {
                    for t in ts {
                        if in_proc(t) {
                            let s = block_of[t - range.start];
                            if !succs.contains(&s) {
                                succs.push(s);
                            }
                        }
                    }
                }
                Flow::Return | Flow::Halt => {}
            }
            blocks[b].succs = succs;
        }
        for b in ids {
            for s in blocks[b].succs.clone() {
                blocks[s].preds.push(b);
            }
        }

        Cfg { proc: proc.clone(), blocks, block_of }
    }

    /// The procedure this CFG describes.
    pub fn procedure(&self) -> &Procedure {
        &self.proc
    }

    /// The basic blocks, in program order (block 0 is the entry).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing absolute instruction index `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the procedure.
    pub fn block_of(&self, pc: usize) -> BlockId {
        assert!(self.proc.range.contains(&pc), "pc {pc} outside procedure");
        self.block_of[pc - self.proc.range.start]
    }

    /// Immediate dominators (`idom[0]` is 0, the entry). Unreachable
    /// blocks report themselves as their own dominator.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together
    pub fn idoms(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        if n == 0 {
            return Vec::new();
        }
        // Reverse postorder.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut stack = vec![(0usize, 0usize)];
        seen[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b] = i;
        }

        let mut idom = vec![usize::MAX; n];
        idom[0] = 0;
        let intersect = |idom: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a];
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &self.blocks[b].preds {
                    if idom[p] != usize::MAX {
                        new_idom =
                            if new_idom == usize::MAX { p } else { intersect(&idom, new_idom, p) };
                    }
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        for b in 0..n {
            if idom[b] == usize::MAX {
                idom[b] = b; // unreachable
            }
        }
        idom
    }

    /// Whether block `a` dominates block `b`.
    fn dominates(idom: &[BlockId], a: BlockId, b: BlockId) -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            let next = idom[x];
            if next == x {
                return x == a;
            }
            x = next;
        }
    }

    /// The natural loops of the CFG, sorted innermost-first (smallest body
    /// first). Loops sharing a header are merged.
    pub fn loops(&self) -> Vec<Loop> {
        let idom = self.idoms();
        let mut loops: Vec<Loop> = Vec::new();
        for (b, block) in self.blocks.iter().enumerate() {
            for &h in &block.succs {
                if Self::dominates(&idom, h, b) {
                    // Back edge b -> h: collect nodes reaching b avoiding h.
                    let mut body: BTreeSet<BlockId> = BTreeSet::new();
                    body.insert(h);
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in &self.blocks[x].preds {
                                stack.push(p);
                            }
                        }
                    }
                    if let Some(l) = loops.iter_mut().find(|l| l.header == h) {
                        l.body.extend(body);
                    } else {
                        loops.push(Loop { header: h, body });
                    }
                }
            }
        }
        loops.sort_by_key(|l| l.body.len());
        loops
    }

    /// The innermost loop containing instruction `pc`, if any.
    pub fn innermost_loop_of(&self, pc: usize) -> Option<Loop> {
        if !self.proc.range.contains(&pc) {
            return None;
        }
        let b = self.block_of(pc);
        self.loops().into_iter().find(|l| l.contains(b))
    }

    /// Loop-nesting depth of each block (0 = not in any loop).
    pub fn loop_depths(&self) -> Vec<usize> {
        let mut depth = vec![0; self.blocks.len()];
        for l in self.loops() {
            for &b in &l.body {
                depth[b] += 1;
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    fn cfg_of(p: &Program) -> Cfg {
        Cfg::build(p, &p.procedures()[0])
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.nop().nop().halt();
        let p = b.build().unwrap();
        let cfg = cfg_of(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.beqz(r, "else");
        b.nop();
        b.br("join");
        b.label("else");
        b.nop();
        b.label("join");
        b.halt();
        let p = b.build().unwrap();
        let cfg = cfg_of(&p);
        assert_eq!(cfg.blocks().len(), 4);
        assert_eq!(cfg.blocks()[0].succs.len(), 2);
        let idom = cfg.idoms();
        // The join block is dominated by the entry, not by either arm.
        let join = cfg.block_of(4);
        assert_eq!(idom[join], cfg.block_of(0));
        assert!(cfg.loops().is_empty());
    }

    #[test]
    fn simple_loop_is_detected() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 3);
        b.label("top");
        b.subi(r, r, 1);
        b.bnez(r, "top");
        b.halt();
        let p = b.build().unwrap();
        let cfg = cfg_of(&p);
        let loops = cfg.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, cfg.block_of(1));
        assert!(cfg.innermost_loop_of(2).is_some());
        assert!(cfg.innermost_loop_of(0).is_none());
    }

    #[test]
    fn nested_loops_report_depths() {
        let (i, j) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(i, 3);
        b.label("outer");
        b.li(j, 3);
        b.label("inner");
        b.subi(j, j, 1);
        b.bnez(j, "inner");
        b.subi(i, i, 1);
        b.bnez(i, "outer");
        b.halt();
        let p = b.build().unwrap();
        let cfg = cfg_of(&p);
        let loops = cfg.loops();
        assert_eq!(loops.len(), 2);
        // Innermost-first ordering.
        assert!(loops[0].body.len() < loops[1].body.len());
        let depths = cfg.loop_depths();
        assert_eq!(depths[cfg.block_of(3)], 2); // inner body (subi/bnez j)
        assert_eq!(depths[cfg.block_of(4)], 1); // outer-only body (subi i)
        assert_eq!(depths[cfg.block_of(0)], 0); // preheader
                                                // Innermost loop of the inner body instruction is the small loop.
        let inner = cfg.innermost_loop_of(3).unwrap();
        assert_eq!(inner.body.len(), loops[0].body.len());
    }

    #[test]
    fn calls_fall_through() {
        let mut b = ProgramBuilder::new();
        b.proc("main");
        b.call("sub");
        b.halt();
        b.proc("sub");
        b.ret(crate::analysis::abi::RA);
        let p = b.build().unwrap();
        let procs = p.procedures();
        let cfg = Cfg::build(&p, &procs[0]);
        // call + halt stay one straight-line region; call does not branch.
        assert_eq!(cfg.blocks().len(), 1);
    }

    #[test]
    fn jump_table_targets_become_successors() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.jmp(r, &["a", "b"]);
        b.label("a");
        b.br("end");
        b.label("b");
        b.nop();
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        let cfg = cfg_of(&p);
        assert_eq!(cfg.blocks()[0].succs.len(), 2);
    }
}
