//! Textual assembly: parse programs from, and serialize programs to, the
//! same syntax the disassembler prints.
//!
//! [`Program::to_asm`] emits a complete, parseable representation
//! (instructions, labels, `.proc`/`.data`/`.entry` directives);
//! [`parse_asm`] reads it back. The two round-trip exactly, which the
//! test suite verifies over every workload.
//!
//! # Syntax
//!
//! ```text
//! .entry main            ; optional entry label
//! .data 0x1000: 1, 2, 3  ; 64-bit words at an address
//! .proc main             ; begins a procedure (also defines the label)
//! loop:                  ; label
//!   li r1, #10
//!   ldd r2, 8(r1)        ; loads/stores: <mnemonic> reg, disp(base)
//!   rvp_ldd r3, 0(r1)    ; static-RVP marking prefix
//!   add r1, r1, #-1      ; ALU: reg or #imm second source
//!   bne r1, loop         ; branches take a label or @index
//!   jmp (r2) -> @4, @7   ; indirect jumps list their targets
//!   halt
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::builder::{BuildError, ProgramBuilder};
use crate::inst::{AluOp, Cond, FpuOp, Inst, Kind, MemWidth, Operand};
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS_PER_CLASS};

/// Error from [`parse_asm`], with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// A line could not be parsed; the message describes why.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// The parsed program failed to assemble (unknown label, operand
    /// class violation, ...).
    Build(BuildError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::Build(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError::Build(e)
    }
}

impl Program {
    /// Serializes the program to parseable assembly text (the complete
    /// inverse of [`parse_asm`]).
    pub fn to_asm(&self) -> String {
        let mut out = String::new();
        if self.entry() != 0 {
            // The entry must be a label; synthesize one if needed.
            let name = self
                .labels()
                .find(|&(_, pc)| pc == self.entry())
                .map(|(n, _)| n.to_owned())
                .unwrap_or_else(|| format!("__entry_{}", self.entry()));
            out.push_str(&format!(".entry {name}\n"));
        }
        for seg in self.data() {
            out.push_str(&format!(".data {:#x}:", seg.base));
            for (i, w) in seg.words.iter().enumerate() {
                out.push_str(&format!("{} {:#x}", if i == 0 { "" } else { "," }, w));
            }
            out.push('\n');
        }
        let mut labels_at: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (name, pc) in self.labels() {
            labels_at.entry(pc).or_default().push(name.to_owned());
        }
        if self.entry() != 0 && !labels_at.contains_key(&self.entry()) {
            labels_at.entry(self.entry()).or_default().push(format!("__entry_{}", self.entry()));
        }
        let procs = self.procedures();
        for (pc, inst) in self.insts().iter().enumerate() {
            if let Some(p) = procs.iter().find(|p| p.range.start == pc) {
                out.push_str(&format!(".proc {}\n", p.name));
            }
            if let Some(names) = labels_at.get(&pc) {
                for n in names {
                    // Procedure labels are implied by `.proc`, and
                    // synthetic absolute-target labels by `@N` operands.
                    if procs.iter().any(|p| p.range.start == pc && p.name == *n)
                        || n.starts_with("__at_")
                    {
                        continue;
                    }
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {inst}\n"));
        }
        out
    }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError::Syntax`] with the offending line for malformed
/// text, or [`AsmError::Build`] if label resolution/validation fails.
///
/// # Examples
///
/// ```
/// use rvp_isa::parse_asm;
///
/// # fn main() -> Result<(), rvp_isa::AsmError> {
/// let p = parse_asm(
///     "
///     li r1, #3
///     top:
///       sub r1, r1, #1
///       bne r1, top
///       halt
///     ",
/// )?;
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.label("top"), Some(1));
/// # Ok(())
/// # }
/// ```
pub fn parse_asm(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        parse_line(&mut b, line).map_err(|msg| AsmError::Syntax { line: line_no, msg })?;
    }
    Ok(b.build()?)
}

fn parse_line(b: &mut ProgramBuilder, line: &str) -> Result<(), String> {
    if let Some(rest) = line.strip_prefix(".entry") {
        b.entry(ident(rest.trim())?);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix(".proc") {
        b.proc(ident(rest.trim())?);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix(".data") {
        let (addr, words) = rest.split_once(':').ok_or("`.data` needs `addr: words`")?;
        let base = parse_u64(addr.trim())?;
        let words: Result<Vec<u64>, String> =
            words.split(',').map(|w| parse_u64(w.trim())).collect();
        b.data(base, &words?);
        return Ok(());
    }
    if let Some(name) = line.strip_suffix(':') {
        b.label(ident(name.trim())?);
        return Ok(());
    }
    parse_inst(b, line)
}

fn parse_inst(b: &mut ProgramBuilder, line: &str) -> Result<(), String> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let (rvp, mnemonic) = match mnemonic.strip_prefix("rvp_") {
        Some(m) => (true, m),
        None => (false, mnemonic),
    };

    let inst = match mnemonic {
        // Three-operand ALU / FPU forms.
        "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "sll" | "srl" | "sra"
        | "cmpeq" | "cmplt" | "cmpltu" | "cmple" => {
            let [d, a, o] = three(rest)?;
            Inst::new(Kind::Alu {
                op: alu_op(mnemonic).expect("matched above"),
                dst: reg(d)?,
                a: reg(a)?,
                b: operand(o)?,
            })
        }
        "fadd" | "fsub" | "fmul" | "fdiv" | "fcmpeq" | "fcmplt" | "fcmple" => {
            let [d, a, o] = three(rest)?;
            Inst::new(Kind::Fpu {
                op: fpu_op(mnemonic).expect("matched above"),
                dst: reg(d)?,
                a: reg(a)?,
                b: reg(o)?,
            })
        }
        "itof" => {
            let [d, s] = two(rest)?;
            Inst::new(Kind::Itof { dst: reg(d)?, src: reg(s)? })
        }
        "ftoi" => {
            let [d, s] = two(rest)?;
            Inst::new(Kind::Ftoi { dst: reg(d)?, src: reg(s)? })
        }
        "li" => {
            let [d, imm] = two(rest)?;
            Inst::new(Kind::Li { dst: reg(d)?, imm: parse_imm(imm)? })
        }
        "lif" => {
            let [d, imm] = two(rest)?;
            let v: f64 = imm
                .strip_prefix('#')
                .ok_or("float immediate needs `#`")?
                .parse()
                .map_err(|e| format!("bad float: {e}"))?;
            Inst::new(Kind::Lif { dst: reg(d)?, bits: v.to_bits() })
        }
        "ldb" | "ldw" | "ldd" => {
            let [d, mem] = two(rest)?;
            let (disp, base) = mem_operand(mem)?;
            Inst::ld(reg(d)?, base, disp, width(mnemonic))
        }
        "stb" | "stw" | "std" => {
            let [s, mem] = two(rest)?;
            let (disp, base) = mem_operand(mem)?;
            Inst::st(reg(s)?, base, disp, width(mnemonic))
        }
        "br" => {
            let label = target_label(b, rest)?;
            b.br(&label);
            return mark(b, rvp);
        }
        "beq" | "bne" | "blt" | "ble" | "bgt" | "bge" => {
            let [r, t] = two(rest)?;
            let cond = match mnemonic {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                "ble" => Cond::Le,
                "bgt" => Cond::Gt,
                _ => Cond::Ge,
            };
            let src = reg(r)?;
            let label = target_label(b, t)?;
            match cond {
                Cond::Eq => b.beqz(src, &label),
                Cond::Ne => b.bnez(src, &label),
                Cond::Lt => b.bltz(src, &label),
                Cond::Le => b.blez(src, &label),
                Cond::Gt => b.bgtz(src, &label),
                Cond::Ge => b.bgez(src, &label),
            };
            return mark(b, rvp);
        }
        "bsr" => {
            let [d, t] = two(rest)?;
            let label = target_label(b, t)?;
            b.bsr(reg(d)?, &label);
            return mark(b, rvp);
        }
        "ret" => {
            b.ret(paren_reg(rest)?);
            return mark(b, rvp);
        }
        "jmp" => {
            let (base, targets) =
                rest.split_once("->").ok_or("`jmp` needs `-> @t, ...` targets")?;
            let base = paren_reg(base.trim())?;
            let labels: Result<Vec<String>, String> =
                targets.split(',').map(|t| target_label(b, t.trim())).collect();
            let labels = labels?;
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            b.jmp(base, &refs);
            return mark(b, rvp);
        }
        "halt" => Inst::new(Kind::Halt),
        "nop" => Inst::new(Kind::Nop),
        other => return Err(format!("unknown mnemonic `{other}`")),
    };
    b.inst(if rvp { inst.with_rvp() } else { inst });
    Ok(())
}

fn mark(b: &mut ProgramBuilder, rvp: bool) -> Result<(), String> {
    if rvp {
        b.mark_rvp();
    }
    Ok(())
}

/// Branch targets may be `@N` (absolute instruction index) or a label
/// name. Absolute targets are lowered to synthetic labels so the builder
/// can resolve them uniformly.
fn target_label(b: &mut ProgramBuilder, t: &str) -> Result<String, String> {
    if let Some(n) = t.strip_prefix('@') {
        let idx: usize = n.trim().parse().map_err(|e| format!("bad target: {e}"))?;
        let name = format!("__at_{idx}");
        b.label_at(&name, idx);
        Ok(name)
    } else {
        Ok(ident(t)?.to_owned())
    }
}

fn ident(s: &str) -> Result<&str, String> {
    if !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
        Ok(s)
    } else {
        Err(format!("invalid identifier `{s}`"))
    }
}

fn width(mnemonic: &str) -> MemWidth {
    match mnemonic.as_bytes()[2] {
        b'b' => MemWidth::B,
        b'w' => MemWidth::W,
        _ => MemWidth::D,
    }
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "cmpeq" => AluOp::CmpEq,
        "cmplt" => AluOp::CmpLt,
        "cmpltu" => AluOp::CmpLtu,
        "cmple" => AluOp::CmpLe,
        _ => return None,
    })
}

fn fpu_op(m: &str) -> Option<FpuOp> {
    Some(match m {
        "fadd" => FpuOp::FAdd,
        "fsub" => FpuOp::FSub,
        "fmul" => FpuOp::FMul,
        "fdiv" => FpuOp::FDiv,
        "fcmpeq" => FpuOp::FCmpEq,
        "fcmplt" => FpuOp::FCmpLt,
        "fcmple" => FpuOp::FCmpLe,
        _ => return None,
    })
}

fn split_n<const N: usize>(s: &str) -> Result<[&str; N], String> {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    parts.try_into().map_err(|_| format!("expected {N} comma-separated operands in `{s}`"))
}

fn two(s: &str) -> Result<[&str; 2], String> {
    split_n(s)
}

fn three(s: &str) -> Result<[&str; 3], String> {
    split_n(s)
}

fn reg(s: &str) -> Result<Reg, String> {
    let (class, n) = s.split_at(1.min(s.len()));
    let num: u8 = n.parse().map_err(|_| format!("bad register `{s}`"))?;
    if num >= NUM_REGS_PER_CLASS {
        return Err(format!("register number out of range in `{s}`"));
    }
    match class {
        "r" => Ok(Reg::int(num)),
        "f" => Ok(Reg::fp(num)),
        _ => Err(format!("bad register `{s}`")),
    }
}

fn operand(s: &str) -> Result<Operand, String> {
    if s.starts_with('#') {
        Ok(Operand::Imm(parse_imm(s)?))
    } else {
        Ok(Operand::Reg(reg(s)?))
    }
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let s = s.strip_prefix('#').ok_or_else(|| format!("immediate `{s}` needs `#`"))?;
    let (neg, digits) = match s.strip_prefix('-') {
        Some(d) => (true, d),
        None => (false, s),
    };
    let v = if let Some(hex) = digits.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad immediate: {e}"))?
    } else {
        digits.parse::<u64>().map_err(|e| format!("bad immediate: {e}"))?
    };
    let v = v as i64;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_u64(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad number: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number: {e}"))
    }
}

/// `(reg)` operands for `ret` and `jmp`.
fn paren_reg(s: &str) -> Result<Reg, String> {
    let inner = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("expected `(reg)`, got `{s}`"))?;
    reg(inner.trim())
}

/// `disp(base)` memory operands; `disp` may be negative or hex.
fn mem_operand(s: &str) -> Result<(i64, Reg), String> {
    let open = s.find('(').ok_or("memory operand needs `disp(base)`")?;
    let close = s.rfind(')').ok_or("memory operand needs closing `)`")?;
    let disp_str = s[..open].trim();
    let disp = if disp_str.is_empty() {
        0
    } else {
        let (neg, d) = match disp_str.strip_prefix('-') {
            Some(d) => (true, d),
            None => (false, disp_str),
        };
        let v = parse_u64(d)? as i64;
        if neg {
            v.wrapping_neg()
        } else {
            v
        }
    };
    Ok((disp, reg(s[open + 1..close].trim())?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basics() {
        let p = parse_asm(
            "
            .data 0x1000: 0x7, 9
            li r1, #0x1000
            loop:
              ldd r2, 0(r1)
              add r3, r3, r2
              sub r2, r2, #1
              bne r2, loop
              halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.label("loop"), Some(1));
        assert_eq!(p.data()[0].words, vec![7, 9]);
    }

    #[test]
    fn round_trips_every_instruction_shape() {
        let src = "
            .entry start
            .data 0x2000: 1, 2
            .proc start
              li r1, #-5
              lif f1, #2.5
              add r2, r1, #7
              xor r3, r2, r1
              fadd f2, f1, f31
              itof f3, r1
              ftoi r4, f3
              ldd r5, 16(r1)
              rvp_ldd r6, -8(r1)
              stb r5, 0(r1)
              beq r5, start
              bsr r26, helper
              jmp (r5) -> @0, @14
              halt
            .proc helper
              nop
              ret (r26)
            ";
        let p1 = parse_asm(src).unwrap();
        let p2 = parse_asm(&p1.to_asm()).unwrap();
        assert_eq!(p1.insts(), p2.insts());
        assert_eq!(p1.entry(), p2.entry());
        assert_eq!(p1.data(), p2.data());
        assert_eq!(p1.procedures(), p2.procedures());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_asm("nop\nbogus r1\n").unwrap_err();
        match err {
            AsmError::Syntax { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("bogus"));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn build_errors_are_propagated() {
        let err = parse_asm("br nowhere\n").unwrap_err();
        assert!(matches!(err, AsmError::Build(_)));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = parse_asm("li r1, #-42\nli r2, #0xff\nhalt\n").unwrap();
        assert_eq!(p.insts()[0].to_string(), "li r1, #-42");
        assert_eq!(p.insts()[1].to_string(), "li r2, #255");
    }

    #[test]
    fn rejects_out_of_range_registers() {
        assert!(parse_asm("li r32, #1\n").is_err());
        assert!(parse_asm("li q1, #1\n").is_err());
    }
}
