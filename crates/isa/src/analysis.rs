//! Dataflow analyses: ABI register conventions, register sets, and
//! live-variable analysis.
//!
//! Liveness is the foundation of two paper mechanisms: the profiler's
//! *dead-register* classification (a value that correlates with a register
//! that is no longer live can be captured by register reallocation,
//! Section 5) and the reallocation pass's interference graph (Section 7.3).

use std::fmt;

use crate::cfg::Cfg;
use crate::inst::{Inst, Kind};
use crate::program::Program;
use crate::reg::{Reg, RegClass, NUM_REGS};

/// Calling-convention register assignments, modelled on the Alpha OSF ABI
/// the paper's binaries used.
pub mod abi {
    use super::RegSet;
    use crate::reg::Reg;

    /// Return-address register (`r26`).
    pub const RA: Reg = Reg::const_from_index(26);
    /// Stack pointer (`r30`).
    pub const SP: Reg = Reg::const_from_index(30);
    /// Global pointer (`r29`).
    pub const GP: Reg = Reg::const_from_index(29);

    /// Integer argument registers `r16..=r21`.
    pub fn int_args() -> RegSet {
        RegSet::from_iter((16..=21).map(crate::Reg::int))
    }

    /// FP argument registers `f16..=f21`.
    pub fn fp_args() -> RegSet {
        RegSet::from_iter((16..=21).map(crate::Reg::fp))
    }

    /// Integer return-value register `r0` plus FP return `f0`.
    pub fn return_values() -> RegSet {
        let mut s = RegSet::new();
        s.insert(crate::Reg::int(0));
        s.insert(crate::Reg::fp(0));
        s
    }

    /// Callee-saved (non-volatile) registers: `r9..=r15`, `r29`, `r30`,
    /// `f2..=f9`.
    pub fn callee_saved() -> RegSet {
        let mut s = RegSet::new();
        for r in 9..=15 {
            s.insert(crate::Reg::int(r));
        }
        s.insert(GP);
        s.insert(SP);
        for f in 2..=9 {
            s.insert(crate::Reg::fp(f));
        }
        s
    }

    /// Caller-saved (volatile) registers: everything that is neither
    /// callee-saved nor a zero register.
    pub fn caller_saved() -> RegSet {
        let saved = callee_saved();
        let mut s = RegSet::new();
        for i in 0..crate::NUM_REGS {
            let r = crate::Reg::from_index(i);
            if !saved.contains(r) && !r.is_zero() {
                s.insert(r);
            }
        }
        s
    }

    /// Registers the reallocation pass must never reassign: the zero
    /// registers, the stack pointer, the global pointer and the return
    /// address register.
    pub fn reserved() -> RegSet {
        let mut s = RegSet::new();
        s.insert(crate::Reg::ZERO);
        s.insert(crate::Reg::FZERO);
        s.insert(SP);
        s.insert(GP);
        s.insert(RA);
        s
    }
}

/// A set of architectural registers, stored as a 64-bit mask (one bit per
/// dense register index).
///
/// # Examples
///
/// ```
/// use rvp_isa::Reg;
/// use rvp_isa::analysis::RegSet;
///
/// let mut s = RegSet::new();
/// s.insert(Reg::int(3));
/// s.insert(Reg::fp(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(Reg::int(3)));
/// assert!(!s.contains(Reg::int(4)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty set.
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// Inserts a register; returns whether it was newly added.
    pub fn insert(&mut self, r: Reg) -> bool {
        let bit = 1u64 << r.index();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes a register; returns whether it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let bit = 1u64 << r.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the register is in the set.
    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Iterates over members in index order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(Reg::from_index(i))
            }
        })
    }

    /// The raw 64-bit mask.
    pub fn bits(&self) -> u64 {
        self.0
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<T: IntoIterator<Item = Reg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The registers an instruction reads, including the interprocedural
/// conventions: calls read all argument registers, returns read the
/// return-value registers and every callee-saved register (the paper's
/// "all non-volatile registers live at exit").
pub fn effective_uses(inst: &Inst) -> RegSet {
    let mut uses: RegSet = inst.srcs().into_iter().flatten().collect();
    match &inst.kind {
        Kind::Bsr { .. } => {
            uses = uses.union(abi::int_args()).union(abi::fp_args());
        }
        Kind::Ret { .. } => {
            uses = uses.union(abi::return_values()).union(abi::callee_saved());
        }
        _ => {}
    }
    // Zero registers always read as zero; they carry no liveness.
    uses.remove(Reg::ZERO);
    uses.remove(Reg::FZERO);
    uses
}

/// The registers an instruction writes, including call clobbers: a call
/// defines its destination and every caller-saved register.
pub fn effective_defs(inst: &Inst) -> RegSet {
    let mut defs = RegSet::new();
    if let Some(d) = inst.dst() {
        defs.insert(d);
    }
    if inst.is_call() {
        defs = defs.union(abi::caller_saved());
    }
    defs.remove(Reg::ZERO);
    defs.remove(Reg::FZERO);
    defs
}

/// Live-variable analysis over one procedure's CFG.
///
/// Records, for every instruction, the set of registers live *after* it
/// executes. A register absent from that set is *dead* at that point — the
/// property the paper's dead-register reuse optimization depends on.
///
/// # Examples
///
/// ```
/// use rvp_isa::{ProgramBuilder, Reg};
/// use rvp_isa::cfg::Cfg;
/// use rvp_isa::analysis::Liveness;
///
/// # fn main() -> Result<(), rvp_isa::BuildError> {
/// let (a, b) = (Reg::int(1), Reg::int(2));
/// let mut p = ProgramBuilder::new();
/// p.li(a, 1);          // 0: a live afterwards
/// p.li(b, 2);          // 1: a, b live
/// p.add(a, a, b);      // 2: only a live (b is dead after this)
/// p.st(a, Reg::int(30), 0); // 3
/// p.halt();            // 4
/// let prog = p.build()?;
/// let cfg = Cfg::build(&prog, &prog.procedures()[0]);
/// let live = Liveness::compute(&prog, &cfg);
/// assert!(live.live_after(2).contains(a));
/// assert!(!live.live_after(2).contains(b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Liveness {
    start: usize,
    /// Live-after set for each instruction offset in the procedure.
    after: Vec<RegSet>,
    /// Live-in set per block.
    block_in: Vec<RegSet>,
    /// Live-out set per block.
    block_out: Vec<RegSet>,
}

impl Liveness {
    /// Runs the backward dataflow to a fixed point and materializes the
    /// per-instruction live-after sets.
    pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
        let range = cfg.procedure().range.clone();
        let blocks = cfg.blocks();
        let n = blocks.len();

        // Per-block use/def summaries.
        let mut use_b = vec![RegSet::new(); n];
        let mut def_b = vec![RegSet::new(); n];
        for (b, block) in blocks.iter().enumerate() {
            for pc in block.range.clone() {
                let inst = &program.insts()[pc];
                let uses = effective_uses(inst).difference(def_b[b]);
                use_b[b] = use_b[b].union(uses);
                def_b[b] = def_b[b].union(effective_defs(inst));
            }
        }

        // Values live out of any exit block: the paper's convention — all
        // non-volatile registers are live at procedure exit (already
        // captured as uses of `ret`, but `halt`-terminated procedures need
        // it too, and return-value regs must survive to the caller).
        let exit_live = abi::callee_saved().union(abi::return_values());

        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let mut out = RegSet::new();
                if blocks[b].succs.is_empty() {
                    out = exit_live;
                }
                for &s in &blocks[b].succs {
                    out = out.union(live_in[s]);
                }
                let inn = use_b[b].union(out.difference(def_b[b]));
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }

        // Materialize per-instruction live-after sets by walking each block
        // backward from its live-out.
        let mut after = vec![RegSet::new(); range.len()];
        for (b, block) in blocks.iter().enumerate() {
            let mut live = live_out[b];
            for pc in block.range.clone().rev() {
                after[pc - range.start] = live;
                let inst = &program.insts()[pc];
                live = effective_uses(inst).union(live.difference(effective_defs(inst)));
            }
        }

        Liveness { start: range.start, after, block_in: live_in, block_out: live_out }
    }

    /// Registers live immediately after instruction `pc` executes.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the analyzed procedure.
    pub fn live_after(&self, pc: usize) -> RegSet {
        self.after[pc - self.start]
    }

    /// Registers live immediately before instruction `pc` executes.
    pub fn live_before(&self, program: &Program, pc: usize) -> RegSet {
        let inst = &program.insts()[pc];
        effective_uses(inst).union(self.live_after(pc).difference(effective_defs(inst)))
    }

    /// Live-in set of a block.
    pub fn block_live_in(&self, b: usize) -> RegSet {
        self.block_in[b]
    }

    /// Live-out set of a block.
    pub fn block_live_out(&self, b: usize) -> RegSet {
        self.block_out[b]
    }

    /// Whether register `r` is dead (its current value can never be read
    /// again) immediately after `pc`.
    pub fn is_dead_after(&self, pc: usize, r: Reg) -> bool {
        !self.live_after(pc).contains(r) && !r.is_zero()
    }
}

/// Returns the allocatable registers of a class (everything except the
/// ABI-reserved registers). The paper colors with 31 registers; excluding
/// the zero register, stack/global pointers and return address leaves 28
/// freely assignable integer registers plus the reserved ones' fixed webs.
pub fn allocatable(class: RegClass) -> Vec<Reg> {
    let reserved = abi::reserved();
    (0..NUM_REGS)
        .map(Reg::from_index)
        .filter(|r| r.class() == class && !reserved.contains(*r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn liveness_of(p: &Program) -> (Cfg, Liveness) {
        let cfg = Cfg::build(p, &p.procedures()[0]);
        let l = Liveness::compute(p, &cfg);
        (cfg, l)
    }

    #[test]
    fn regset_basic_ops() {
        let a: RegSet = [Reg::int(1), Reg::int(2)].into_iter().collect();
        let b: RegSet = [Reg::int(2), Reg::fp(0)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert_eq!(a.difference(b).len(), 1);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![Reg::int(1), Reg::int(2)]);
    }

    #[test]
    fn loop_carried_liveness() {
        let (i, acc) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(i, 10);
        b.li(acc, 0);
        b.label("top");
        b.add(acc, acc, i);
        b.subi(i, i, 1);
        b.bnez(i, "top"); // 4
        b.st(acc, abi::SP, 0);
        b.halt();
        let p = b.build().unwrap();
        let (_, live) = liveness_of(&p);
        // Around the back edge both i and acc stay live.
        assert!(live.live_after(4).contains(i) || live.live_after(3).contains(i));
        assert!(live.live_after(2).contains(acc));
        // After the final store, acc is dead.
        assert!(live.is_dead_after(5, acc));
    }

    #[test]
    fn zero_registers_are_never_live() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::int(1), Reg::ZERO, Reg::ZERO);
        b.st(Reg::int(1), abi::SP, 0);
        b.halt();
        let p = b.build().unwrap();
        let (_, live) = liveness_of(&p);
        assert!(!live.live_before(&p, 0).contains(Reg::ZERO));
    }

    #[test]
    fn calls_use_args_and_clobber_volatiles() {
        let mut b = ProgramBuilder::new();
        b.proc("main");
        b.li(Reg::int(16), 1); // a0
        b.li(Reg::int(1), 42); // t0 (volatile): dead across the call
        b.call("f");
        b.halt();
        b.proc("f");
        b.li(Reg::int(0), 7);
        b.ret(abi::RA);
        let p = b.build().unwrap();
        let procs = p.procedures();
        let cfg = Cfg::build(&p, &procs[0]);
        let live = Liveness::compute(&p, &cfg);
        // a0 is live into the call.
        assert!(live.live_before(&p, 2).contains(Reg::int(16)));
        // t0's value cannot survive the call (clobbered), so it is dead
        // right after being set... only because nothing reads it first.
        assert!(live.is_dead_after(1, Reg::int(1)));
    }

    #[test]
    fn returns_keep_callee_saved_live() {
        let mut b = ProgramBuilder::new();
        b.proc("f");
        b.li(Reg::int(9), 5); // s0: callee-saved, must reach the exit
        b.ret(abi::RA);
        let p = b.build().unwrap();
        let procs = p.procedures();
        let cfg = Cfg::build(&p, &procs[0]);
        let live = Liveness::compute(&p, &cfg);
        assert!(live.live_after(0).contains(Reg::int(9)));
    }

    #[test]
    fn halt_exit_keeps_callee_saved_live() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::int(9), 5);
        b.li(Reg::int(1), 6);
        b.halt();
        let p = b.build().unwrap();
        let (_, live) = liveness_of(&p);
        assert!(live.live_after(1).contains(Reg::int(9)));
        assert!(live.is_dead_after(1, Reg::int(1)));
    }

    #[test]
    fn allocatable_excludes_reserved() {
        let ints = allocatable(RegClass::Int);
        assert!(!ints.contains(&Reg::ZERO));
        assert!(!ints.contains(&abi::SP));
        assert!(!ints.contains(&abi::RA));
        assert!(ints.contains(&Reg::int(0)));
        let fps = allocatable(RegClass::Fp);
        assert!(!fps.contains(&Reg::FZERO));
        assert_eq!(fps.len(), 31);
    }

    #[test]
    fn branch_diamond_merges_liveness() {
        let (c, x, y) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.li(c, 1);
        b.li(x, 10);
        b.beqz(c, "else"); // 2
        b.li(y, 1);
        b.br("join");
        b.label("else");
        b.mov(y, x); // x used here
        b.label("join");
        b.st(y, abi::SP, 0);
        b.halt();
        let p = b.build().unwrap();
        let (_, live) = liveness_of(&p);
        // x is live across the branch (used on the else path).
        assert!(live.live_after(2).contains(x));
        // y is live at the join.
        assert!(live.live_after(5).contains(y));
    }
}
