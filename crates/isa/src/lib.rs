//! Instruction set architecture for the RVP (register value prediction)
//! reproduction.
//!
//! This crate defines a 64-bit load/store RISC ISA in the spirit of the DEC
//! Alpha that Tullsen & Seng's ISCA 1999 paper evaluated on: 32 integer and
//! 32 floating-point architectural registers (the last of each class is a
//! hardwired zero register), three-operand ALU instructions, displacement
//! addressing, and compare-register-to-zero conditional branches. On top of
//! the raw instruction set it provides:
//!
//! * [`Program`] — an assembled unit of instructions plus initialized data,
//!   produced by the label-resolving [`ProgramBuilder`];
//! * [`cfg::Cfg`] — basic blocks, successor edges, dominators and natural
//!   loops;
//! * [`analysis`] — live-variable dataflow and du-chain ("web")
//!   construction, shared by the register-reuse profiler and the
//!   register-reallocation pass.
//!
//! The one paper-specific extension is the *static RVP marking bit* carried
//! by every instruction ([`Inst::rvp`]): the paper adds `rvp_load`-style
//! opcodes that tell the hardware to predict that the instruction produces
//! the value already in its destination register. A flag models those "few
//! extra opcodes" without duplicating the opcode space.
//!
//! # Examples
//!
//! ```
//! use rvp_isa::{ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), rvp_isa::BuildError> {
//! let r1 = Reg::int(1);
//! let r2 = Reg::int(2);
//! let mut b = ProgramBuilder::new();
//! b.li(r1, 10);
//! b.li(r2, 0);
//! b.label("loop");
//! b.addi(r2, r2, 3);
//! b.subi(r1, r1, 1);
//! b.bnez(r1, "loop");
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
mod asm;
mod builder;
pub mod cfg;
mod inst;
mod program;
mod reg;

pub use asm::{parse_asm, AsmError};
pub use builder::{BuildError, ProgramBuilder};
pub use inst::{AluOp, Cond, ExecClass, Flow, FpuOp, Inst, Kind, MemWidth, Operand, RegRole};
pub use program::{DataSegment, Procedure, Program};
pub use reg::{Reg, RegClass, NUM_REGS, NUM_REGS_PER_CLASS};
